//! Plain-text table rendering for the experiment harness.

/// A rendered experiment table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:<w$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub markdown (for `EXPERIMENTS.md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a ratio like `1.73x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage like `+12.3%` / `-45.6%`.
pub fn pct(v: f64) -> String {
    format!("{:+.1}%", v * 100.0)
}

/// Formats seconds as milliseconds.
pub fn ms(v: f64) -> String {
    format!("{:.2}ms", v * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = Table::new("Demo", &["model", "thr"]);
        t.row(vec!["ResNet-50".into(), "1.25x".into()]);
        t.row(vec!["x".into(), "0.90x".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("ResNet-50"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("MD", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render_markdown();
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(1.732), "1.73x");
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.5), "-50.0%");
        assert_eq!(ms(0.00123), "1.23ms");
    }
}
