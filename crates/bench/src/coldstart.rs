//! The `coldstart` experiment: encrypted model registry provisioning and
//! multi-model cold-start serving (`mvtee-registry` + `mvtee-serve`).
//!
//! The experiment provisions a population of zoo models as chunked
//! AES-GCM ciphertext over the attested [`LANE_PROVISION`] mux lane into
//! a content-addressed sealed store, then serves them through the
//! frontend's on-demand cold-start path, holding the run to the registry
//! invariants:
//!
//! * **No plaintext on the host** — a 64-byte needle cut from each
//!   model's plaintext encoding must never appear in the recorded wire
//!   frames or in the sealed store's host-visible bytes.
//! * **Every provisioning fault detected** — a seeded sweep over the
//!   [`ProvisionFault`] descriptor space (corrupt / truncated / dropped /
//!   reordered chunks, fingerprint lies) must reject each corruption
//!   before anything reaches the store, and torn uploads must resume
//!   from exactly their last verified chunk.
//! * **Byte-identical cold start** — a deployment built from the sealed
//!   registry bundle must produce outputs *and* a rendered audit
//!   transcript byte-identical to a deployment built from the in-memory
//!   model, and every served cold-start response must match the serial
//!   reference bit-for-bit.
//! * **Saturation sheds, not queues** — with the registry's pending
//!   slots exhausted, an unknown-key submission must shed
//!   [`ShedReason::ColdStart`] at the door.
//!
//! Results land in `BENCH_registry.json` (upload throughput, p50/p99
//! time-to-first-inference per model size, warm-vs-cold hit ratio,
//! eviction counts) so future PRs have a provisioning trajectory to beat.
//!
//! [`LANE_PROVISION`]: mvtee_crypto::mux::LANE_PROVISION
//! [`ProvisionFault`]: mvtee_faults::ProvisionFault
//! [`ShedReason::ColdStart`]: mvtee_serve::ShedReason::ColdStart

use mvtee::deployment::{Deployment, DeploymentBuilder};
use mvtee_crypto::channel::{memory_pair, FrameTransport, Handshake, Role, SecureChannel};
use mvtee_crypto::mux::{split, MuxLane, LANE_PROVISION};
use mvtee_faults::ProvisionFault;
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_registry::{
    drive_upload, encode_model, end_session, prepare_upload, serve_provisioning, upload_model,
    PreparedUpload, ProvisionReply, ProvisionRequest, Registry, RegistryConfig, UploadManifest,
};
use mvtee_serve::{
    ColdStartProvider, QueueStats, ReplicaPool, RequestOutcome, ServeConfig, ServeFrontend,
    ShedReason,
};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Chunk length the uploads use — small enough that every Test-scale
/// model spans several chunks, so the chunk protocol is actually
/// exercised.
const CHUNK_LEN: usize = 16 * 1024;
/// Needle length for the plaintext sentry.
const NEEDLE_LEN: usize = 64;
/// Partitions every deployment (reference and cold-started) runs.
const PARTITIONS: usize = 2;

/// Coldstart experiment parameters.
#[derive(Debug, Clone)]
pub struct ColdstartSettings {
    /// Master seed: model weights, inputs, and fault scenarios.
    pub seed: u64,
    /// Model population, provisioned in order (distinct sizes).
    pub models: Vec<ModelKind>,
    /// Zoo scale.
    pub profile: ScaleProfile,
    /// Cold time-to-first-inference samples per model (each evicts the
    /// session engine cache first).
    pub cold_trials: usize,
    /// Seeded provisioning-fault scenarios.
    pub fault_scenarios: u64,
    /// Overflow uploads driven at the end to force sealed-store
    /// evictions.
    pub evict_extra: usize,
}

impl ColdstartSettings {
    /// CI smoke configuration.
    pub fn quick(seed: u64) -> Self {
        ColdstartSettings {
            seed,
            models: vec![ModelKind::MnasNet, ModelKind::ResNet50],
            profile: ScaleProfile::Test,
            cold_trials: 3,
            fault_scenarios: 12,
            evict_extra: 2,
        }
    }

    /// Full configuration: a larger population, more TTFI samples, a
    /// deeper fault sweep.
    pub fn full(seed: u64) -> Self {
        ColdstartSettings {
            seed,
            models: ModelKind::ALL.iter().copied().take(4).collect(),
            profile: ScaleProfile::Test,
            cold_trials: 8,
            fault_scenarios: 24,
            evict_extra: 3,
        }
    }
}

/// Per-model provisioning and cold-start measurements.
#[derive(Debug, Clone)]
pub struct ModelColdstart {
    /// Registry key the model is served under.
    pub key: String,
    /// Zoo model kind.
    pub kind: String,
    /// Plaintext encoded size, bytes (the "model size" axis).
    pub plain_bytes: u64,
    /// Sealed bytes sent over the provisioning lane.
    pub sealed_bytes: u64,
    /// Wall-clock upload time, milliseconds.
    pub upload_ms: f64,
    /// Upload throughput, plaintext MB/s.
    pub upload_mb_s: f64,
    /// Cold time-to-first-inference samples, milliseconds.
    pub ttfi_cold_ms: Vec<f64>,
    /// Median cold TTFI, milliseconds.
    pub ttfi_p50_ms: f64,
    /// 99th-percentile cold TTFI, milliseconds.
    pub ttfi_p99_ms: f64,
    /// Warm (engine already cached) TTFI, milliseconds.
    pub ttfi_warm_ms: f64,
    /// Every served output matched the serial reference bit-for-bit.
    pub outputs_match: bool,
    /// The cold-started deployment's rendered audit transcript matched
    /// the in-memory reference deployment's byte-for-byte.
    pub transcript_match: bool,
}

/// The provisioning-fault mini-campaign tally.
#[derive(Debug, Clone, Default)]
pub struct FaultSummary {
    /// Scenarios injected.
    pub injected: u64,
    /// Corruptions rejected before anything reached the store.
    pub detected: u64,
    /// Torn uploads that resumed from exactly their last verified chunk.
    pub resumed: u64,
    /// Scenarios that slipped through (must be empty).
    pub missed: Vec<String>,
}

/// Everything the coldstart experiment produced.
#[derive(Debug, Clone)]
pub struct ColdstartReport {
    /// The master seed.
    pub seed: u64,
    /// Run-configuration fingerprint (xor of model content addresses).
    pub fingerprint: String,
    /// Per-model measurements, provisioning order.
    pub models: Vec<ModelColdstart>,
    /// Plaintext needle sightings on the host (must be empty).
    pub plaintext_sightings: Vec<String>,
    /// The duplicate upload was deduplicated against the sealed store.
    pub dedup_hit: bool,
    /// The torn-upload probe resumed and completed.
    pub resume_ok: bool,
    /// Chunk index the probe tore the connection at.
    pub resume_torn_at: u64,
    /// Chunk index the registry resumed the probe from.
    pub resume_resumed_from: u64,
    /// The fault mini-campaign tally.
    pub faults: FaultSummary,
    /// Engine-cache hits observed by `from_registry` cold starts.
    pub warm_hits: u64,
    /// Engine-cache misses observed by `from_registry` cold starts.
    pub cold_misses: u64,
    /// Sealed bundles evicted by the overflow probe.
    pub evictions: u64,
    /// Cached engines dropped when their sealed bundle was evicted.
    pub engine_evictions: u64,
    /// The saturation probe observed a [`ShedReason::ColdStart`] shed.
    pub coldstart_shed_observed: bool,
    /// Admission counters of the saturation-probe frontend.
    pub queue: QueueStats,
}

impl ColdstartReport {
    /// Warm-vs-cold engine-cache hit ratio across all cold starts.
    pub fn warm_hit_ratio(&self) -> f64 {
        let total = self.warm_hits + self.cold_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }

    /// The gate CI holds the smoke run to.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for s in &self.plaintext_sightings {
            failures.push(format!("plaintext model bytes visible on the host: {s}"));
        }
        for m in &self.faults.missed {
            failures.push(format!("provisioning fault not detected: {m}"));
        }
        if !self.resume_ok {
            failures.push(format!(
                "torn upload failed to resume (torn at chunk {}, resumed from {})",
                self.resume_torn_at, self.resume_resumed_from
            ));
        }
        if !self.dedup_hit {
            failures.push("duplicate upload was not deduplicated".into());
        }
        for m in &self.models {
            if !m.outputs_match {
                failures.push(format!("{}: cold-start outputs differ from the reference", m.key));
            }
            if !m.transcript_match {
                failures.push(format!(
                    "{}: cold-start audit transcript differs from the reference",
                    m.key
                ));
            }
        }
        if !self.coldstart_shed_observed {
            failures.push("saturated registry did not shed ShedReason::ColdStart".into());
        }
        if self.evictions == 0 {
            failures.push("overflow probe evicted nothing from the sealed store".into());
        }
        failures
    }

    /// Human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# coldstart seed={} models={} → dedup={} resume={} (torn@{} resumed@{}) \
             warm/cold={}/{} evictions={} (+{} engines) shed-coldstart={}",
            self.seed,
            self.models.len(),
            self.dedup_hit,
            self.resume_ok,
            self.resume_torn_at,
            self.resume_resumed_from,
            self.warm_hits,
            self.cold_misses,
            self.evictions,
            self.engine_evictions,
            self.coldstart_shed_observed,
        );
        let _ = writeln!(
            out,
            "faults: {} injected, {} detected, {} resumed, {} missed",
            self.faults.injected,
            self.faults.detected,
            self.faults.resumed,
            self.faults.missed.len()
        );
        for m in &self.models {
            let _ = writeln!(
                out,
                "{} ({}, {} B plain): upload {:.2} ms ({:.1} MB/s), TTFI cold p50={:.2} ms \
                 p99={:.2} ms warm={:.2} ms, outputs={} transcript={}",
                m.key,
                m.kind,
                m.plain_bytes,
                m.upload_ms,
                m.upload_mb_s,
                m.ttfi_p50_ms,
                m.ttfi_p99_ms,
                m.ttfi_warm_ms,
                m.outputs_match,
                m.transcript_match,
            );
        }
        for s in &self.plaintext_sightings {
            let _ = writeln!(out, "PLAINTEXT: {s}");
        }
        for f in self.gate_failures() {
            let _ = writeln!(out, "GATE: {f}");
        }
        out
    }

    /// The machine-readable report (`BENCH_registry.json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&crate::meta_json_line(
            "mvtee-bench-registry-v1",
            self.seed,
            &self.fingerprint,
        ));
        out.push_str("  \"models\": [\n");
        for (i, m) in self.models.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"key\": \"{}\", \"kind\": \"{}\", \"plain_bytes\": {}, \
                 \"sealed_bytes\": {}, \"upload_ms\": {:.3}, \"upload_mb_s\": {:.2}, \
                 \"ttfi_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, \"warm\": {:.3}}}, \
                 \"outputs_match\": {}, \"transcript_match\": {}}}{}\n",
                m.key,
                m.kind,
                m.plain_bytes,
                m.sealed_bytes,
                m.upload_ms,
                m.upload_mb_s,
                m.ttfi_p50_ms,
                m.ttfi_p99_ms,
                m.ttfi_warm_ms,
                m.outputs_match,
                m.transcript_match,
                if i + 1 < self.models.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"provisioning\": {{\"dedup_hit\": {}, \"resume_ok\": {}, \
             \"resume_torn_at\": {}, \"resume_resumed_from\": {}, \
             \"plaintext_sightings\": {}}},\n",
            self.dedup_hit,
            self.resume_ok,
            self.resume_torn_at,
            self.resume_resumed_from,
            self.plaintext_sightings.len(),
        ));
        out.push_str(&format!(
            "  \"faults\": {{\"injected\": {}, \"detected\": {}, \"resumed\": {}, \
             \"missed\": {}}},\n",
            self.faults.injected,
            self.faults.detected,
            self.faults.resumed,
            self.faults.missed.len(),
        ));
        out.push_str(&format!(
            "  \"cache\": {{\"warm_hits\": {}, \"cold_misses\": {}, \"warm_hit_ratio\": {:.3}}},\n",
            self.warm_hits,
            self.cold_misses,
            self.warm_hit_ratio(),
        ));
        out.push_str(&format!(
            "  \"evictions\": {{\"bundles\": {}, \"engines\": {}}},\n",
            self.evictions, self.engine_evictions,
        ));
        out.push_str(&format!(
            "  \"shed\": {{\"coldstart_observed\": {}, \"shed_coldstart\": {}}},\n",
            self.coldstart_shed_observed, self.queue.shed_coldstart,
        ));
        out.push_str(&format!("  \"gate_failures\": {}\n}}\n", self.gate_failures().len()));
        out
    }
}

/// A [`FrameTransport`] wrapper recording every frame that crosses the
/// wire — the experiment's "what the host can see" tap.
struct SpyTransport<T: FrameTransport> {
    inner: T,
    log: Arc<Mutex<Vec<u8>>>,
}

impl<T: FrameTransport> FrameTransport for SpyTransport<T> {
    fn send_frame(&self, frame: Vec<u8>) -> mvtee_crypto::Result<()> {
        self.log.lock().expect("wire log").extend_from_slice(&frame);
        self.inner.send_frame(frame)
    }

    fn recv_frame(&self) -> mvtee_crypto::Result<Vec<u8>> {
        let frame = self.inner.recv_frame()?;
        self.log.lock().expect("wire log").extend_from_slice(&frame);
        Ok(frame)
    }

    fn close(&self) {
        self.inner.close();
    }
}

/// Builds replica pools from sealed registry bundles — the bench's
/// [`ColdStartProvider`].
struct RegistryProvider {
    registry: Arc<Mutex<Registry>>,
    seed: u64,
}

impl ColdStartProvider for RegistryProvider {
    fn cold_start(&self, model_key: &str) -> Result<ReplicaPool, String> {
        let builder = DeploymentBuilder::from_registry(&self.registry, model_key)
            .map_err(|e| e.to_string())?
            .partitions(PARTITIONS)
            .partition_seed(self.seed)
            .variant_seed(self.seed);
        ReplicaPool::from_builder(model_key, builder, 1).map_err(|e| e.to_string())
    }

    fn saturated(&self) -> bool {
        self.registry.lock().expect("registry lock").saturated()
    }
}

/// Deterministic per-model inference input.
fn model_input(seed: u64, model: &Model) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc01d_u64);
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// Bit-exact tensor equality (NaN-safe).
fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

/// Nearest-rank quantile over an unsorted latency sample, milliseconds.
fn quantile_ms(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A mux'd provisioning channel pair over an in-memory wire, the tenant
/// side tapped by the wire log.
fn spied_channel_pair(
    psk: &[u8],
    log: &Arc<Mutex<Vec<u8>>>,
) -> (SecureChannel<MuxLane>, SecureChannel<MuxLane>) {
    let (a, b) = memory_pair();
    let spy = SpyTransport { inner: a, log: Arc::clone(log) };
    let mut lanes_t = split(spy, &[LANE_PROVISION]);
    let mut lanes_s = split(b, &[LANE_PROVISION]);
    let hs_t = Handshake::from_pre_shared(psk, Role::Initiator);
    let hs_s = Handshake::from_pre_shared(psk, Role::Responder);
    (
        SecureChannel::new(lanes_t.remove(0), &hs_t, u32::from(LANE_PROVISION)),
        SecureChannel::new(lanes_s.remove(0), &hs_s, u32::from(LANE_PROVISION)),
    )
}

/// A direct (un-mux'd) channel pair whose tenant side can sever the wire
/// by dropping — the torn-upload probes need a real disconnect, which
/// the mux pump's shared ownership of an in-memory transport prevents.
fn severable_channel_pair(
    psk: &[u8],
) -> (
    SecureChannel<mvtee_crypto::channel::MemoryTransport>,
    SecureChannel<mvtee_crypto::channel::MemoryTransport>,
) {
    let (a, b) = memory_pair();
    let hs_t = Handshake::from_pre_shared(psk, Role::Initiator);
    let hs_s = Handshake::from_pre_shared(psk, Role::Responder);
    (
        SecureChannel::new(a, &hs_t, u32::from(LANE_PROVISION)),
        SecureChannel::new(b, &hs_s, u32::from(LANE_PROVISION)),
    )
}

/// One lock-step request/reply exchange (the probes that deviate from
/// [`drive_upload`]'s happy path drive the protocol by hand).
fn exchange<T: FrameTransport>(
    chan: &mut SecureChannel<T>,
    req: &ProvisionRequest,
) -> Result<ProvisionReply, String> {
    let bytes = mvtee_codec::to_bytes(req).map_err(|e| e.to_string())?;
    chan.send(&bytes).map_err(|e| format!("{e:?}"))?;
    let reply = chan.recv().map_err(|e| format!("{e:?}"))?;
    mvtee_codec::from_bytes(&reply).map_err(|e| e.to_string())
}

/// Drives `Begin` plus the first `upto` chunks, then returns — the
/// caller tears the connection by dropping the channel.
fn partial_upload<T: FrameTransport>(
    chan: &mut SecureChannel<T>,
    upload: &PreparedUpload,
    upto: u64,
) -> Result<(), String> {
    let reply = exchange(chan, &ProvisionRequest::Begin(upload.manifest.clone()))?;
    let (upload_id, resume_from) = match reply {
        ProvisionReply::Begun { upload_id, resume_from, .. } => (upload_id, resume_from),
        other => return Err(format!("unexpected reply {other:?}")),
    };
    for i in resume_from..upto {
        let req = ProvisionRequest::Push {
            upload_id,
            index: i,
            sealed: upload.chunks[i as usize].clone(),
        };
        match exchange(chan, &req)? {
            ProvisionReply::ChunkOk { .. } => {}
            other => return Err(format!("unexpected reply {other:?}")),
        }
    }
    Ok(())
}

/// Spawns a provisioning server over `chan`, runs `f` on the tenant
/// side, then joins the server.
fn with_server<T, C, F, R>(registry: &Arc<Mutex<Registry>>, mut server: SecureChannel<T>, chan: C, f: F) -> R
where
    T: FrameTransport + 'static,
    F: FnOnce(C) -> R,
{
    let reg = Arc::clone(registry);
    let srv = std::thread::spawn(move || serve_provisioning(&reg, &mut server));
    let out = f(chan);
    srv.join().expect("provisioning server").expect("server transport");
    out
}

/// The seeded provisioning-fault mini-campaign: each scenario runs over
/// a real channel against a scratch registry; corruptions must be
/// rejected with nothing stored, torn uploads must resume exactly.
fn run_fault_campaign(s: &ColdstartSettings, model: &Model) -> FaultSummary {
    let mut summary = FaultSummary::default();
    let plain_len = encode_model(model).expect("encodes").0.len();
    let chunk_len = (plain_len / 6).max(1);
    for i in 0..s.fault_scenarios {
        let fault = ProvisionFault::arbitrary(&mut StdRng::seed_from_u64(s.seed ^ i));
        summary.injected += 1;
        let registry = Arc::new(Mutex::new(Registry::new(
            [0x5a; 32],
            RegistryConfig::default(),
        )));
        let name = format!("fault/{i}");
        let mut prepared = prepare_upload(model, &name, chunk_len).expect("prepares");
        let count = prepared.chunks.len() as u64;
        let verdict: Result<&str, String> = match fault {
            ProvisionFault::CorruptChunk { chunk, mask } => {
                let ci = (chunk % count) as usize;
                let mid = prepared.chunks[ci].len() / 2;
                prepared.chunks[ci][mid] ^= mask;
                expect_rejection(&registry, &prepared, "failed AEAD authentication")
            }
            ProvisionFault::TruncateChunk { chunk } => {
                let ci = (chunk % count) as usize;
                let keep = 4.min(prepared.chunks[ci].len());
                prepared.chunks[ci].truncate(keep);
                expect_rejection(&registry, &prepared, "chunk")
            }
            ProvisionFault::DropChunk { chunk } if count >= 2 => {
                let ci = (chunk % (count - 1)) as usize;
                prepared.chunks.remove(ci);
                expect_rejection(&registry, &prepared, "chunk")
            }
            ProvisionFault::ReorderChunks { chunk } if count >= 2 => {
                let ci = (chunk % (count - 1)) as usize;
                prepared.chunks.swap(ci, ci + 1);
                expect_rejection(&registry, &prepared, "chunk")
            }
            ProvisionFault::TornUpload { after } => {
                let tear = after % count;
                match torn_then_resumed(&registry, &prepared, tear) {
                    Ok(()) => {
                        summary.resumed += 1;
                        continue;
                    }
                    Err(e) => Err(format!("{fault}: {e}")),
                }
            }
            ProvisionFault::FingerprintMismatch => {
                prepared.manifest.fingerprint ^= 0x5a5a_5a5a;
                expect_rejection(&registry, &prepared, "fingerprint")
            }
            // Single-chunk geometries cannot drop or reorder.
            _ => {
                summary.injected -= 1;
                continue;
            }
        };
        match verdict {
            Ok(_) => {
                if registry.lock().expect("registry lock").stored() != 0 {
                    summary.missed.push(format!("{fault}: corrupt upload reached the store"));
                } else {
                    summary.detected += 1;
                }
            }
            Err(e) => summary.missed.push(e),
        }
    }
    summary
}

/// Drives a (mutated) upload and requires the registry to reject it with
/// an error containing `needle`, storing nothing.
fn expect_rejection(
    registry: &Arc<Mutex<Registry>>,
    prepared: &PreparedUpload,
    needle: &str,
) -> Result<&'static str, String> {
    let (tenant, server) = severable_channel_pair(b"coldstart-faults");
    with_server(registry, server, tenant, |mut chan| {
        // The channel drops on return, severing the wire, so the server
        // loop exits even when the rejected tenant just walks away.
        match drive_upload(&mut chan, prepared) {
            Ok(_) => Err("corrupt upload accepted".to_string()),
            Err(e) if e.to_string().contains(needle) => Ok("rejected"),
            Err(e) => Err(format!("imprecise rejection: {e}")),
        }
    })
}

/// Tears an upload at chunk `tear` (real disconnect), reconnects, and
/// requires the resume to start exactly there and complete.
fn torn_then_resumed(
    registry: &Arc<Mutex<Registry>>,
    prepared: &PreparedUpload,
    tear: u64,
) -> Result<(), String> {
    let (tenant, server) = severable_channel_pair(b"coldstart-torn");
    with_server(registry, server, tenant, |mut chan| {
        // The channel drops on return: a real mid-stream disconnect. The
        // server observes it and leaves the upload resumable.
        partial_upload(&mut chan, prepared, tear)
    })?;
    let (tenant, server) = severable_channel_pair(b"coldstart-resume");
    let outcome = with_server(registry, server, tenant, |mut chan| {
        let out = drive_upload(&mut chan, prepared);
        let _ = end_session(&mut chan);
        out
    })
    .map_err(|e| format!("resume failed: {e}"))?;
    if outcome.resumed_from != tear {
        return Err(format!(
            "resumed from chunk {} instead of the torn chunk {tear}",
            outcome.resumed_from
        ));
    }
    if !registry.lock().expect("registry lock").contains(prepared.manifest.fingerprint) {
        return Err("resumed upload did not reach the store".into());
    }
    Ok(())
}

/// Runs the coldstart experiment.
pub fn run_coldstart(s: &ColdstartSettings) -> ColdstartReport {
    mvtee_serve::register_serve_metrics();
    let warm_counter = mvtee_telemetry::counter("registry.coldstart.warm");
    let cold_counter = mvtee_telemetry::counter("registry.coldstart.cold");
    let warm_before = warm_counter.get();
    let cold_before = cold_counter.get();

    let mut kdk = [0x42u8; 32];
    kdk[..8].copy_from_slice(&s.seed.to_le_bytes());
    // Capacity: the population plus the resume-probe model; the overflow
    // probe at the end is what forces evictions.
    let registry = Arc::new(Mutex::new(Registry::new(
        kdk,
        RegistryConfig { max_bundles: s.models.len() + 1, ..RegistryConfig::default() },
    )));

    // ---- Phase 1: provision the population over the attested lane,
    // with the tenant's wire tapped for the plaintext sentry.
    let wire_log: Arc<Mutex<Vec<u8>>> = Arc::default();
    let models: Vec<(String, Model)> = s
        .models
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let model = zoo::build(kind, s.profile, s.seed).expect("zoo model builds");
            (format!("tenant-{i}/{}", kind.display_name()), model)
        })
        .collect();
    let mut needles: Vec<(String, Vec<u8>)> = Vec::new();
    let mut fingerprint = 0u64;
    let mut per_model: Vec<ModelColdstart> = Vec::new();
    let (tenant, server) = spied_channel_pair(b"coldstart-provision", &wire_log);
    let dedup_hit = with_server(&registry, server, tenant, |mut chan| {
        for (key, model) in &models {
            let (plain, fp, _) = encode_model(model).expect("encodes");
            fingerprint ^= fp;
            let mid = plain.len() / 2;
            needles.push((key.clone(), plain[mid..mid + NEEDLE_LEN].to_vec()));
            let prepared = prepare_upload(model, key, CHUNK_LEN).expect("prepares");
            let started = Instant::now();
            let outcome = drive_upload(&mut chan, &prepared).expect("population upload");
            let upload_s = started.elapsed().as_secs_f64();
            per_model.push(ModelColdstart {
                key: key.clone(),
                kind: model.kind.display_name().to_string(),
                plain_bytes: plain.len() as u64,
                sealed_bytes: outcome.bytes_sent,
                upload_ms: upload_s * 1e3,
                upload_mb_s: plain.len() as f64 / upload_s.max(1e-9) / 1e6,
                ttfi_cold_ms: Vec::new(),
                ttfi_p50_ms: 0.0,
                ttfi_p99_ms: 0.0,
                ttfi_warm_ms: 0.0,
                outputs_match: true,
                transcript_match: true,
            });
        }
        // A second tenant uploads the first model again under its own
        // name: content addressing must dedup it.
        let dup = upload_model(&mut chan, &models[0].1, "tenant-dup/same-model")
            .expect("duplicate upload");
        let _ = end_session(&mut chan);
        dup.dedup
    });

    // ---- Phase 2: the torn-upload resume probe (a fresh model, real
    // disconnect mid-stream).
    let resume_model =
        zoo::build(s.models[0], s.profile, s.seed ^ 0x7e57).expect("zoo model builds");
    let resume_prepared = prepare_upload(
        &resume_model,
        "tenant-resume/model",
        (encode_model(&resume_model).expect("encodes").0.len() / 5).max(1),
    )
    .expect("prepares");
    let resume_torn_at = (resume_prepared.chunks.len() as u64 / 2).max(1);
    let resume_result = torn_then_resumed(&registry, &resume_prepared, resume_torn_at);
    let resume_ok = resume_result.is_ok();

    // ---- Phase 3: the provisioning-fault mini-campaign (scratch
    // registries; every class Detected before a variant runs the model).
    let faults = run_fault_campaign(s, &models[0].1);

    // ---- Phase 4: serial references (outputs + audit transcripts) from
    // the in-memory models, then the byte-identity gate on a cold-started
    // deployment per model.
    let inputs: Vec<Tensor> =
        models.iter().map(|(_, m)| model_input(s.seed, m)).collect();
    let mut references: Vec<Tensor> = Vec::new();
    for (i, (key, model)) in models.iter().enumerate() {
        let mut ref_dep = Deployment::builder(model.clone())
            .partitions(PARTITIONS)
            .partition_seed(s.seed)
            .variant_seed(s.seed)
            .build()
            .expect("reference deployment builds");
        let ref_out = ref_dep.infer(&inputs[i]).expect("reference inference");
        let ref_transcript = ref_dep.transcript().render(s.seed, key);
        ref_dep.shutdown();

        let mut cold_dep = DeploymentBuilder::from_registry(&registry, key)
            .expect("registry checkout")
            .partitions(PARTITIONS)
            .partition_seed(s.seed)
            .variant_seed(s.seed)
            .build()
            .expect("cold deployment builds");
        let cold_out = cold_dep.infer(&inputs[i]).expect("cold inference");
        let cold_transcript = cold_dep.transcript().render(s.seed, key);
        cold_dep.shutdown();

        per_model[i].outputs_match = bits_equal(&ref_out, &cold_out);
        per_model[i].transcript_match = ref_transcript == cold_transcript;
        references.push(ref_out);
    }

    // ---- Phase 5: cold and warm TTFI through the serving frontend's
    // cold-start path; every served output is held to the reference.
    let provider = Arc::new(RegistryProvider { registry: Arc::clone(&registry), seed: s.seed });
    let cache = mvtee_runtime::session_cache();
    let fps: Vec<u64> = models.iter().map(|(_, m)| mvtee_registry::key_for(m)).collect();
    for trial in 0..=s.cold_trials {
        let warm_trial = trial == s.cold_trials;
        if !warm_trial {
            for fp in &fps {
                cache.evict(*fp);
            }
        }
        let frontend = ServeFrontend::start_with_cold_start(
            Vec::new(),
            ServeConfig::default(),
            Arc::<RegistryProvider>::clone(&provider),
        );
        let handle = frontend.handle();
        for (i, (key, _)) in models.iter().enumerate() {
            let ticket = handle
                .submit("bench", key, inputs[i].clone())
                .expect("unsaturated registry admits");
            let resp = ticket.wait().expect("frontend resolves the ticket");
            let ttfi_ms = resp.latency.as_secs_f64() * 1e3;
            match &resp.outcome {
                RequestOutcome::Ok(tensor) => {
                    if !bits_equal(tensor, &references[i]) {
                        per_model[i].outputs_match = false;
                    }
                }
                other => panic!("cold-start serve failed for {key}: {other:?}"),
            }
            if warm_trial {
                per_model[i].ttfi_warm_ms = ttfi_ms;
            } else {
                per_model[i].ttfi_cold_ms.push(ttfi_ms);
            }
        }
        frontend.shutdown();
    }
    for m in &mut per_model {
        m.ttfi_p50_ms = quantile_ms(&m.ttfi_cold_ms, 0.50);
        m.ttfi_p99_ms = quantile_ms(&m.ttfi_cold_ms, 0.99);
    }

    // ---- Phase 6: the plaintext sentry — no needle may appear in the
    // recorded wire frames or in the sealed store's host-visible bytes.
    let mut plaintext_sightings = Vec::new();
    {
        let wire = wire_log.lock().expect("wire log");
        let host = registry.lock().expect("registry lock").host_visible_bytes();
        for (key, needle) in &needles {
            if wire.windows(needle.len()).any(|w| w == &needle[..]) {
                plaintext_sightings.push(format!("{key}: needle found in wire frames"));
            }
            if host.windows(needle.len()).any(|w| w == &needle[..]) {
                plaintext_sightings.push(format!("{key}: needle found in sealed storage"));
            }
        }
    }

    // ---- Phase 7: the overflow probe — uploads past capacity must
    // evict LRU bundles, and evicted fingerprints drop their cached
    // engines.
    let mut engine_evictions = 0u64;
    for j in 0..s.evict_extra {
        let extra = zoo::build(
            s.models[j % s.models.len()],
            s.profile,
            s.seed ^ (0xe1c + j as u64),
        )
        .expect("zoo model builds");
        let prepared =
            prepare_upload(&extra, &format!("overflow/{j}"), CHUNK_LEN).expect("prepares");
        let mut reg = registry.lock().expect("registry lock");
        let adm = reg.begin(prepared.manifest.clone()).expect("overflow admitted");
        for (i, c) in prepared.chunks.iter().enumerate() {
            reg.push(adm.upload_id, i as u64, c).expect("overflow chunk");
        }
        reg.finalize(adm.upload_id, prepared.manifest.digest, None).expect("overflow finalize");
    }
    let evicted = registry.lock().expect("registry lock").drain_evictions();
    for fp in &evicted {
        engine_evictions += cache.evict(*fp) as u64;
    }

    // ---- Phase 8: the saturation probe — exhaust the pending-upload
    // slots, then require an unknown-key submission to shed ColdStart.
    {
        let mut reg = registry.lock().expect("registry lock");
        let mut j = 0u64;
        while !reg.saturated() {
            let manifest = UploadManifest {
                model_name: format!("sat/{j}"),
                fingerprint: 0xdead_0000 + j,
                digest: [j as u8; 32],
                total_len: 1024,
                chunk_len: 256,
                upload_key: [j as u8; 32],
                nonce_seed: 0xffff_0000 + j as u32,
            };
            reg.begin(manifest).expect("saturation filler admitted");
            j += 1;
        }
    }
    let frontend = ServeFrontend::start_with_cold_start(
        Vec::new(),
        ServeConfig::default(),
        Arc::<RegistryProvider>::clone(&provider),
    );
    let coldstart_shed_observed = matches!(
        frontend.handle().submit("bench", "never/uploaded", inputs[0].clone()),
        Err(ShedReason::ColdStart)
    );
    let queue = frontend.queue_stats();
    frontend.shutdown();

    ColdstartReport {
        seed: s.seed,
        fingerprint: format!("registry-{fingerprint:016x}-m{}", models.len()),
        models: per_model,
        plaintext_sightings,
        dedup_hit,
        resume_ok,
        resume_torn_at,
        resume_resumed_from: if resume_ok { resume_torn_at } else { u64::MAX },
        faults,
        warm_hits: warm_counter.get() - warm_before,
        cold_misses: cold_counter.get() - cold_before,
        evictions: evicted.len() as u64,
        engine_evictions,
        coldstart_shed_observed,
        queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_every_gate() {
        let mut s = ColdstartSettings::quick(7);
        s.cold_trials = 2;
        s.fault_scenarios = 8;
        let report = run_coldstart(&s);
        assert!(
            report.gate_failures().is_empty(),
            "gate failures: {:?}\n{}",
            report.gate_failures(),
            report.render_text()
        );
        assert_eq!(report.faults.missed.len(), 0);
        assert!(report.faults.detected + report.faults.resumed >= 1);
        let json = report.render_json();
        assert!(json.contains("\"schema\": \"mvtee-bench-registry-v1\""));
        assert!(json.contains("\"gate_failures\": 0"));
    }
}
