//! Real measurement of every cost component in an MVTEE configuration.
//!
//! For a (model, MVX configuration) pair this module partitions the model,
//! materialises the variants, executes each stage's variants on real
//! boundary tensors, and times:
//!
//! * per-variant inference (`variant_compute`),
//! * AES-GCM-256 sealing/opening of the real serialized checkpoint
//!   payloads (monitor- and variant-side),
//! * payload encode/decode,
//! * consistency-metric evaluation across the variant outputs.
//!
//! The resulting [`StageCosts`] feed the discrete-event composition in
//! [`crate::sim`].

use mvtee::config::{MvxConfig, PartitionMvx};
use mvtee::messages::{encode, StageRequest};
use mvtee::SpecPatch;
use mvtee::voting::{evaluate, VariantOutput};
use mvtee::VotingPolicy;
use mvtee_crypto::gcm::AesGcm;
use mvtee_diversify::{VariantGenerator, VariantSpec};
use mvtee_graph::zoo::Model;
use mvtee_graph::ValueId;
use mvtee_partition::PartitionSet;
use mvtee_runtime::{Engine, EngineConfig, EngineKind};
use mvtee_tensor::Tensor;
use std::collections::HashMap;
use std::time::Instant;

/// Number of timed repetitions per component (the median is kept: medians
/// compose under summation far better than minima — summing per-stage
/// minima would systematically undershoot a whole-model median).
const REPS: usize = 5;

/// Measured costs for one pipeline stage (seconds).
#[derive(Debug, Clone)]
pub struct StageCosts {
    /// Partition index.
    pub partition: usize,
    /// Raw measured seal cost of the input payload (before path rules).
    pub raw_seal_in: f64,
    /// Raw measured open cost of the output payload (before path rules).
    pub raw_open_out: f64,
    /// Raw measured variant-side crypto (open input + seal output).
    pub raw_variant_crypto: f64,
    /// Raw measured verification cost (before path rules).
    pub raw_verify: f64,
    /// Mean inference time per variant (includes the engine's own layout
    /// conversions etc.).
    pub variant_compute: Vec<f64>,
    /// Monitor-side cost to encode+seal the stage input payload, per
    /// variant dispatched.
    pub monitor_seal_in: f64,
    /// Monitor-side cost to open+decode one variant's output payload.
    pub monitor_open_out: f64,
    /// Variant-side crypto cost (open input + seal output).
    pub variant_crypto: f64,
    /// Consistency evaluation across all variant outputs (slow path only).
    pub verify: f64,
    /// Whether this stage takes the slow path.
    pub slow: bool,
    /// Input payload size in bytes (reporting).
    pub payload_in_bytes: usize,
    /// Output payload size in bytes (reporting).
    pub payload_out_bytes: usize,
}

/// A fully measured configuration.
#[derive(Debug, Clone)]
pub struct MeasuredConfig {
    /// Model display name.
    pub model: String,
    /// Baseline: unpartitioned single-engine inference time (seconds).
    pub baseline: f64,
    /// Per-stage costs in pipeline order.
    pub stages: Vec<StageCosts>,
    /// The partition set used.
    pub partition_set: PartitionSet,
}

fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let mut samples = [0.0f64; REPS];
    for s in samples.iter_mut() {
        let t0 = Instant::now();
        f();
        *s = t0.elapsed().as_secs_f64();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[REPS / 2]
}

/// Deterministic test input for a model.
pub fn model_input(model: &Model) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| ((i % 97) as f32 - 48.0) / 48.0).collect(),
        model.input_shape.dims(),
    )
    .expect("shape consistent")
}

/// Builds the variant specs the deployment would use for a claim, by
/// calling the deployment's own canonical constructor so measurements
/// always cover exactly the variants a deployment would run.
pub fn specs_for_claim(
    partition: usize,
    claim: &PartitionMvx,
    seed: u64,
    overrides: &HashMap<(usize, usize), EngineConfig>,
) -> Vec<VariantSpec> {
    let patches: HashMap<(usize, usize), SpecPatch> = overrides
        .iter()
        .map(|(&k, engine)| (k, SpecPatch::engine(engine.clone())))
        .collect();
    mvtee::build_specs(partition, claim, seed, &patches)
}

/// Measures the baseline (original, unpartitioned) inference time.
pub fn measure_baseline(model: &Model) -> f64 {
    let engine = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
    let prepared = engine.prepare(&model.graph).expect("zoo model prepares");
    let input = model_input(model);
    // Warm up once, as §6.1 does.
    let _ = prepared.run(std::slice::from_ref(&input));
    time_min(|| {
        let _ = prepared.run(std::slice::from_ref(&input));
    })
}

/// Measures all stage costs for a model under an MVX configuration.
///
/// # Panics
///
/// Panics on internal inconsistencies (zoo models and valid configs never
/// trigger them).
pub fn measure(
    model: &Model,
    config: &MvxConfig,
    overrides: &HashMap<(usize, usize), EngineConfig>,
) -> MeasuredConfig {
    measure_with_baseline(model, config, overrides, None)
}

/// [`measure`] with a pre-measured baseline (lets experiments measure the
/// original model once per model instead of once per configuration).
pub fn measure_with_baseline(
    model: &Model,
    config: &MvxConfig,
    overrides: &HashMap<(usize, usize), EngineConfig>,
    baseline: Option<f64>,
) -> MeasuredConfig {
    config.validate().expect("valid config");
    // The deployment's default variant seed, so measurements cover exactly
    // the variants a default deployment would run.
    const VARIANT_SEED: u64 = 0xd1ce;
    let set = mvtee::select_partition_set(&model.graph, config.partitions, config.partition_seed)
        .expect("partitioning succeeds on zoo models");
    let subgraphs = set.extract_subgraphs(&model.graph).expect("extraction succeeds");
    let generator = VariantGenerator::new(VARIANT_SEED);

    // Produce real boundary tensors by running the reference chain.
    let reference = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
    let mut env: HashMap<ValueId, Tensor> = HashMap::new();
    env.insert(model.graph.inputs()[0], model_input(model));
    let mut stage_inputs: Vec<Vec<Tensor>> = Vec::with_capacity(set.len());
    for (p, sub) in subgraphs.iter().enumerate() {
        let plan = &set.stages[p];
        let inputs: Vec<Tensor> =
            plan.inputs.iter().map(|v| env[v].clone()).collect();
        stage_inputs.push(inputs.clone());
        let prepared = reference.prepare(sub).expect("subgraph prepares");
        let outputs = prepared.run(&inputs).expect("subgraph runs");
        for (v, t) in plan.outputs.iter().zip(outputs) {
            env.insert(*v, t);
        }
    }

    let cipher = AesGcm::new_256(&[7u8; 32]);
    let mut stages = Vec::with_capacity(set.len());
    for (p, claim) in config.claims.iter().enumerate() {
        let specs = specs_for_claim(p, claim, VARIANT_SEED, overrides);
        let inputs = &stage_inputs[p];

        // Real payload bytes.
        let in_payload = encode(&StageRequest::Input { batch: 0, trace: (0, 0), tensors: inputs.clone() })
            .expect("payload encodes");

        let mut variant_compute = Vec::with_capacity(specs.len());
        let mut outputs_per_variant: Vec<Vec<Tensor>> = Vec::with_capacity(specs.len());
        for spec in &specs {
            let bundle =
                generator.materialize(&subgraphs[p], p, spec).expect("variant materialises");
            let engine = Engine::new(spec.engine.clone());
            let prepared = engine.prepare(&bundle.graph).expect("bundle prepares");
            let _ = prepared.run(inputs); // warm-up
            let t = time_min(|| {
                let _ = prepared.run(inputs);
            });
            variant_compute.push(t);
            outputs_per_variant.push(prepared.run(inputs).expect("bundle runs"));
        }
        let out_payload = encode(&StageRequest::Input {
            trace: (0, 0),
            batch: 0,
            tensors: outputs_per_variant[0].clone(),
        })
        .expect("payload encodes");

        // Raw crypto costs on the real payloads; path rules apply them in
        // `apply_path_rules` so the same measurement backs the fast/slow
        // and encrypted/plain comparisons without compute re-measurement
        // noise.
        let raw_seal_in = time_min(|| {
            let _ = cipher.seal(&[0u8; 12], &in_payload, b"aad");
        });
        let sealed_out = cipher.seal(&[0u8; 12], &out_payload, b"aad");
        let raw_open_out = time_min(|| {
            let _ = cipher.open(&[0u8; 12], &sealed_out, b"aad").expect("authentic");
        });
        let sealed_in = cipher.seal(&[0u8; 12], &in_payload, b"aad");
        let open_in = time_min(|| {
            let _ = cipher.open(&[0u8; 12], &sealed_in, b"aad").expect("authentic");
        });
        let seal_out = time_min(|| {
            let _ = cipher.seal(&[0u8; 12], &out_payload, b"aad");
        });
        let raw_variant_crypto = open_in + seal_out;

        // Verification cost across the real outputs.
        let voting_inputs: Vec<VariantOutput> =
            outputs_per_variant.iter().map(|o| VariantOutput::Ok(o.clone())).collect();
        let metric = claim.metric;
        let raw_verify = time_min(|| {
            let _ = evaluate(&voting_inputs, metric, VotingPolicy::Unanimous);
        });

        stages.push(StageCosts {
            partition: p,
            raw_seal_in,
            raw_open_out,
            raw_variant_crypto,
            raw_verify,
            variant_compute,
            monitor_seal_in: 0.0,
            monitor_open_out: 0.0,
            variant_crypto: 0.0,
            verify: 0.0,
            slow: false,
            payload_in_bytes: in_payload.len(),
            payload_out_bytes: out_payload.len(),
        });
    }

    let mut measured = MeasuredConfig {
        model: model.kind.display_name().to_string(),
        baseline: baseline.unwrap_or_else(|| measure_baseline(model)),
        stages,
        partition_set: set,
    };
    apply_path_rules(&mut measured, config);
    measured
}

/// Re-applies the slow/fast-path and encryption cost-attribution rules of
/// Fig 7 to an existing measurement, so several configurations sharing the
/// same partition set and claims can be compared without re-measuring the
/// (noise-dominated) compute components.
///
/// Note: the fast-path rule models the *paper's* design, where outputs
/// "directly fall through to the next partition variants" over
/// variant-to-variant channels. The threaded reference implementation in
/// `mvtee::pipeline` relays through per-stage coordinators even on the
/// fast path (without evaluation); the composition model deliberately
/// reflects the paper's architecture, which the coordinators stand in for.
///
/// Rules: on the fast path, outputs "directly fall through to the next
/// partition variants" over variant-to-variant channels — the monitor pays
/// per-batch crypto only to seed the first stage, to collect the last
/// stage's output, and around every slow-path checkpoint.
pub fn apply_path_rules(measured: &mut MeasuredConfig, config: &MvxConfig) {
    let n = measured.stages.len();
    let slows: Vec<bool> = (0..n).map(|p| config.slow_path(p)).collect();
    for (p, stage) in measured.stages.iter_mut().enumerate() {
        let slow = slows[p];
        let prev_slow = p == 0 || slows[p - 1];
        let is_last = p + 1 == n;
        stage.slow = slow;
        stage.verify = if slow { stage.raw_verify } else { 0.0 };
        if config.encrypt {
            stage.monitor_seal_in = if prev_slow { stage.raw_seal_in } else { 0.0 };
            stage.monitor_open_out =
                if slow || is_last { stage.raw_open_out } else { 0.0 };
            stage.variant_crypto = stage.raw_variant_crypto;
        } else {
            stage.monitor_seal_in = 0.0;
            stage.monitor_open_out = 0.0;
            stage.variant_crypto = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

    #[test]
    fn measures_a_fast_path_config() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 3).unwrap();
        let cfg = MvxConfig::fast_path(3);
        let measured = measure(&m, &cfg, &HashMap::new());
        assert_eq!(measured.stages.len(), 3);
        assert!(measured.baseline > 0.0);
        for s in &measured.stages {
            assert_eq!(s.variant_compute.len(), 1);
            assert!(s.variant_compute[0] > 0.0);
            assert!(s.variant_crypto > 0.0, "encryption on by default");
            assert!(!s.slow);
            assert_eq!(s.verify, 0.0);
            assert!(s.payload_in_bytes > 0);
        }
        // Fast path: only the monitor-seeded first stage pays a monitor
        // seal, and only the last stage pays a monitor open.
        assert!(measured.stages[0].monitor_seal_in > 0.0);
        assert_eq!(measured.stages[1].monitor_seal_in, 0.0);
        assert_eq!(measured.stages[0].monitor_open_out, 0.0);
        assert!(measured.stages[2].monitor_open_out > 0.0);
    }

    #[test]
    fn measures_selective_mvx() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 3).unwrap();
        let cfg = MvxConfig::selective(3, &[1], 3);
        let measured = measure(&m, &cfg, &HashMap::new());
        assert_eq!(measured.stages[1].variant_compute.len(), 3);
        assert!(measured.stages[1].slow);
        assert!(measured.stages[1].verify > 0.0);
        assert!(!measured.stages[0].slow);
    }

    #[test]
    fn no_encryption_zeroes_crypto_costs() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 3).unwrap();
        let mut cfg = MvxConfig::fast_path(2);
        cfg.encrypt = false;
        let measured = measure(&m, &cfg, &HashMap::new());
        for s in &measured.stages {
            assert_eq!(s.monitor_seal_in, 0.0);
            assert_eq!(s.variant_crypto, 0.0);
        }
    }
}
