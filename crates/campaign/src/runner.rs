//! Scenario execution and the detection-invariant classifier.
//!
//! Each scenario runs through the real `mvtee-core` threaded pipeline and
//! its outcome is classified against the detection invariant:
//!
//! * **Detected** — a divergence fired at the first slow-path checkpoint
//!   at-or-after the injected partition,
//! * **Crashed** — the faulted variant died and the monitor recorded it,
//! * **Masked** — no alarm, and re-executing the faulted variant
//!   *standalone* (same subgraph, same stage inputs, same fault) produces
//!   output bit-identical to its clean run — the fault provably had no
//!   observable effect,
//! * **Missed** — everything else: the fault changed the variant's output
//!   and no checkpoint caught it. A correct deployment never produces
//!   this; the campaign treats any MISSED as a finding and shrinks it.

use crate::scenario::{Defender, Scenario};
use mvtee::{
    build_specs, select_partition_set, DegradationPolicy, Deployment, EventLog, MvxConfig,
    PartitionMvx, PathMode, RecoveryPolicy, ResponsePolicy, SpecPatch,
};
use mvtee_faults::cve::InputTrigger;
use mvtee_faults::{flip_weight_bits, Attack, FaultDescriptor, LivenessFault, NetFaultClass};
use mvtee_graph::zoo::{self, Model, ScaleProfile};
use mvtee_graph::ValueId;
use mvtee_runtime::{Engine, EngineConfig, EngineKind};
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Classified result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Divergence detected at the first checkpoint at-or-after injection.
    Detected {
        /// Partition whose checkpoint fired.
        partition: usize,
    },
    /// The faulted variant crashed and the monitor recorded it.
    Crashed {
        /// Partition of the crashed variant.
        partition: usize,
        /// Crashed variant index.
        variant: usize,
    },
    /// Provably masked: the faulted variant's standalone output is
    /// bit-identical to its clean run.
    Masked,
    /// The watchdog quarantined the faulted variant, the recovery manager
    /// re-provisioned it, and the panel returned to full strength — every
    /// forwarded output stayed correct throughout.
    Recovered {
        /// Partition of the recovered panel.
        partition: usize,
        /// The variant index that was quarantined and replaced.
        variant: usize,
    },
    /// A liveness fault knocked a variant out with recovery disabled: the
    /// stream completed on the surviving quorum with every checkpoint
    /// passing and every forwarded output correct.
    DegradedButCorrect,
    /// The detection invariant failed.
    Missed {
        /// Why the scenario counts as missed.
        reason: String,
    },
}

impl Outcome {
    /// Matrix bucket label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Detected { .. } => "detected",
            Outcome::Crashed { .. } => "crashed",
            Outcome::Masked => "masked",
            Outcome::Recovered { .. } => "recovered",
            Outcome::DegradedButCorrect => "degraded",
            Outcome::Missed { .. } => "missed",
        }
    }

    /// Is this a MISSED outcome?
    pub fn is_missed(&self) -> bool {
        matches!(self, Outcome::Missed { .. })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Detected { partition } => write!(f, "detected@p{partition}"),
            Outcome::Crashed { partition, variant } => write!(f, "crashed@p{partition}v{variant}"),
            Outcome::Masked => write!(f, "masked"),
            Outcome::Recovered { partition, variant } => {
                write!(f, "recovered@p{partition}v{variant}")
            }
            Outcome::DegradedButCorrect => write!(f, "degraded-but-correct"),
            Outcome::Missed { reason } => write!(f, "MISSED ({reason})"),
        }
    }
}

/// The deterministic (seeded) trigger input of a scenario. Marker-class
/// CVE faults get the crafted first element.
pub fn trigger_input(sc: &Scenario, model: &Model) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(sc.seed ^ 0x17_19_u64);
    let mut data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    if let FaultDescriptor::Cve(Attack { trigger: InputTrigger::MagicMarker(m), .. }) = &sc.fault {
        if let Some(first) = data.first_mut() {
            *first = *m;
        }
    }
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// Engine configuration of the single-variant (non-panel) partitions:
/// always a configuration the scenario's fault cannot touch, so the
/// injection point is exactly the panel.
fn nonpanel_engine(sc: &Scenario) -> EngineConfig {
    match &sc.fault {
        // "Different RT" is not susceptible to any CVE class.
        FaultDescriptor::Cve(_) => EngineConfig::of_kind(EngineKind::TvmLike),
        // A backend the platform-wide BLAS fault does not target.
        FaultDescriptor::BlasFault(_) => {
            EngineConfig::of_kind(EngineKind::OrtLike).with_blas(defender_blas(sc))
        }
        // Bit flips are sealed into one panel variant only.
        FaultDescriptor::WeightBitFlip(_) => EngineConfig::of_kind(EngineKind::OrtLike),
        // Liveness and wire faults live in one panel host's
        // scheduling/transport stack; non-panel partitions are untouched
        // by construction.
        FaultDescriptor::Stall(_) | FaultDescriptor::Channel(_) | FaultDescriptor::Net(_) => {
            EngineConfig::of_kind(EngineKind::OrtLike)
        }
    }
}

fn defender_blas(sc: &Scenario) -> mvtee_runtime::BlasKind {
    match &sc.defender {
        Defender::Blas(b) => *b,
        // Scenario generation pairs FrameFlip with a BLAS defender; for
        // hand-written specs fall back to any untargeted backend.
        _ => match &sc.fault {
            FaultDescriptor::BlasFault(ff) => mvtee_runtime::BlasKind::ALL
                .iter()
                .copied()
                .find(|b| *b != ff.target)
                .expect("more than one blas kind exists"),
            _ => mvtee_runtime::BlasKind::Blocked,
        },
    }
}

/// The spec patch a defender variant receives.
fn defender_patch(sc: &Scenario) -> Option<SpecPatch> {
    match &sc.defender {
        Defender::RtTvm => Some(SpecPatch::engine(EngineConfig::of_kind(EngineKind::TvmLike))),
        Defender::RtReference => {
            Some(SpecPatch::engine(EngineConfig::of_kind(EngineKind::Reference)))
        }
        Defender::Hardening(h) => {
            Some(SpecPatch { hardening: Some(vec![h.clone()]), ..Default::default() })
        }
        Defender::Aslr => Some(SpecPatch { aslr_seed: Some(0xA51B), ..Default::default() }),
        Defender::Blas(b) => {
            Some(SpecPatch::engine(EngineConfig::of_kind(EngineKind::OrtLike).with_blas(*b)))
        }
        // Keep the claim's default engine; only pin the kernel-strategy
        // axis, so the panel mixes microkernels over identical weights.
        Defender::Strategy(ks) => Some(SpecPatch::kernel(*ks)),
        Defender::Replica => None,
    }
}

/// The full `(partition, variant) → SpecPatch` map of a scenario — shared
/// by the deployment builder and the standalone masked-check so both see
/// the exact same variant specs.
pub fn scenario_overrides(sc: &Scenario) -> HashMap<(usize, usize), SpecPatch> {
    let mut map = HashMap::new();
    for p in 0..sc.partitions {
        if p != sc.mvx_partition {
            map.insert((p, 0), SpecPatch::engine(nonpanel_engine(sc)));
        }
    }
    // Panel variant 0: the fault's target (or, when immune, a defender
    // configuration like everyone else).
    match &sc.fault {
        FaultDescriptor::BlasFault(ff) => {
            let blas = if sc.immune { defender_blas(sc) } else { ff.target };
            map.insert(
                (sc.mvx_partition, 0),
                SpecPatch::engine(EngineConfig::of_kind(EngineKind::OrtLike).with_blas(blas)),
            );
        }
        FaultDescriptor::Cve(_) => {
            if sc.immune {
                if let Some(patch) = defender_patch(sc) {
                    map.insert((sc.mvx_partition, 0), patch);
                }
            }
            // else: the replicated default (plain ORT-like) is susceptible.
        }
        FaultDescriptor::WeightBitFlip(_) => {}
        // The liveness and net cycles pair with Replica: variant 0 keeps
        // the default spec and the fault is injected into its host (or
        // its wire) instead.
        FaultDescriptor::Stall(_) | FaultDescriptor::Channel(_) | FaultDescriptor::Net(_) => {}
    }
    for v in 1..sc.panel_size {
        if let Some(patch) = defender_patch(sc) {
            map.insert((sc.mvx_partition, v), patch);
        }
    }
    map
}

/// Checkpoint deadline of the liveness scenarios, in ms: tight enough
/// that a hung variant is escalated within one batch of CI time, wide
/// enough that a healthy Test-scale batch never trips it.
const LIVENESS_DEADLINE_MS: u64 = 300;

/// The scenario's MVX configuration.
pub fn scenario_config(sc: &Scenario) -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(sc.partitions);
    cfg.partition_seed = sc.partition_seed;
    cfg.path = if sc.force_fast { PathMode::ForceFast } else { PathMode::Hybrid };
    cfg.claims[sc.mvx_partition] = PartitionMvx {
        variants: sc.panel_size,
        replicated: true,
        metric: if sc.defender.homogeneous() { Metric::exact() } else { Metric::relaxed() },
        intra_op_threads: 1,
    };
    match &sc.fault {
        // Stall scenarios exercise the full detect → quarantine →
        // re-provision → rejoin loop: watchdog deadline tight, recovery
        // on, service continues on the surviving quorum meanwhile.
        FaultDescriptor::Stall(_) => {
            cfg.checkpoint_deadline_ms = LIVENESS_DEADLINE_MS;
            cfg.response = ResponsePolicy::ContinueWithMajority;
            cfg.degradation = DegradationPolicy::Degrade;
            cfg.recovery = RecoveryPolicy::enabled();
        }
        // Channel scenarios exercise graceful degradation without
        // recovery: the panel drops to survivors for the rest of the
        // stream.
        FaultDescriptor::Channel(_) => {
            cfg.checkpoint_deadline_ms = LIVENESS_DEADLINE_MS;
            cfg.response = ResponsePolicy::ContinueWithMajority;
            cfg.degradation = DegradationPolicy::Degrade;
        }
        // Wire faults run the same self-healing loop as stalls: the wire
        // misbehaves, the link errors (AEAD / framing / deadline), the
        // member is quarantined and a clean replacement rejoins.
        FaultDescriptor::Net(_) => {
            cfg.checkpoint_deadline_ms = LIVENESS_DEADLINE_MS;
            cfg.response = ResponsePolicy::ContinueWithMajority;
            cfg.degradation = DegradationPolicy::Degrade;
            cfg.recovery = RecoveryPolicy::enabled();
        }
        _ => {}
    }
    cfg
}

/// Runs one scenario through the real threaded pipeline and classifies
/// the outcome against the detection invariant.
///
/// # Errors
///
/// Returns `Err` only for infrastructure failures (model build or
/// deployment bootstrap); fault effects never error.
pub fn run_scenario(sc: &Scenario, profile: ScaleProfile) -> Result<Outcome, String> {
    // Liveness faults attack progress, not values: they need a
    // multi-batch stream (so the panel can re-form mid-stream) and their
    // own classifier. Wire faults attack the transport itself and get
    // their own runner on top of the same streaming skeleton.
    if matches!(sc.fault, FaultDescriptor::Stall(_) | FaultDescriptor::Channel(_)) {
        return run_liveness_scenario(sc, profile);
    }
    if matches!(sc.fault, FaultDescriptor::Net(_)) {
        return run_netfault_scenario(sc, profile);
    }
    let model = zoo::build(sc.model, profile, sc.seed).map_err(|e| e.to_string())?;
    let input = trigger_input(sc, &model);
    let cfg = scenario_config(sc);
    let overrides = scenario_overrides(sc);

    let mut builder = Deployment::builder(model).config(cfg.clone());
    for ((p, v), patch) in &overrides {
        builder = builder.spec_patch(*p, *v, patch.clone());
    }
    builder = match &sc.fault {
        FaultDescriptor::Cve(attack) => builder.attack(*attack),
        FaultDescriptor::BlasFault(ff) => builder.frameflip(ff.clone()),
        FaultDescriptor::WeightBitFlip(fault) => {
            builder.weight_fault(sc.mvx_partition, 0, *fault)
        }
        FaultDescriptor::Stall(f) => {
            builder.liveness_fault(sc.mvx_partition, 0, LivenessFault::Stall(*f))
        }
        FaultDescriptor::Channel(f) => {
            builder.liveness_fault(sc.mvx_partition, 0, LivenessFault::Channel(*f))
        }
        FaultDescriptor::Net(nf) => builder.net_fault(sc.mvx_partition, 0, *nf),
    };
    let mut d = builder.build().map_err(|e| e.to_string())?;
    // One batch: the campaign asserts detection at the first checkpoint,
    // so a single traversal exercises the full invariant.
    let _ = d.infer(&input);
    let events: EventLog = d.events().clone();
    let crashes = events.crashes();
    let divergences = events.divergences();
    let passes = events.checkpoint_passes();
    d.shutdown();

    Ok(classify(sc, &cfg, &crashes, &divergences, &passes, profile))
}

/// Batches every liveness scenario streams before classification starts
/// — enough for the fault to fire and the panel to react.
const LIVENESS_BATCHES: u64 = 6;
/// Hard cap on extra batches streamed while waiting for a recovered
/// variant to rejoin at full strength (bounds scenario wall-clock; a
/// recovery that has not landed by then is a finding, not a wait).
const LIVENESS_BATCH_CAP: u64 = 40;
/// Inputs cycle with this period so consecutive batches are
/// distinguishable (a stale frame cannot impersonate a fresh one) while
/// the clean oracle stays a constant-size prefix.
const LIVENESS_INPUT_PERIOD: u64 = 3;

/// The deterministic input of liveness batch `batch`.
fn liveness_input(sc: &Scenario, model: &Model, batch: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    let mut rng =
        StdRng::seed_from_u64(sc.seed ^ 0x17_19_u64 ^ (batch % LIVENESS_INPUT_PERIOD));
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

/// Runs a liveness (stall / lossy-channel) scenario: streams batches
/// through the real pipeline with the fault injected into panel variant
/// 0's host, checks every forwarded output bit-for-bit against an
/// unfaulted oracle deployment, and classifies against the self-healing
/// invariant — the watchdog resolves the fault within its deadline and
/// the panel either returns to full strength ([`Outcome::Recovered`]) or
/// degrades gracefully ([`Outcome::DegradedButCorrect`]).
fn run_liveness_scenario(sc: &Scenario, profile: ScaleProfile) -> Result<Outcome, String> {
    let fault = match &sc.fault {
        FaultDescriptor::Stall(f) => LivenessFault::Stall(*f),
        FaultDescriptor::Channel(f) => LivenessFault::Channel(*f),
        other => return Err(format!("not a liveness fault: {other}")),
    };
    let cfg = scenario_config(sc);
    let overrides = scenario_overrides(sc);
    let build = |model| {
        let mut builder = Deployment::builder(model).config(cfg.clone());
        for ((p, v), patch) in &overrides {
            builder = builder.spec_patch(*p, *v, patch.clone());
        }
        builder
    };

    let model = zoo::build(sc.model, profile, sc.seed).map_err(|e| e.to_string())?;
    let inputs: Vec<Tensor> =
        (0..LIVENESS_INPUT_PERIOD).map(|b| liveness_input(sc, &model, b)).collect();

    // The correctness oracle: the identical deployment without the fault.
    let mut clean = build(model).build().map_err(|e| e.to_string())?;
    let mut expected = Vec::with_capacity(inputs.len());
    for input in &inputs {
        expected.push(clean.infer(input).map_err(|e| format!("oracle run failed: {e}"))?);
    }
    clean.shutdown();

    let faulted_model = zoo::build(sc.model, profile, sc.seed).map_err(|e| e.to_string())?;
    let mut d = build(faulted_model)
        .liveness_fault(sc.mvx_partition, 0, fault)
        .build()
        .map_err(|e| e.to_string())?;

    let p = sc.mvx_partition;
    let mut verdict: Option<Outcome> = None;
    for b in 0..LIVENESS_BATCH_CAP {
        let idx = (b % LIVENESS_INPUT_PERIOD) as usize;
        match d.infer(&inputs[idx]) {
            Ok(out) => {
                if !bits_equal(std::slice::from_ref(&out), std::slice::from_ref(&expected[idx]))
                {
                    verdict = Some(Outcome::Missed {
                        reason: format!("liveness fault corrupted the output of batch {b}"),
                    });
                    break;
                }
            }
            Err(e) => {
                verdict = Some(Outcome::Missed {
                    reason: format!("stream failed at batch {b}: {e}"),
                });
                break;
            }
        }
        if b + 1 < LIVENESS_BATCHES {
            continue;
        }
        // Terminal-state check: stop streaming once the invariant holds.
        let events = d.events();
        match &sc.fault {
            FaultDescriptor::Stall(_) => {
                if let Some(&(qp, qv, qb)) = events.quarantines().first() {
                    let rejoined = events.recoveries().contains(&(qp, qv))
                        && events.checkpoint_passes().iter().any(|&(pp, pb, agreeing)| {
                            pp == qp && pb > qb && agreeing == sc.panel_size
                        });
                    if rejoined {
                        verdict =
                            Some(Outcome::Recovered { partition: qp, variant: qv });
                        break;
                    }
                    // Recovery is asynchronous: give the manager a beat
                    // before the next batch dispatches.
                    std::thread::sleep(std::time::Duration::from_millis(20));
                } else {
                    // The watchdog never fired and every output matched:
                    // a sub-deadline delay, provably without effect.
                    verdict = Some(Outcome::Masked);
                    break;
                }
            }
            FaultDescriptor::Channel(_) => {
                // Without a recovery manager no Quarantined event exists;
                // the degradation signature is a checkpoint that passed
                // on the surviving quorum after a detection.
                let degraded_pass = events
                    .checkpoint_passes()
                    .iter()
                    .any(|&(pp, _, agreeing)| pp == p && agreeing == sc.panel_size - 1);
                if degraded_pass {
                    verdict = Some(Outcome::DegradedButCorrect);
                    break;
                }
                if events.detection_count() == 0 {
                    verdict = Some(Outcome::Masked);
                    break;
                }
            }
            // run_liveness_scenario is only entered for liveness faults.
            _ => unreachable!("non-liveness fault in liveness runner"),
        }
    }
    let verdict = verdict.unwrap_or_else(|| Outcome::Missed {
        reason: format!(
            "panel never reached a terminal state within {LIVENESS_BATCH_CAP} batches"
        ),
    });
    d.shutdown();
    Ok(verdict)
}

/// Runs a wire-fault scenario: streams batches through the real pipeline
/// with a seeded [`mvtee_faults::NetFault`] wrapped around panel variant
/// 0's response transport, checks every forwarded output bit-for-bit
/// against an unfaulted oracle deployment, and classifies against the
/// adversarial-transport invariant:
///
/// * corruption classes (corrupt / truncate / torn) must surface as AEAD
///   or framing link errors — never as silently-accepted bytes — and the
///   quarantined member must be replaced ([`Outcome::Recovered`]);
/// * liveness classes (stall / drop / disconnect / duplicate) must heal
///   through the same quarantine → re-provision loop;
/// * only a sub-deadline delay may end [`Outcome::Masked`] — every frame
///   arrived intact and on time, so there is provably nothing to detect.
fn run_netfault_scenario(sc: &Scenario, profile: ScaleProfile) -> Result<Outcome, String> {
    let nf = match &sc.fault {
        FaultDescriptor::Net(nf) => *nf,
        other => return Err(format!("not a net fault: {other}")),
    };
    let cfg = scenario_config(sc);
    let overrides = scenario_overrides(sc);
    let build = |model| {
        let mut builder = Deployment::builder(model).config(cfg.clone());
        for ((p, v), patch) in &overrides {
            builder = builder.spec_patch(*p, *v, patch.clone());
        }
        builder
    };

    let model = zoo::build(sc.model, profile, sc.seed).map_err(|e| e.to_string())?;
    let inputs: Vec<Tensor> =
        (0..LIVENESS_INPUT_PERIOD).map(|b| liveness_input(sc, &model, b)).collect();

    // The correctness oracle: the identical deployment on a clean wire.
    let mut clean = build(model).build().map_err(|e| e.to_string())?;
    let mut expected = Vec::with_capacity(inputs.len());
    for input in &inputs {
        expected.push(clean.infer(input).map_err(|e| format!("oracle run failed: {e}"))?);
    }
    clean.shutdown();

    let faulted_model = zoo::build(sc.model, profile, sc.seed).map_err(|e| e.to_string())?;
    let mut d = build(faulted_model)
        .net_fault(sc.mvx_partition, 0, nf)
        .build()
        .map_err(|e| e.to_string())?;

    let mut verdict: Option<Outcome> = None;
    for b in 0..LIVENESS_BATCH_CAP {
        let idx = (b % LIVENESS_INPUT_PERIOD) as usize;
        match d.infer(&inputs[idx]) {
            Ok(out) => {
                if !bits_equal(std::slice::from_ref(&out), std::slice::from_ref(&expected[idx]))
                {
                    verdict = Some(Outcome::Missed {
                        reason: format!("wire fault corrupted the output of batch {b}"),
                    });
                    break;
                }
            }
            Err(e) => {
                verdict = Some(Outcome::Missed {
                    reason: format!("stream failed at batch {b}: {e}"),
                });
                break;
            }
        }
        if b + 1 < LIVENESS_BATCHES {
            continue;
        }
        // Terminal-state check: stop streaming once the invariant holds.
        let events = d.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            let rejoined = events.recoveries().contains(&(qp, qv))
                && events.checkpoint_passes().iter().any(|&(pp, pb, agreeing)| {
                    pp == qp && pb > qb && agreeing == sc.panel_size
                });
            if rejoined {
                verdict = Some(Outcome::Recovered { partition: qp, variant: qv });
                break;
            }
            // Recovery is asynchronous: give the manager a beat before
            // the next batch dispatches.
            std::thread::sleep(std::time::Duration::from_millis(20));
        } else if matches!(nf.class, NetFaultClass::Delay { .. }) {
            // Every frame arrived intact, on time, and in order: a
            // sub-deadline delay is provably without effect. No other
            // class may end here — a corrupted or dropped frame that
            // raised no alarm is a MISSED, caught by the batch cap.
            verdict = Some(Outcome::Masked);
            break;
        }
    }
    let verdict = verdict.unwrap_or_else(|| Outcome::Missed {
        reason: format!(
            "wire fault raised no alarm and the panel never healed within \
             {LIVENESS_BATCH_CAP} batches"
        ),
    });
    d.shutdown();
    Ok(verdict)
}

fn classify(
    sc: &Scenario,
    cfg: &MvxConfig,
    crashes: &[(usize, usize, u64)],
    divergences: &[(usize, u64, Vec<usize>)],
    passes: &[(usize, u64, usize)],
    profile: ScaleProfile,
) -> Outcome {
    let inject = sc.mvx_partition;
    let expected = (inject..sc.partitions).find(|&p| cfg.slow_path(p));

    // (b) The variant crashed and the monitor recorded it.
    if let Some((p, v)) = crashes
        .iter()
        .filter(|(p, _, _)| *p >= inject)
        .map(|(p, v, _)| (*p, *v))
        .min()
    {
        return Outcome::Crashed { partition: p, variant: v };
    }
    // (a) Divergence at the first checkpoint at-or-after injection.
    if let Some(first) = divergences.iter().map(|(p, _, _)| *p).filter(|p| *p >= inject).min() {
        return match expected {
            Some(e) if first == e => Outcome::Detected { partition: first },
            _ => Outcome::Missed {
                reason: format!(
                    "divergence surfaced at partition {first} but the first checkpoint \
                     at-or-after injection is {expected:?}"
                ),
            },
        };
    }
    if divergences.iter().any(|(p, _, _)| *p < inject)
        || crashes.iter().any(|(p, _, _)| *p < inject)
    {
        return Outcome::Missed {
            reason: "spurious detection before the injection point".into(),
        };
    }
    // (c) No alarm: the fault must be provably masked.
    match standalone_masked(sc, profile) {
        Ok(true) => {
            // The "all clear" must come from a checkpoint that actually
            // evaluated, not from the absence of any checkpoint.
            if expected.is_some() && !passes.iter().any(|(p, _, _)| Some(*p) == expected) {
                Outcome::Missed {
                    reason: "no checkpoint verdict recorded at the panel partition".into(),
                }
            } else if expected.is_none() {
                Outcome::Missed {
                    reason: "no slow-path checkpoint covers the injection point".into(),
                }
            } else {
                Outcome::Masked
            }
        }
        Ok(false) => Outcome::Missed {
            reason: "fault changed the variant's standalone output but no checkpoint caught it"
                .into(),
        },
        Err(e) => Outcome::Missed { reason: format!("masked-check failed: {e}") },
    }
}

/// Proves (or refutes) masking: re-executes the faulted variant standalone
/// — same subgraph, same stage inputs, same fault — and compares its
/// output with its own clean run under the panel's own checkpoint metric.
/// A fault whose effect that metric cannot see is masked by construction:
/// no checkpoint configured for this panel could ever flag it. (For
/// homogeneous panels the metric is [`Metric::exact`], so this is the
/// bit-for-bit comparison it reads as.)
fn standalone_masked(sc: &Scenario, profile: ScaleProfile) -> Result<bool, String> {
    let model = zoo::build(sc.model, profile, sc.seed).map_err(|e| e.to_string())?;
    let set = select_partition_set(&model.graph, sc.partitions, sc.partition_seed)
        .map_err(|e| e.to_string())?;
    let subgraphs = set.extract_subgraphs(&model.graph).map_err(|e| e.to_string())?;
    let input = trigger_input(sc, &model);

    // Recompute the panel's stage inputs by running the upstream stages
    // clean (upstream partitions are not susceptible by construction).
    let mut env: HashMap<ValueId, Tensor> = HashMap::new();
    env.insert(model.graph.inputs()[0], input);
    let upstream = Engine::new(nonpanel_engine(sc));
    for (p, sub) in subgraphs.iter().enumerate().take(sc.mvx_partition) {
        let plan = &set.stages[p];
        let inputs: Vec<Tensor> = plan.inputs.iter().map(|v| env[v].clone()).collect();
        let outputs = upstream
            .prepare(sub)
            .map_err(|e| e.to_string())?
            .run(&inputs)
            .map_err(|e| e.to_string())?;
        for (v, t) in plan.outputs.iter().zip(outputs) {
            env.insert(*v, t);
        }
    }
    let plan = &set.stages[sc.mvx_partition];
    let stage_inputs: Vec<Tensor> = plan.inputs.iter().map(|v| env[v].clone()).collect();

    // Variant 0's spec exactly as the deployment built it.
    let cfg = scenario_config(sc);
    let overrides = scenario_overrides(sc);
    let spec0 = build_specs(
        sc.mvx_partition,
        &cfg.claims[sc.mvx_partition],
        0xd1ce, // replicated claims ignore the variant seed
        &overrides,
    )
    .into_iter()
    .next()
    .ok_or("empty panel")?;

    let sub = &subgraphs[sc.mvx_partition];
    let clean_engine = Engine::new(spec0.engine.clone());
    let clean = clean_engine
        .prepare(sub)
        .map_err(|e| e.to_string())?
        .run(&stage_inputs)
        .map_err(|e| e.to_string())?;

    let faulted = match &sc.fault {
        FaultDescriptor::Cve(attack) => {
            let prepared = clean_engine.prepare(sub).map_err(|e| e.to_string())?;
            let instrumented = attack.instrument(prepared, &spec0);
            match instrumented.run(&stage_inputs) {
                Ok(outputs) => outputs,
                // A standalone crash means the fault is decidedly not
                // masked.
                Err(_) => return Ok(false),
            }
        }
        FaultDescriptor::BlasFault(ff) => {
            Engine::with_custom_blas(spec0.engine.clone(), ff.resolve(spec0.engine.blas))
                .prepare(sub)
                .map_err(|e| e.to_string())?
                .run(&stage_inputs)
                .map_err(|e| e.to_string())?
        }
        FaultDescriptor::WeightBitFlip(fault) => {
            let mut g = sub.clone();
            let _ = flip_weight_bits(&mut g, fault.strategy, fault.count, fault.seed);
            clean_engine
                .prepare(&g)
                .map_err(|e| e.to_string())?
                .run(&stage_inputs)
                .map_err(|e| e.to_string())?
        }
        // Liveness and wire faults are value-preserving by construction:
        // a stalled host or a misbehaving transport computes the same
        // tensors (or none — the AEAD layer refuses corrupted frames).
        // They are classified by their dedicated runners, never by the
        // standalone masked-check.
        FaultDescriptor::Stall(_) | FaultDescriptor::Channel(_) | FaultDescriptor::Net(_) => {
            clean.clone()
        }
    };

    let metric = cfg.claims[sc.mvx_partition].metric;
    Ok(clean.len() == faulted.len()
        && clean.iter().zip(faulted.iter()).all(|(c, f)| metric.check(c, f)))
}

/// Bit-exact tensor-list equality (NaN-safe, unlike `f32` comparison).
fn bits_equal(a: &[Tensor], b: &[Tensor]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.dims() == y.dims()
                && x.data()
                    .iter()
                    .zip(y.data().iter())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::generate_scenario;
    use mvtee_faults::{BitFlipFault, BitFlipStrategy, NetFault};
    use mvtee_graph::zoo::ModelKind;

    fn bitflip_scenario() -> Scenario {
        Scenario {
            seed: 99,
            model: ModelKind::MnasNet,
            partitions: 2,
            partition_seed: 4,
            mvx_partition: 1,
            panel_size: 2,
            defender: Defender::Replica,
            immune: false,
            // Flip seed 0 provably manifests at the stage output for this
            // model/partition/input (seed 5, say, lands on a weight whose
            // effect ReLU clamps away — a genuinely masked flip).
            fault: FaultDescriptor::WeightBitFlip(BitFlipFault {
                strategy: BitFlipStrategy::ExponentMsb,
                count: 1,
                seed: 0,
            }),
            force_fast: false,
        }
    }

    #[test]
    fn bitflip_on_replicated_panel_is_detected() {
        let out = run_scenario(&bitflip_scenario(), ScaleProfile::Test).unwrap();
        assert_eq!(out, Outcome::Detected { partition: 1 }, "got {out}");
    }

    #[test]
    fn relu_clamped_bitflip_is_provably_masked() {
        // Flip seed 5 lands on a batch-norm mean whose channel activation
        // is negative on this input: both the clean (-0.06) and faulted
        // (-2e36) values are clamped to zero by the following ReLU, so the
        // fault provably never reaches the checkpoint. The classifier must
        // call this Masked (backed by the bit-exact standalone re-run and
        // a recorded checkpoint pass), not Detected and not MISSED.
        let mut sc = bitflip_scenario();
        sc.fault = FaultDescriptor::WeightBitFlip(BitFlipFault {
            strategy: BitFlipStrategy::ExponentMsb,
            count: 1,
            seed: 5,
        });
        let out = run_scenario(&sc, ScaleProfile::Test).unwrap();
        assert_eq!(out, Outcome::Masked, "got {out}");
    }

    #[test]
    fn force_fast_turns_the_same_fault_into_missed() {
        let mut sc = bitflip_scenario();
        sc.force_fast = true;
        let out = run_scenario(&sc, ScaleProfile::Test).unwrap();
        assert!(out.is_missed(), "force-fast must miss, got {out}");
    }

    #[test]
    fn strategy_diversified_panel_catches_the_exponent_bitflip() {
        // Slot 11 of the family cycle: a strategy-pinned defender panel
        // vs a sealed exponent-MSB weight flip. The panel compares under
        // the relaxed metric (heterogeneous kernels), which the blown
        // exponent must still sail past — never MISSED.
        let sc = generate_scenario(7, 11);
        assert!(
            matches!(sc.defender, Defender::Strategy(_)),
            "slot 11 should be the strategy slot: {sc}"
        );
        let out = run_scenario(&sc, ScaleProfile::Test).unwrap();
        assert!(!out.is_missed(), "strategy panel missed the bit flip: {out}");
    }

    #[test]
    fn immune_cve_panel_is_masked() {
        let mut sc = generate_scenario(7, 0); // slot 0 = OOB
        sc.immune = true;
        sc.defender = Defender::RtTvm;
        sc.fault = FaultDescriptor::Cve(Attack::new(mvtee_faults::CveClass::Oob));
        let out = run_scenario(&sc, ScaleProfile::Test).unwrap();
        assert_eq!(out, Outcome::Masked, "got {out}");
    }

    #[test]
    fn crash_class_cve_is_recorded_as_crash() {
        let mut sc = generate_scenario(7, 1); // slot 1 = UNP (crash effect)
        sc.immune = false;
        let out = run_scenario(&sc, ScaleProfile::Test).unwrap();
        assert!(
            matches!(out, Outcome::Crashed { .. }),
            "UNP must crash the variant, got {out}"
        );
    }

    #[test]
    fn corrupted_wire_is_detected_by_aead_and_heals() {
        // Byte corruption on variant 0's response wire: the monitor's
        // AEAD layer must refuse the frame (never accept the bytes), the
        // member must be quarantined, and a clean replacement must rejoin
        // at full strength while the stream stays bit-correct throughout.
        let sc = Scenario {
            seed: 21,
            model: ModelKind::MnasNet,
            partitions: 2,
            partition_seed: 4,
            mvx_partition: 1,
            panel_size: 3,
            defender: Defender::Replica,
            immune: false,
            fault: FaultDescriptor::Net(NetFault {
                class: NetFaultClass::Corrupt { seed: 7 },
                from_frame: 1,
            }),
            force_fast: false,
        };
        let out = run_scenario(&sc, ScaleProfile::Test).unwrap();
        assert!(
            matches!(out, Outcome::Recovered { partition: 1, variant: 0 }),
            "corrupt wire must quarantine and heal, got {out}"
        );
    }

    #[test]
    fn outcomes_are_deterministic() {
        let sc = generate_scenario(13, 7); // frameflip slot
        let a = run_scenario(&sc, ScaleProfile::Test).unwrap();
        let b = run_scenario(&sc, ScaleProfile::Test).unwrap();
        assert_eq!(a, b);
    }
}
