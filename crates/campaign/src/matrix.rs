//! The detection-coverage matrix: fault class × defending-variant family
//! → outcome counts, the campaign's reproduction of Table 1's shape.
//!
//! Rendering is deterministic (sorted keys, hand-rolled JSON), so the
//! same campaign seed always produces byte-identical output.

use crate::runner::Outcome;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Outcome counts of one matrix cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Divergence detected at the expected checkpoint.
    pub detected: usize,
    /// Faulted variant crashed; monitor recorded it.
    pub crashed: usize,
    /// Provably masked (bit-identical standalone re-execution).
    pub masked: usize,
    /// Quarantined and re-provisioned; panel returned to full strength.
    pub recovered: usize,
    /// Served correct results at reduced panel strength.
    pub degraded: usize,
    /// Detection invariant violated.
    pub missed: usize,
}

impl Counts {
    fn add(&mut self, outcome: &Outcome) {
        match outcome {
            Outcome::Detected { .. } => self.detected += 1,
            Outcome::Crashed { .. } => self.crashed += 1,
            Outcome::Masked => self.masked += 1,
            Outcome::Recovered { .. } => self.recovered += 1,
            Outcome::DegradedButCorrect => self.degraded += 1,
            Outcome::Missed { .. } => self.missed += 1,
        }
    }

    /// Total scenarios in the cell.
    pub fn total(&self) -> usize {
        self.detected + self.crashed + self.masked + self.recovered + self.degraded + self.missed
    }
}

/// Fault class × defender family → [`Counts`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMatrix {
    cells: BTreeMap<(String, String), Counts>,
}

impl CoverageMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accounts one scenario outcome.
    pub fn add(&mut self, class: &str, family: &str, outcome: &Outcome) {
        self.cells
            .entry((class.to_string(), family.to_string()))
            .or_default()
            .add(outcome);
    }

    /// All cells in deterministic (sorted) order.
    pub fn cells(&self) -> impl Iterator<Item = (&(String, String), &Counts)> {
        self.cells.iter()
    }

    /// Aggregated counts for one fault class across all defenders.
    pub fn class_totals(&self, class: &str) -> Counts {
        let mut total = Counts::default();
        for ((c, _), counts) in &self.cells {
            if c == class {
                total.detected += counts.detected;
                total.crashed += counts.crashed;
                total.masked += counts.masked;
                total.recovered += counts.recovered;
                total.degraded += counts.degraded;
                total.missed += counts.missed;
            }
        }
        total
    }

    /// The fault classes present, sorted.
    pub fn classes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cells.keys().map(|(c, _)| c.clone()).collect();
        v.dedup();
        v
    }

    /// Total MISSED count across the matrix.
    pub fn total_missed(&self) -> usize {
        self.cells.values().map(|c| c.missed).sum()
    }

    /// Machine-readable JSON rows, sorted by (class, defender) —
    /// byte-identical across runs with the same inputs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, ((class, family), c)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"class\":\"{class}\",\"defender\":\"{family}\",\"detected\":{},\"crashed\":{},\"masked\":{},\"recovered\":{},\"degraded\":{},\"missed\":{}}}",
                c.detected, c.crashed, c.masked, c.recovered, c.degraded, c.missed
            );
        }
        out.push(']');
        out
    }

    /// Human-readable fixed-width table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<26} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8}",
            "class", "defender", "detected", "crashed", "masked", "recovered", "degraded", "MISSED"
        );
        for ((class, family), c) in &self.cells {
            let _ = writeln!(
                out,
                "{:<10} {:<26} {:>8} {:>8} {:>8} {:>9} {:>8} {:>8}",
                class, family, c.detected, c.crashed, c.masked, c.recovered, c.degraded, c.missed
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_by_outcome() {
        let mut m = CoverageMatrix::new();
        m.add("OOB", "aslr", &Outcome::Detected { partition: 1 });
        m.add("OOB", "aslr", &Outcome::Crashed { partition: 1, variant: 0 });
        m.add("OOB", "aslr", &Outcome::Masked);
        m.add("UNP", "different-rt-tvm", &Outcome::Missed { reason: "x".into() });
        m.add("stall", "replica", &Outcome::Recovered { partition: 1, variant: 0 });
        m.add("chan", "replica", &Outcome::DegradedButCorrect);
        let oob = m.class_totals("OOB");
        assert_eq!((oob.detected, oob.crashed, oob.masked, oob.missed), (1, 1, 1, 0));
        assert_eq!(m.class_totals("stall").recovered, 1);
        assert_eq!(m.class_totals("chan").degraded, 1);
        assert_eq!(m.class_totals("stall").total(), 1);
        assert_eq!(m.total_missed(), 1);
        assert_eq!(
            m.classes(),
            vec!["OOB".to_string(), "UNP".to_string(), "chan".to_string(), "stall".to_string()]
        );
    }

    #[test]
    fn json_is_sorted_and_stable() {
        let mut a = CoverageMatrix::new();
        a.add("UNP", "x", &Outcome::Masked);
        a.add("OOB", "y", &Outcome::Masked);
        let mut b = CoverageMatrix::new();
        b.add("OOB", "y", &Outcome::Masked);
        b.add("UNP", "x", &Outcome::Masked);
        assert_eq!(a.render_json(), b.render_json());
        assert!(a.render_json().starts_with("[{\"class\":\"OOB\""));
    }

    #[test]
    fn table_renders_one_row_per_cell() {
        let mut m = CoverageMatrix::new();
        m.add("bitflip", "replica", &Outcome::Detected { partition: 0 });
        m.add("frameflip", "different-blas", &Outcome::Detected { partition: 0 });
        assert_eq!(m.render_table().lines().count(), 3); // header + 2 rows
    }
}
