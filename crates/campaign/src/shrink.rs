//! Greedy shrinking of MISSED scenarios to a minimal reproduction.
//!
//! When a scenario violates the detection invariant, the campaign does
//! what a property-testing framework would: it searches for the smallest
//! scenario that still misses, so the printed one-line repro spec is as
//! easy to debug as possible. Candidate reductions, tried in order until
//! a fixpoint: drop panel variants, drop a partition, shrink the model to
//! the smallest zoo member, move the panel (checkpoint) earlier, reduce
//! the flip count to one.

use crate::runner::{run_scenario, Outcome};
use crate::scenario::Scenario;
use mvtee_faults::FaultDescriptor;
use mvtee_graph::zoo::{ModelKind, ScaleProfile};

/// The shrink result: the minimal still-missing scenario plus how many
/// candidate runs the search spent.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal scenario that still produces a MISSED outcome.
    pub minimal: Scenario,
    /// The MISSED outcome of the minimal scenario.
    pub outcome: Outcome,
    /// Number of scenario executions the search performed.
    pub runs: usize,
}

impl ShrinkResult {
    /// The one-line replayable repro spec.
    pub fn repro_spec(&self) -> String {
        self.minimal.to_spec()
    }
}

fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if sc.panel_size > 2 {
        let mut c = sc.clone();
        c.panel_size = 2;
        out.push(c);
    }
    if sc.partitions > 2 {
        let mut c = sc.clone();
        c.partitions = 2;
        c.mvx_partition = c.mvx_partition.min(1);
        out.push(c);
    }
    if sc.model != ModelKind::MnasNet {
        let mut c = sc.clone();
        c.model = ModelKind::MnasNet;
        out.push(c);
    }
    if sc.mvx_partition > 0 {
        let mut c = sc.clone();
        c.mvx_partition = 0;
        out.push(c);
    }
    if let FaultDescriptor::WeightBitFlip(fault) = &sc.fault {
        if fault.count > 1 {
            let mut f = *fault;
            f.count = 1;
            let mut c = sc.clone();
            c.fault = FaultDescriptor::WeightBitFlip(f);
            out.push(c);
        }
    }
    out
}

/// Greedily shrinks a MISSED scenario. Every accepted reduction strictly
/// decreases a bounded quantity, so the search terminates; each candidate
/// is re-run through the real pipeline and kept only if it still misses.
pub fn shrink_missed(sc: &Scenario, profile: ScaleProfile) -> ShrinkResult {
    let mut runs = 0;
    let mut current = sc.clone();
    let mut outcome = match run_scenario(&current, profile) {
        Ok(o) => o,
        Err(e) => Outcome::Missed { reason: format!("runner error: {e}") },
    };
    runs += 1;
    loop {
        let mut progressed = false;
        for cand in candidates(&current) {
            runs += 1;
            let cand_outcome = match run_scenario(&cand, profile) {
                Ok(o) => o,
                Err(_) => continue, // infra failure: not a valid reduction
            };
            if cand_outcome.is_missed() {
                current = cand;
                outcome = cand_outcome;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    ShrinkResult { minimal: current, outcome, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Defender;
    use mvtee_faults::{BitFlipFault, BitFlipStrategy};

    #[test]
    fn shrink_reduces_a_forced_miss_to_the_minimum() {
        // A deliberately oversized scenario with checkpoints disabled:
        // the bit flip manifests, nothing evaluates, outcome is MISSED.
        let big = Scenario {
            seed: 21,
            model: ModelKind::ResNet50,
            partitions: 3,
            partition_seed: 9,
            mvx_partition: 2,
            panel_size: 3,
            defender: Defender::Replica,
            immune: false,
            fault: FaultDescriptor::WeightBitFlip(BitFlipFault {
                strategy: BitFlipStrategy::ExponentMsb,
                count: 3,
                seed: 77,
            }),
            force_fast: true,
        };
        let shrunk = shrink_missed(&big, ScaleProfile::Test);
        assert!(shrunk.outcome.is_missed());
        let m = &shrunk.minimal;
        assert_eq!(m.panel_size, 2, "panel not shrunk");
        assert_eq!(m.partitions, 2, "partitions not shrunk");
        assert_eq!(m.model, ModelKind::MnasNet, "model not shrunk");
        assert_eq!(m.mvx_partition, 0, "checkpoint not moved earlier");
        match &m.fault {
            FaultDescriptor::WeightBitFlip(f) => assert_eq!(f.count, 1, "flip count not shrunk"),
            other => panic!("fault changed shape: {other:?}"),
        }
        // The printed spec replays to the same verdict.
        let replayed = Scenario::from_spec(&shrunk.repro_spec()).unwrap();
        assert_eq!(&replayed, m);
        let again = run_scenario(&replayed, ScaleProfile::Test).unwrap();
        assert!(again.is_missed(), "replay verdict changed: {again}");
    }
}
