//! The campaign driver: generate → run → classify → aggregate → (shrink).

use crate::matrix::CoverageMatrix;
use crate::runner::{run_scenario, Outcome};
use crate::scenario::{generate_scenario, Scenario};
use crate::shrink::{shrink_missed, ShrinkResult};
use mvtee_graph::zoo::ScaleProfile;
use std::fmt::Write as _;

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Master seed: determines every scenario.
    pub seed: u64,
    /// Number of scenarios.
    pub count: u64,
    /// Zoo scale (campaigns run real deployments; `Test` keeps dozens of
    /// scenarios within a CI budget).
    pub profile: ScaleProfile,
    /// Shrink MISSED scenarios to minimal repro specs.
    pub shrink: bool,
}

impl CampaignConfig {
    /// Test-scale campaign with shrinking enabled.
    pub fn new(seed: u64, count: u64) -> Self {
        CampaignConfig { seed, count, profile: ScaleProfile::Test, shrink: true }
    }
}

/// One scenario's record in the report.
#[derive(Debug, Clone)]
pub struct ScenarioRecord {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Its classified outcome.
    pub outcome: Outcome,
    /// Present when the outcome was MISSED and shrinking was enabled.
    pub shrunk: Option<ShrinkResult>,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign configuration that produced the report.
    pub seed: u64,
    /// Scenario count.
    pub count: u64,
    /// The coverage matrix.
    pub matrix: CoverageMatrix,
    /// Per-scenario records, in generation order.
    pub records: Vec<ScenarioRecord>,
}

impl CampaignReport {
    /// The MISSED records.
    pub fn missed(&self) -> Vec<&ScenarioRecord> {
        self.records.iter().filter(|r| r.outcome.is_missed()).collect()
    }

    /// Machine-readable JSON: campaign header, sorted matrix rows, and
    /// per-scenario outcomes. Deterministic — byte-identical for the same
    /// seed and count.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"campaign\":{{\"seed\":{},\"count\":{},\"missed\":{}}},\"matrix\":{},\"scenarios\":[",
            self.seed,
            self.count,
            self.matrix.total_missed(),
            self.matrix.render_json()
        );
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"spec\":\"{}\",\"outcome\":\"{}\"",
                r.scenario.to_spec(),
                r.outcome
            );
            if let Some(s) = &r.shrunk {
                let _ = write!(out, ",\"repro\":\"{}\"", s.repro_spec());
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable summary: the matrix table plus any MISSED repros.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# campaign seed={} count={} → {} MISSED",
            self.seed,
            self.count,
            self.matrix.total_missed()
        );
        out.push_str(&self.matrix.render_table());
        for r in self.missed() {
            let _ = writeln!(out, "MISSED: {}", r.outcome);
            let _ = writeln!(out, "  scenario: {}", r.scenario.to_spec());
            if let Some(s) = &r.shrunk {
                let _ = writeln!(out, "  minimal repro: {}", s.repro_spec());
            }
        }
        out
    }
}

/// Runs a full campaign: `count` seeded scenarios through the real
/// pipeline, outcomes aggregated into the coverage matrix and mirrored
/// onto the `campaign.*` telemetry counters. MISSED scenarios are greedily
/// shrunk to minimal repro specs when `cfg.shrink` is set.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let scenarios_ctr = mvtee_telemetry::counter("campaign.scenarios");
    let latency = mvtee_telemetry::histogram("campaign.scenario_nanos");
    // Register every outcome counter and the recovery metrics up front so
    // the telemetry report shows explicit zeros — "no recoveries happened"
    // and "recovery was never exercised" must read differently.
    for name in [
        "campaign.detected",
        "campaign.crashed",
        "campaign.masked",
        "campaign.recovered",
        "campaign.degraded",
        "campaign.missed",
        "core.recovery.quarantined",
        "core.recovery.started",
        "core.recovery.recovered",
        "core.recovery.failed",
    ] {
        mvtee_telemetry::counter(name);
    }
    mvtee_telemetry::histogram("core.recovery.time_to_recovery_ns");
    let mut matrix = CoverageMatrix::new();
    let mut records = Vec::with_capacity(cfg.count as usize);
    for i in 0..cfg.count {
        let scenario = generate_scenario(cfg.seed, i);
        let started = std::time::Instant::now();
        let outcome = match run_scenario(&scenario, cfg.profile) {
            Ok(o) => o,
            Err(e) => Outcome::Missed { reason: format!("runner error: {e}") },
        };
        latency.record_duration(started.elapsed());
        scenarios_ctr.inc();
        mvtee_telemetry::counter(match outcome {
            Outcome::Detected { .. } => "campaign.detected",
            Outcome::Crashed { .. } => "campaign.crashed",
            Outcome::Masked => "campaign.masked",
            Outcome::Recovered { .. } => "campaign.recovered",
            Outcome::DegradedButCorrect => "campaign.degraded",
            Outcome::Missed { .. } => "campaign.missed",
        })
        .inc();
        matrix.add(&scenario.fault.class_name(), &scenario.defender.family(), &outcome);
        let shrunk = if cfg.shrink && outcome.is_missed() {
            Some(shrink_missed(&scenario, cfg.profile))
        } else {
            None
        };
        records.push(ScenarioRecord { scenario, outcome, shrunk });
    }
    CampaignReport { seed: cfg.seed, count: cfg.count, matrix, records }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_has_zero_missed_and_is_deterministic() {
        // 10 scenarios span the full family cycle, including both
        // liveness slots (stall-hang and lossy-channel).
        let cfg = CampaignConfig::new(7, 10);
        let a = run_campaign(&cfg);
        assert_eq!(a.missed().len(), 0, "MISSED scenarios:\n{}", a.render_text());
        let b = run_campaign(&cfg);
        assert_eq!(a.render_json(), b.render_json(), "campaign not deterministic");
    }

    #[test]
    fn campaign_feeds_telemetry() {
        let before = mvtee_telemetry::snapshot();
        let report = run_campaign(&CampaignConfig::new(19, 2));
        let after = mvtee_telemetry::snapshot();
        let delta = |name: &str| {
            after.counters.get(name).copied().unwrap_or(0)
                - before.counters.get(name).copied().unwrap_or(0)
        };
        assert_eq!(delta("campaign.scenarios"), 2);
        let outcomes = delta("campaign.detected")
            + delta("campaign.crashed")
            + delta("campaign.masked")
            + delta("campaign.recovered")
            + delta("campaign.degraded")
            + delta("campaign.missed");
        assert_eq!(outcomes, 2);
        assert_eq!(report.records.len(), 2);
    }

    #[test]
    fn recovery_metrics_are_registered_even_when_untouched() {
        run_campaign(&CampaignConfig::new(23, 1));
        let snap = mvtee_telemetry::snapshot();
        for name in [
            "campaign.recovered",
            "campaign.degraded",
            "core.recovery.quarantined",
            "core.recovery.started",
            "core.recovery.recovered",
            "core.recovery.failed",
        ] {
            assert!(snap.counters.contains_key(name), "counter {name} not registered");
        }
        assert!(snap.histograms.contains_key("core.recovery.time_to_recovery_ns"));
    }
}
