//! Campaign scenarios: one fully-specified fault-injection experiment.
//!
//! A [`Scenario`] pins everything the runner needs to reproduce an
//! experiment bit-for-bit: the zoo model and its weight seed, the
//! partition plan, where the MVX panel sits, how large it is, which
//! defending-variant family fills it, and the injected fault. Scenarios
//! round-trip through a one-line textual spec (`Scenario::to_spec` /
//! `Scenario::from_spec`) so any outcome — in particular a MISSED one —
//! can be replayed exactly from its printed line.

use mvtee_faults::cve::InputTrigger;
use mvtee_faults::{
    Attack, BitFlipFault, BitFlipStrategy, ChannelFault, ChannelFaultMode, CveClass,
    FaultDescriptor, FrameFlip, NetFault, NetFaultClass, StallFault, StallMode,
};
use mvtee_graph::zoo::ModelKind;
use mvtee_runtime::{BlasKind, KernelStrategy};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;

/// The defending-variant family populating the panel next to the faulted
/// variant — the matrix columns of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub enum Defender {
    /// Different runtime: TVM-like engine.
    RtTvm,
    /// Different runtime: reference interpreter.
    RtReference,
    /// Same runtime with a hardening capability (e.g. `bounds-check`).
    Hardening(String),
    /// Same runtime with a randomised address layout (OOB defense).
    Aslr,
    /// Same runtime on a different BLAS backend (FrameFlip defense).
    Blas(BlasKind),
    /// Same runtime pinned to a different kernel strategy (the per-shape
    /// autotuning axis; bit-flip defense with strategy diversity).
    Strategy(KernelStrategy),
    /// An identical clean replica (bit-flip defense: the fault is local
    /// to one TEE's sealed weights).
    Replica,
}

impl Defender {
    /// Matrix column label.
    pub fn family(&self) -> String {
        match self {
            Defender::RtTvm => "different-rt-tvm".into(),
            Defender::RtReference => "different-rt-ref".into(),
            Defender::Hardening(h) => format!("hardening:{h}"),
            Defender::Aslr => "aslr".into(),
            Defender::Blas(_) => "different-blas".into(),
            Defender::Strategy(_) => "kernel-strategy".into(),
            Defender::Replica => "replica".into(),
        }
    }

    /// Does this defender run the same engine configuration as the plain
    /// susceptible variant? Homogeneous panels compare under the strict
    /// metric; heterogeneous ones (different RT or BLAS) need the relaxed
    /// heterogeneous tolerance.
    pub fn homogeneous(&self) -> bool {
        matches!(self, Defender::Hardening(_) | Defender::Aslr | Defender::Replica)
    }

    fn spec_token(&self) -> String {
        match self {
            Defender::RtTvm => "rt-tvm".into(),
            Defender::RtReference => "rt-ref".into(),
            Defender::Hardening(h) => format!("hard:{h}"),
            Defender::Aslr => "aslr".into(),
            Defender::Blas(b) => format!("blas:{}", blas_token(*b)),
            Defender::Strategy(ks) => format!("strat:{}", ks.token()),
            Defender::Replica => "replica".into(),
        }
    }

    fn from_token(s: &str) -> Result<Self, String> {
        if let Some(h) = s.strip_prefix("hard:") {
            return Ok(Defender::Hardening(h.to_string()));
        }
        if let Some(b) = s.strip_prefix("blas:") {
            return Ok(Defender::Blas(blas_from_token(b)?));
        }
        if let Some(ks) = s.strip_prefix("strat:") {
            return KernelStrategy::from_token(ks)
                .map(Defender::Strategy)
                .ok_or_else(|| format!("unknown kernel strategy '{ks}'"));
        }
        match s {
            "rt-tvm" => Ok(Defender::RtTvm),
            "rt-ref" => Ok(Defender::RtReference),
            "aslr" => Ok(Defender::Aslr),
            "replica" => Ok(Defender::Replica),
            other => Err(format!("unknown defender '{other}'")),
        }
    }
}

fn blas_token(b: BlasKind) -> &'static str {
    match b {
        BlasKind::Naive => "naive",
        BlasKind::Blocked => "blocked",
        BlasKind::Strided => "strided",
    }
}

fn blas_from_token(s: &str) -> Result<BlasKind, String> {
    match s {
        "naive" => Ok(BlasKind::Naive),
        "blocked" => Ok(BlasKind::Blocked),
        "strided" => Ok(BlasKind::Strided),
        other => Err(format!("unknown blas '{other}'")),
    }
}

fn model_token(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::EfficientNetB7 => "efficientnet-b7",
        ModelKind::GoogleNet => "googlenet",
        ModelKind::InceptionV3 => "inception-v3",
        ModelKind::MnasNet => "mnasnet",
        ModelKind::MobileNetV3 => "mobilenet-v3",
        ModelKind::ResNet152 => "resnet-152",
        ModelKind::ResNet50 => "resnet-50",
        ModelKind::FoundationMixer => "mixer",
    }
}

fn model_from_token(s: &str) -> Result<ModelKind, String> {
    match s {
        "efficientnet-b7" => Ok(ModelKind::EfficientNetB7),
        "googlenet" => Ok(ModelKind::GoogleNet),
        "inception-v3" => Ok(ModelKind::InceptionV3),
        "mnasnet" => Ok(ModelKind::MnasNet),
        "mobilenet-v3" => Ok(ModelKind::MobileNetV3),
        "resnet-152" => Ok(ModelKind::ResNet152),
        "resnet-50" => Ok(ModelKind::ResNet50),
        "mixer" => Ok(ModelKind::FoundationMixer),
        other => Err(format!("unknown model '{other}'")),
    }
}

/// One fully-specified fault-injection experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario seed: drives the trigger input and model weights.
    pub seed: u64,
    /// Zoo model under test.
    pub model: ModelKind,
    /// Partition count of the deployment.
    pub partitions: usize,
    /// Partition-set selection seed.
    pub partition_seed: u64,
    /// The partition carrying the MVX panel — also the injection point:
    /// every fault in the campaign lands on (or is only effective
    /// against) variant 0 of this panel.
    pub mvx_partition: usize,
    /// Panel size (faulted variant + defenders).
    pub panel_size: usize,
    /// Defender family on panel variants `1..panel_size`.
    pub defender: Defender,
    /// When `true`, variant 0 gets the defender configuration as well, so
    /// no panel member is susceptible and the fault must be masked.
    pub immune: bool,
    /// The injected fault.
    pub fault: FaultDescriptor,
    /// Forces the fast path everywhere — no checkpoint ever evaluates.
    /// Used by tests to force a MISSED outcome.
    pub force_fast: bool,
}

impl Scenario {
    /// The one-line replayable spec.
    pub fn to_spec(&self) -> String {
        format!(
            "campaign/v1 seed={} model={} parts={} pseed={} mvx={} panel={} defender={} immune={} fault={} path={}",
            self.seed,
            model_token(self.model),
            self.partitions,
            self.partition_seed,
            self.mvx_partition,
            self.panel_size,
            self.defender.spec_token(),
            if self.immune { 1 } else { 0 },
            self.fault,
            if self.force_fast { "force-fast" } else { "hybrid" },
        )
    }

    /// Parses a spec line produced by [`Scenario::to_spec`].
    pub fn from_spec(line: &str) -> Result<Self, String> {
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some("campaign/v1") => {}
            other => return Err(format!("bad spec header {other:?} (expected campaign/v1)")),
        }
        let mut seed = None;
        let mut model = None;
        let mut parts = None;
        let mut pseed = None;
        let mut mvx = None;
        let mut panel = None;
        let mut defender = None;
        let mut immune = None;
        let mut fault = None;
        let mut path = None;
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad field '{field}' (expected key=value)"))?;
            match key {
                "seed" => seed = Some(value.parse().map_err(|_| "bad seed".to_string())?),
                "model" => model = Some(model_from_token(value)?),
                "parts" => parts = Some(value.parse().map_err(|_| "bad parts".to_string())?),
                "pseed" => pseed = Some(value.parse().map_err(|_| "bad pseed".to_string())?),
                "mvx" => mvx = Some(value.parse().map_err(|_| "bad mvx".to_string())?),
                "panel" => panel = Some(value.parse().map_err(|_| "bad panel".to_string())?),
                "defender" => defender = Some(Defender::from_token(value)?),
                "immune" => immune = Some(value == "1"),
                "fault" => fault = Some(value.parse::<FaultDescriptor>()?),
                "path" => {
                    path = Some(match value {
                        "hybrid" => false,
                        "force-fast" => true,
                        other => return Err(format!("unknown path '{other}'")),
                    })
                }
                other => return Err(format!("unknown field '{other}'")),
            }
        }
        let missing = |name: &str| format!("missing field '{name}'");
        Ok(Scenario {
            seed: seed.ok_or_else(|| missing("seed"))?,
            model: model.ok_or_else(|| missing("model"))?,
            partitions: parts.ok_or_else(|| missing("parts"))?,
            partition_seed: pseed.ok_or_else(|| missing("pseed"))?,
            mvx_partition: mvx.ok_or_else(|| missing("mvx"))?,
            panel_size: panel.ok_or_else(|| missing("panel"))?,
            defender: defender.ok_or_else(|| missing("defender"))?,
            immune: immune.ok_or_else(|| missing("immune"))?,
            fault: fault.ok_or_else(|| missing("fault"))?,
            force_fast: path.ok_or_else(|| missing("path"))?,
        })
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_spec())
    }
}

/// The small-model subset the generator draws from (Test-scale runtime
/// budget: the campaign runs dozens of real threaded deployments).
pub const CAMPAIGN_MODELS: [ModelKind; 4] =
    [ModelKind::MnasNet, ModelKind::MobileNetV3, ModelKind::ResNet50, ModelKind::GoogleNet];

/// The family schedule cycled by scenario index, guaranteeing that every
/// CVE class and every fault family — the six CVE classes, weight bit
/// flips, FrameFlip, both liveness families (stall and lossy channel),
/// the wire-level net family, and the kernel-strategy-diversified bit
/// flip — appears in any campaign of ≥ 12 scenarios. Slots 0–7 are
/// unchanged from the original value-fault cycle so historical pinned
/// scenarios stay valid; the liveness, transport and strategy slots are
/// appended.
const FAMILY_CYCLE: usize = 12;

/// Generates the `index`-th scenario of the campaign with master seed
/// `campaign_seed`. Deterministic: the same `(campaign_seed, index)`
/// always yields the same scenario.
///
/// Pairing rules keep the campaign's zero-MISSED invariant meaningful:
///
/// * CVE faults put a plain ORT-like (susceptible) variant 0 next to a
///   defender drawn from that class's Table 1 families; non-panel
///   partitions run TVM-like engines (not susceptible), so the injection
///   point is exactly the panel.
/// * FrameFlip targets variant 0's BLAS; the defender and all non-panel
///   partitions use a different backend.
/// * Bit flips are sealed into variant 0's weights with the exponent-MSB
///   strategy (the Terminal-Brain-Damage attack bits — a random mantissa
///   flip can perturb outputs below any detection threshold, which is an
///   accuracy-degradation question, not a detection-coverage one; the
///   descriptor space still enumerates `RandomBit` for targeted tests).
/// * Roughly one scenario in five is `immune`: the panel contains no
///   susceptible variant and the fault must be provably masked.
pub fn generate_scenario(campaign_seed: u64, index: u64) -> Scenario {
    let seed = campaign_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let model = CAMPAIGN_MODELS[rng.gen_range(0..CAMPAIGN_MODELS.len())];
    let partitions = rng.gen_range(2..=3);
    let mvx_partition = rng.gen_range(0..partitions);
    let panel_size = rng.gen_range(2..=3);
    let partition_seed = rng.next_u64();
    let immune = rng.gen_range(0..5) == 0;

    let (fault, defender) = match (index as usize) % FAMILY_CYCLE {
        // Six CVE classes, then bitflip, frameflip, stall, channel.
        slot @ 0..=5 => {
            let class = CveClass::ALL[slot];
            // Crafted-marker triggers are only observable where the raw
            // input is visible (partition 0).
            let attack = if mvx_partition == 0 && rng.gen_bool(0.25) {
                Attack::with_marker(class, 1337.0)
            } else {
                Attack::new(class)
            };
            let mut defenders: Vec<Defender> = vec![Defender::RtTvm, Defender::RtReference];
            for h in class.defenses() {
                defenders.push(Defender::Hardening((*h).to_string()));
            }
            if class == CveClass::Oob {
                defenders.push(Defender::Aslr);
            }
            let defender = defenders[rng.gen_range(0..defenders.len())].clone();
            (FaultDescriptor::Cve(attack), defender)
        }
        6 => {
            let fault = BitFlipFault {
                strategy: BitFlipStrategy::ExponentMsb,
                count: rng.gen_range(1..=3),
                seed: rng.next_u64(),
            };
            (FaultDescriptor::WeightBitFlip(fault), Defender::Replica)
        }
        7 => {
            let target = BlasKind::ALL[rng.gen_range(0..BlasKind::ALL.len())];
            let others: Vec<BlasKind> =
                BlasKind::ALL.iter().copied().filter(|b| *b != target).collect();
            let defender_blas = others[rng.gen_range(0..others.len())];
            let ff = FrameFlip::against(target);
            (FaultDescriptor::BlasFault(ff), Defender::Blas(defender_blas))
        }
        8 => {
            // A full hang after a verified checkpoint exists: the
            // straggler watchdog must quarantine it and the recovery
            // manager re-provision it, so the expected outcome is
            // Recovered. (Sub-deadline delays classify as Masked and are
            // exercised by hand-written specs, not the cycle.)
            let fault = StallFault { from_batch: rng.gen_range(1..=2), mode: StallMode::Hang };
            (FaultDescriptor::Stall(fault), Defender::Replica)
        }
        9 => {
            // A lossy response channel without recovery: the panel drops
            // to survivors and the expected outcome is DegradedButCorrect.
            let mode = if rng.gen_bool(0.5) {
                ChannelFaultMode::Drop
            } else {
                ChannelFaultMode::Truncate
            };
            let fault = ChannelFault { on_batch: rng.gen_range(1..=2), mode };
            (FaultDescriptor::Channel(fault), Defender::Replica)
        }
        10 => {
            // A seeded wire-level fault on variant 0's response transport.
            // Corruption classes (corrupt/trunc/torn) must surface as
            // AEAD or framing detections; liveness classes must heal via
            // quarantine + recovery. `from_frame >= 1` keeps the first
            // response frame clean so a verified resync point exists.
            let from_frame = rng.gen_range(1..=2);
            let class = match rng.gen_range(0..8u32) {
                0 => NetFaultClass::Delay { ms: rng.gen_range(10..=40) },
                1 => NetFaultClass::Stall,
                2 => NetFaultClass::Drop,
                3 => NetFaultClass::Duplicate,
                4 => NetFaultClass::Truncate,
                5 => NetFaultClass::Corrupt { seed: rng.next_u64() },
                6 => NetFaultClass::Torn,
                _ => NetFaultClass::Disconnect,
            };
            (FaultDescriptor::Net(NetFault { class, from_frame }), Defender::Replica)
        }
        _ => {
            // Strategy-diversified panel vs a sealed-weight bit flip: the
            // defenders pin a concrete kernel strategy while variant 0
            // keeps the per-shape autotuned default, so the panel mixes
            // kernels and compares under the relaxed metric. Exponent-MSB
            // flips blow values far past any heterogeneous tolerance, so
            // detection must still be clean. Never `Auto`: the defender
            // must be *pinned* off the susceptible variant's table.
            let fault = BitFlipFault {
                strategy: BitFlipStrategy::ExponentMsb,
                count: rng.gen_range(1..=3),
                seed: rng.next_u64(),
            };
            let pinned = [
                KernelStrategy::Scalar,
                KernelStrategy::SimdMicrokernel,
                KernelStrategy::PanelPacked,
            ];
            let ks = pinned[rng.gen_range(0..pinned.len())];
            (FaultDescriptor::WeightBitFlip(fault), Defender::Strategy(ks))
        }
    };

    // Continuing service after a knocked-out member needs a strict
    // majority of the *full* panel among the survivors, so liveness
    // scenarios always run a panel of three (2-of-3 keeps voting).
    let panel_size = if matches!(
        fault,
        FaultDescriptor::Stall(_) | FaultDescriptor::Channel(_) | FaultDescriptor::Net(_)
    ) {
        3
    } else {
        panel_size
    };

    // Bit flips hit one replica's sealed weights: an "immune" panel would
    // simply be an unfaulted deployment, so the flag is meaningless there.
    // Liveness and wire faults live in one host's scheduling/transport
    // stack, so the same reasoning applies.
    let immune = immune
        && !matches!(
            fault,
            FaultDescriptor::WeightBitFlip(_)
                | FaultDescriptor::Stall(_)
                | FaultDescriptor::Channel(_)
                | FaultDescriptor::Net(_)
        );

    // Marker-triggered attacks only fire at partition 0.
    let mvx_partition = match &fault {
        FaultDescriptor::Cve(Attack { trigger: InputTrigger::MagicMarker(_), .. }) => 0,
        _ => mvx_partition,
    };

    Scenario {
        seed,
        model,
        partitions,
        partition_seed,
        mvx_partition,
        panel_size,
        defender,
        immune,
        fault,
        force_fast: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..32 {
            assert_eq!(generate_scenario(7, i), generate_scenario(7, i));
        }
        assert_ne!(generate_scenario(7, 0), generate_scenario(8, 0));
    }

    #[test]
    fn specs_round_trip() {
        for i in 0..64 {
            let sc = generate_scenario(42, i);
            let line = sc.to_spec();
            let back = Scenario::from_spec(&line).unwrap();
            assert_eq!(back, sc, "round trip failed for: {line}");
        }
    }

    #[test]
    fn cycle_covers_all_families_and_classes() {
        let mut classes = std::collections::HashSet::new();
        let mut families = std::collections::HashSet::new();
        let mut strategy_defender = false;
        for i in 0..12 {
            let sc = generate_scenario(7, i);
            classes.insert(sc.fault.class_name());
            families.insert(sc.fault.family());
            if let Defender::Strategy(ks) = &sc.defender {
                strategy_defender = true;
                assert_ne!(*ks, KernelStrategy::Auto, "strategy defender must be pinned: {sc}");
                assert!(
                    matches!(sc.fault, FaultDescriptor::WeightBitFlip(_)),
                    "strategy slot pairs with a bit flip: {sc}"
                );
            }
        }
        for class in CveClass::ALL {
            assert!(classes.contains(&class.to_string()), "missing {class}");
        }
        assert!(classes.contains("bitflip"));
        assert!(classes.contains("frameflip"));
        assert!(classes.contains("stall"));
        assert!(classes.contains("chan"));
        assert!(families.contains("net"), "net family missing from the cycle");
        assert!(strategy_defender, "kernel-strategy defender missing from the cycle");
    }

    #[test]
    fn liveness_slots_are_never_immune_and_fire_after_a_checkpoint() {
        for i in 0..256 {
            let sc = generate_scenario(5, i);
            match &sc.fault {
                FaultDescriptor::Stall(f) => {
                    assert!(!sc.immune, "immune stall is meaningless: {sc}");
                    assert_eq!(f.mode, StallMode::Hang);
                    // Batch 0 must complete so a verified resync point
                    // exists before the watchdog fires.
                    assert!(f.from_batch >= 1, "{sc}");
                    assert_eq!(sc.panel_size, 3, "{sc}");
                }
                FaultDescriptor::Channel(f) => {
                    assert!(!sc.immune, "immune channel fault is meaningless: {sc}");
                    assert!(f.on_batch >= 1, "{sc}");
                    assert_eq!(sc.panel_size, 3, "{sc}");
                }
                FaultDescriptor::Net(f) => {
                    assert!(!sc.immune, "immune net fault is meaningless: {sc}");
                    // The first response frame must land clean so a
                    // verified resync point exists before the wire acts up.
                    assert!(f.from_frame >= 1, "{sc}");
                    assert_eq!(sc.panel_size, 3, "{sc}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn marker_triggers_only_on_partition_zero() {
        for i in 0..256 {
            let sc = generate_scenario(3, i);
            if let FaultDescriptor::Cve(a) = &sc.fault {
                if matches!(a.trigger, InputTrigger::MagicMarker(_)) {
                    assert_eq!(sc.mvx_partition, 0, "marker off partition 0: {sc}");
                }
            }
        }
    }

    #[test]
    fn frameflip_defender_differs_from_target() {
        for i in 0..256 {
            let sc = generate_scenario(11, i);
            if let FaultDescriptor::BlasFault(ff) = &sc.fault {
                match &sc.defender {
                    Defender::Blas(b) => assert_ne!(*b, ff.target, "{sc}"),
                    other => panic!("frameflip paired with {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bad_specs_rejected() {
        for line in [
            "",
            "campaign/v2 seed=1",
            "campaign/v1 seed=1 model=mnasnet",
            "campaign/v1 seed=x model=mnasnet parts=2 pseed=0 mvx=0 panel=2 defender=replica immune=0 fault=cve:oob:always path=hybrid",
        ] {
            assert!(Scenario::from_spec(line).is_err(), "accepted '{line}'");
        }
    }
}
