//! `mvtee-campaign`: a seeded, deterministic fault-injection campaign
//! engine for MVTEE's security evaluation.
//!
//! MVTEE's security claim is that *any* fault or exploit hitting one
//! variant is caught at the next checkpoint. This crate tests that claim
//! systematically instead of anecdotally: it enumerates scenarios (zoo
//! model × partition plan × MVX panel with a defending-variant family ×
//! one fault from `mvtee-faults`), runs each through the real threaded
//! `mvtee-core` pipeline, and asserts the **detection invariant** per
//! scenario — the fault is either
//!
//! 1. **detected** at the first slow-path checkpoint at-or-after the
//!    injected partition,
//! 2. **crashed**: the faulted variant died and the monitor recorded it, or
//! 3. **masked**: provably without effect — the faulted variant's
//!    standalone re-execution is bit-identical to its clean run.
//!
//! Anything else is **MISSED** — a security finding. Outcomes aggregate
//! into a deterministic [`CoverageMatrix`] (fault class ×
//! defending-variant family, the paper's Table 1 shape), feed the
//! `campaign.*` telemetry counters, and any MISSED scenario is greedily
//! [shrunk](shrink_missed) to a minimal one-line repro spec that
//! [`Scenario::from_spec`] replays exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod matrix;
pub mod runner;
pub mod scenario;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, ScenarioRecord};
pub use matrix::{Counts, CoverageMatrix};
pub use runner::{run_scenario, trigger_input, Outcome};
pub use scenario::{generate_scenario, Defender, Scenario, CAMPAIGN_MODELS};
pub use shrink::{shrink_missed, ShrinkResult};
