//! The repro-spec contract: every scenario the generator can produce must
//! round-trip through its one-line spec, and replaying a spec must
//! reproduce the original run's verdict exactly.

use mvtee_campaign::{generate_scenario, run_scenario, Scenario};
use mvtee_graph::zoo::ScaleProfile;

#[test]
fn every_generated_scenario_round_trips_through_its_spec() {
    for i in 0..128 {
        let sc = generate_scenario(42, i);
        let spec = sc.to_spec();
        assert_eq!(spec.lines().count(), 1, "spec must be one line: {spec:?}");
        let back = Scenario::from_spec(&spec)
            .unwrap_or_else(|e| panic!("spec {spec:?} failed to parse: {e}"));
        assert_eq!(back, sc, "round trip changed scenario for spec {spec:?}");
    }
}

#[test]
fn replaying_a_spec_reproduces_the_verdict() {
    // One scenario per fault family (generator slots: 0 = CVE, 6 = bit
    // flip, 7 = FrameFlip).
    for i in [0u64, 6, 7] {
        let sc = generate_scenario(5, i);
        let original = run_scenario(&sc, ScaleProfile::Test).expect("runs");
        let replayed = Scenario::from_spec(&sc.to_spec()).expect("parses");
        let verdict = run_scenario(&replayed, ScaleProfile::Test).expect("replays");
        assert_eq!(
            verdict, original,
            "replay diverged for spec {}: {verdict} vs {original}",
            sc.to_spec()
        );
    }
}

#[test]
fn malformed_specs_are_rejected() {
    for bad in [
        "",
        "campaign/v2 seed=1",
        "campaign/v1",
        "campaign/v1 seed=notanumber model=mnasnet parts=2 pseed=1 mvx=0 panel=2 defender=replica immune=0 fault=bitflip:exp:1:1 path=hybrid",
        "campaign/v1 seed=1 model=unknown-model parts=2 pseed=1 mvx=0 panel=2 defender=replica immune=0 fault=bitflip:exp:1:1 path=hybrid",
        "campaign/v1 seed=1 model=mnasnet parts=2 pseed=1 mvx=0 panel=2 defender=replica immune=0 fault=bogus:spec path=hybrid",
        "campaign/v1 seed=1 model=mnasnet parts=2 pseed=1 mvx=0 panel=2 defender=replica immune=0 fault=bitflip:exp:1:1 path=warp",
    ] {
        assert!(Scenario::from_spec(bad).is_err(), "spec {bad:?} should be rejected");
    }
}
