//! The computational graph: SSA-form DAG of operator nodes over named
//! values, with initializers (weights), validation, topological ordering
//! and convex subgraph extraction.

use crate::{GraphError, Op, Result};
use mvtee_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Identifier of a node within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of a value (tensor edge) within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ValueId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Metadata of a value: its name and (optionally inferred) shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueInfo {
    /// Human-readable name, unique within the graph.
    pub name: String,
    /// Statically known shape, populated by shape inference.
    pub shape: Option<Shape>,
}

/// One operator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's id (its index in the graph's node list).
    pub id: NodeId,
    /// Human-readable name, unique within the graph.
    pub name: String,
    /// The operator and its attributes.
    pub op: Op,
    /// Input value ids, in operator-defined order.
    pub inputs: Vec<ValueId>,
    /// Output value ids (every op here produces exactly one).
    pub outputs: Vec<ValueId>,
}

/// An SSA-form computational DAG, the IR of the whole system.
///
/// Invariants (checked by [`Graph::validate`]):
///
/// * every value has at most one producer (node output or initializer or
///   graph input),
/// * node inputs reference existing values,
/// * the node dependency relation is acyclic,
/// * graph inputs/outputs reference existing values.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    /// Model name (for display).
    pub name: String,
    nodes: Vec<Node>,
    values: Vec<ValueInfo>,
    /// Weight tensors, keyed by the value they define.
    initializers: BTreeMap<ValueId, Tensor>,
    /// Values fed externally at inference time.
    inputs: Vec<ValueId>,
    /// Values produced as the model result.
    outputs: Vec<ValueId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph { name: name.into(), ..Default::default() }
    }

    /// Adds a value and returns its id.
    pub fn add_value(&mut self, name: impl Into<String>) -> ValueId {
        let id = ValueId(self.values.len());
        self.values.push(ValueInfo { name: name.into(), shape: None });
        id
    }

    /// Adds a node and returns its id.
    ///
    /// # Errors
    ///
    /// Returns an arity or unknown-value error if the node is malformed.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: Op,
        inputs: Vec<ValueId>,
        outputs: Vec<ValueId>,
    ) -> Result<NodeId> {
        let (min, max) = op.arity();
        if inputs.len() < min || inputs.len() > max {
            return Err(GraphError::ArityMismatch {
                op: op.name(),
                expected: min,
                actual: inputs.len(),
            });
        }
        for v in inputs.iter().chain(outputs.iter()) {
            if v.0 >= self.values.len() {
                return Err(GraphError::UnknownValue { value: v.0 });
            }
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { id, name: name.into(), op, inputs, outputs });
        Ok(id)
    }

    /// Registers a weight tensor for `value`.
    pub fn set_initializer(&mut self, value: ValueId, tensor: Tensor) {
        self.initializers.insert(value, tensor);
    }

    /// Declares a graph input.
    pub fn mark_input(&mut self, value: ValueId) {
        self.inputs.push(value);
    }

    /// Declares a graph output.
    pub fn mark_output(&mut self, value: ValueId) {
        self.outputs.push(value);
    }

    /// Replaces the output list (used by subgraph extraction and rewrites).
    pub fn set_outputs(&mut self, outputs: Vec<ValueId>) {
        self.outputs = outputs;
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node lookup.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] when out of range.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.0).ok_or(GraphError::UnknownNode { node: id.0 })
    }

    /// Mutable node lookup.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] when out of range.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node> {
        self.nodes.get_mut(id.0).ok_or(GraphError::UnknownNode { node: id.0 })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Value metadata lookup.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownValue`] when out of range.
    pub fn value(&self, id: ValueId) -> Result<&ValueInfo> {
        self.values.get(id.0).ok_or(GraphError::UnknownValue { value: id.0 })
    }

    /// Mutable value metadata lookup.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownValue`] when out of range.
    pub fn value_mut(&mut self, id: ValueId) -> Result<&mut ValueInfo> {
        self.values.get_mut(id.0).ok_or(GraphError::UnknownValue { value: id.0 })
    }

    /// Number of values.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Initializer lookup.
    pub fn initializer(&self, id: ValueId) -> Option<&Tensor> {
        self.initializers.get(&id)
    }

    /// Mutable initializer lookup (used by weight-level fault injection).
    pub fn initializer_mut(&mut self, id: ValueId) -> Option<&mut Tensor> {
        self.initializers.get_mut(&id)
    }

    /// All initializers.
    pub fn initializers(&self) -> &BTreeMap<ValueId, Tensor> {
        &self.initializers
    }

    /// Graph inputs.
    pub fn inputs(&self) -> &[ValueId] {
        &self.inputs
    }

    /// Graph outputs.
    pub fn outputs(&self) -> &[ValueId] {
        &self.outputs
    }

    /// Maps each value to the node producing it (initializers and graph
    /// inputs have no producer).
    pub fn producers(&self) -> HashMap<ValueId, NodeId> {
        let mut map = HashMap::new();
        for node in &self.nodes {
            for &out in &node.outputs {
                map.insert(out, node.id);
            }
        }
        map
    }

    /// Maps each value to the nodes consuming it.
    pub fn consumers(&self) -> HashMap<ValueId, Vec<NodeId>> {
        let mut map: HashMap<ValueId, Vec<NodeId>> = HashMap::new();
        for node in &self.nodes {
            for &inp in &node.inputs {
                map.entry(inp).or_default().push(node.id);
            }
        }
        map
    }

    /// Directed node-level edges `(producer, consumer)`, deduplicated.
    pub fn node_edges(&self) -> Vec<(NodeId, NodeId)> {
        let producers = self.producers();
        let mut edges = BTreeSet::new();
        for node in &self.nodes {
            for &inp in &node.inputs {
                if let Some(&src) = producers.get(&inp) {
                    edges.insert((src, node.id));
                }
            }
        }
        edges.into_iter().collect()
    }

    /// Validates all graph invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        // Unique producers.
        let mut produced: BTreeSet<ValueId> = BTreeSet::new();
        for node in &self.nodes {
            for &out in &node.outputs {
                if out.0 >= self.values.len() {
                    return Err(GraphError::UnknownValue { value: out.0 });
                }
                if !produced.insert(out) {
                    return Err(GraphError::MultipleProducers { value: out.0 });
                }
            }
        }
        for v in produced.iter() {
            if self.initializers.contains_key(v) {
                return Err(GraphError::MultipleProducers { value: v.0 });
            }
            if self.inputs.contains(v) {
                return Err(GraphError::MultipleProducers { value: v.0 });
            }
        }
        // All node inputs must be defined by someone.
        for node in &self.nodes {
            for &inp in &node.inputs {
                if inp.0 >= self.values.len() {
                    return Err(GraphError::UnknownValue { value: inp.0 });
                }
                let defined = produced.contains(&inp)
                    || self.initializers.contains_key(&inp)
                    || self.inputs.contains(&inp);
                if !defined {
                    return Err(GraphError::InvalidInterface(format!(
                        "value {} consumed by {} has no definition",
                        inp.0, node.name
                    )));
                }
            }
        }
        // Interface sanity.
        for v in self.inputs.iter().chain(self.outputs.iter()) {
            if v.0 >= self.values.len() {
                return Err(GraphError::UnknownValue { value: v.0 });
            }
        }
        for out in &self.outputs {
            if !produced.contains(out) && !self.inputs.contains(out) {
                return Err(GraphError::InvalidInterface(format!(
                    "graph output {} is never produced",
                    out.0
                )));
            }
        }
        // Acyclicity via topological sort.
        self.topological_order()?;
        Ok(())
    }

    /// Kahn topological order of the nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CyclicGraph`] when a cycle exists.
    pub fn topological_order(&self) -> Result<Vec<NodeId>> {
        let edges = self.node_edges();
        let mut indegree = vec![0usize; self.nodes.len()];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (a, b) in &edges {
            adj[a.0].push(b.0);
            indegree[b.0] += 1;
        }
        let mut queue: VecDeque<usize> =
            (0..self.nodes.len()).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(i) = queue.pop_front() {
            order.push(NodeId(i));
            for &j in &adj[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(GraphError::CyclicGraph);
        }
        Ok(order)
    }

    /// Extracts the convex subgraph induced by `node_ids` as a standalone
    /// [`Graph`].
    ///
    /// Boundary values consumed from outside become subgraph inputs (in
    /// ascending value order); values consumed outside or listed in the
    /// parent's outputs become subgraph outputs. Initializers used by member
    /// nodes are copied in.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSubgraph`] if `node_ids` references
    /// unknown nodes or is empty.
    pub fn subgraph(&self, node_ids: &[NodeId], name: impl Into<String>) -> Result<Graph> {
        if node_ids.is_empty() {
            return Err(GraphError::InvalidSubgraph("empty node set".into()));
        }
        let member: BTreeSet<NodeId> = node_ids.iter().copied().collect();
        for id in &member {
            if id.0 >= self.nodes.len() {
                return Err(GraphError::InvalidSubgraph(format!("unknown node {}", id.0)));
            }
        }
        let producers = self.producers();
        let consumers = self.consumers();

        let mut sub = Graph::new(name);
        let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();
        let map_value = |g: &mut Graph, vmap: &mut HashMap<ValueId, ValueId>, v: ValueId| {
            *vmap.entry(v).or_insert_with(|| {
                let name = self.values[v.0].name.clone();
                let nv = g.add_value(name);
                g.values[nv.0].shape = self.values[v.0].shape.clone();
                nv
            })
        };

        // Emit member nodes in the parent's topological order.
        let order = self.topological_order()?;
        let mut boundary_inputs: Vec<ValueId> = Vec::new();
        let mut boundary_outputs: Vec<ValueId> = Vec::new();
        for nid in order.iter().filter(|n| member.contains(n)) {
            let node = &self.nodes[nid.0];
            let mut new_inputs = Vec::with_capacity(node.inputs.len());
            for &inp in &node.inputs {
                let mapped = map_value(&mut sub, &mut value_map, inp);
                if let Some(t) = self.initializers.get(&inp) {
                    if sub.initializer(mapped).is_none() {
                        sub.set_initializer(mapped, t.clone());
                    }
                } else {
                    let produced_inside =
                        producers.get(&inp).map(|p| member.contains(p)).unwrap_or(false);
                    if !produced_inside && !boundary_inputs.contains(&inp) {
                        boundary_inputs.push(inp);
                    }
                }
                new_inputs.push(mapped);
            }
            let mut new_outputs = Vec::with_capacity(node.outputs.len());
            for &out in &node.outputs {
                let mapped = map_value(&mut sub, &mut value_map, out);
                new_outputs.push(mapped);
                let consumed_outside = consumers
                    .get(&out)
                    .map(|cs| cs.iter().any(|c| !member.contains(c)))
                    .unwrap_or(false);
                let is_graph_output = self.outputs.contains(&out);
                if (consumed_outside || is_graph_output) && !boundary_outputs.contains(&out) {
                    boundary_outputs.push(out);
                }
            }
            sub.add_node(node.name.clone(), node.op.clone(), new_inputs, new_outputs)?;
        }
        boundary_inputs.sort();
        boundary_outputs.sort();
        for v in boundary_inputs {
            let mapped = value_map[&v];
            sub.mark_input(mapped);
        }
        for v in boundary_outputs {
            let mapped = value_map[&v];
            sub.mark_output(mapped);
        }
        Ok(sub)
    }

    /// Total number of weight parameters.
    pub fn parameter_count(&self) -> usize {
        self.initializers.values().map(Tensor::len).sum()
    }

    /// Per-operator-name node counts (for model statistics and docs).
    pub fn op_histogram(&self) -> BTreeMap<String, usize> {
        let mut hist = BTreeMap::new();
        for node in &self.nodes {
            *hist.entry(node.op.name()).or_insert(0) += 1;
        }
        hist
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph '{}' ({} nodes, {} values, {} params)",
            self.name,
            self.node_count(),
            self.value_count(),
            self.parameter_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ActivationKind;

    /// Builds x -> Relu -> Identity -> out with a side initializer add.
    fn tiny_graph() -> Graph {
        let mut g = Graph::new("tiny");
        let x = g.add_value("x");
        let w = g.add_value("w");
        let a = g.add_value("a");
        let b = g.add_value("b");
        let y = g.add_value("y");
        g.mark_input(x);
        g.set_initializer(w, Tensor::ones(&[4]));
        g.add_node("relu", Op::Activation(ActivationKind::Relu), vec![x], vec![a]).unwrap();
        g.add_node("add", Op::Add, vec![a, w], vec![b]).unwrap();
        g.add_node("id", Op::Identity, vec![b], vec![y]).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny_graph().validate().unwrap();
    }

    #[test]
    fn validate_rejects_multiple_producers() {
        let mut g = tiny_graph();
        let a = ValueId(2);
        g.add_node("dup", Op::Identity, vec![ValueId(0)], vec![a]).unwrap();
        assert!(matches!(g.validate(), Err(GraphError::MultipleProducers { .. })));
    }

    #[test]
    fn validate_rejects_undefined_consumption() {
        let mut g = Graph::new("bad");
        let x = g.add_value("x");
        let y = g.add_value("y");
        g.add_node("id", Op::Identity, vec![x], vec![y]).unwrap();
        g.mark_output(y);
        // x is neither input nor initializer nor produced.
        assert!(matches!(g.validate(), Err(GraphError::InvalidInterface(_))));
    }

    #[test]
    fn arity_is_enforced() {
        let mut g = Graph::new("bad");
        let x = g.add_value("x");
        let y = g.add_value("y");
        assert!(matches!(
            g.add_node("add", Op::Add, vec![x], vec![y]),
            Err(GraphError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn topological_order_is_valid() {
        let g = tiny_graph();
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), 3);
        let pos: HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (a, b) in g.node_edges() {
            assert!(pos[&a] < pos[&b]);
        }
    }

    #[test]
    fn cyclic_graph_detected() {
        let mut g = Graph::new("cycle");
        let a = g.add_value("a");
        let b = g.add_value("b");
        g.add_node("n1", Op::Identity, vec![a], vec![b]).unwrap();
        g.add_node("n2", Op::Identity, vec![b], vec![a]).unwrap();
        assert!(matches!(g.topological_order(), Err(GraphError::CyclicGraph)));
    }

    #[test]
    fn subgraph_boundary_detection() {
        let g = tiny_graph();
        // Take only the middle "add" node.
        let sub = g.subgraph(&[NodeId(1)], "mid").unwrap();
        sub.validate().unwrap();
        assert_eq!(sub.node_count(), 1);
        // "a" comes from outside -> input; "b" consumed outside -> output.
        assert_eq!(sub.inputs().len(), 1);
        assert_eq!(sub.outputs().len(), 1);
        // The weight must have been copied, not turned into an input.
        assert_eq!(sub.initializers().len(), 1);
    }

    #[test]
    fn subgraph_of_everything_matches_interface() {
        let g = tiny_graph();
        let all: Vec<NodeId> = g.nodes().iter().map(|n| n.id).collect();
        let sub = g.subgraph(&all, "full").unwrap();
        sub.validate().unwrap();
        assert_eq!(sub.inputs().len(), g.inputs().len());
        assert_eq!(sub.outputs().len(), g.outputs().len());
        assert_eq!(sub.node_count(), g.node_count());
    }

    #[test]
    fn subgraph_rejects_empty() {
        let g = tiny_graph();
        assert!(g.subgraph(&[], "e").is_err());
    }

    #[test]
    fn histogram_and_params() {
        let g = tiny_graph();
        let h = g.op_histogram();
        assert_eq!(h["Relu"], 1);
        assert_eq!(h["Add"], 1);
        assert_eq!(h["Identity"], 1);
        assert_eq!(g.parameter_count(), 4);
    }

    #[test]
    fn display_nonempty() {
        assert!(tiny_graph().to_string().contains("tiny"));
    }

    #[test]
    fn serde_round_trip() {
        let g = tiny_graph();
        // serde via a self-describing format isn't in deps; use the
        // serialize trait through a JSON-like in-memory check with
        // bincode-style manual: here we just ensure Clone + PartialEq of
        // nodes hold after a clone (serde derives compile-time checked).
        let g2 = g.clone();
        assert_eq!(g.nodes(), g2.nodes());
    }
}
