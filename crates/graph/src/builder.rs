//! A fluent builder for CNN graphs with automatic weight initialisation and
//! incremental shape tracking.
//!
//! Used by the model zoo and by tests that need ad-hoc models. Weights are
//! drawn from a caller-seeded RNG so a model is fully determined by
//! `(architecture, seed)` — every diversified variant of a model therefore
//! shares bit-identical parameters, as required for MVX equivalence.

use crate::op::{ActivationKind, Op, PoolKind};
use crate::shape_infer::infer_node;
use crate::{Graph, GraphError, Node, NodeId, Result, ValueId};
use mvtee_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Incremental graph builder.
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
    rng: StdRng,
    shapes: HashMap<ValueId, Shape>,
    counter: usize,
}

impl GraphBuilder {
    /// Creates a builder for a named model with a deterministic weight seed.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        GraphBuilder {
            graph: Graph::new(name),
            rng: StdRng::seed_from_u64(seed),
            shapes: HashMap::new(),
            counter: 0,
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    /// Declares a graph input of the given shape.
    pub fn input(&mut self, dims: &[usize]) -> ValueId {
        let name = self.fresh_name("input");
        let v = self.graph.add_value(name);
        self.graph.mark_input(v);
        self.shapes.insert(v, Shape::new(dims));
        v
    }

    /// Shape of a previously created value.
    ///
    /// # Panics
    ///
    /// Panics if the value was not created through this builder.
    pub fn shape(&self, v: ValueId) -> &Shape {
        &self.shapes[&v]
    }

    /// Registers a caller-supplied initializer tensor (e.g. token-mixing
    /// matrices) and returns its value id.
    pub fn emit_initializer(&mut self, prefix: &str, tensor: Tensor) -> ValueId {
        self.add_initializer(prefix, tensor)
    }

    fn add_initializer(&mut self, prefix: &str, tensor: Tensor) -> ValueId {
        let name = self.fresh_name(prefix);
        let v = self.graph.add_value(name);
        self.shapes.insert(v, tensor.shape().clone());
        self.graph.set_initializer(v, tensor);
        v
    }

    /// Emits a node, running single-node shape inference to keep the
    /// builder's shape map current.
    ///
    /// # Errors
    ///
    /// Propagates arity and shape errors.
    pub fn emit(&mut self, prefix: &str, op: Op, inputs: Vec<ValueId>) -> Result<ValueId> {
        let out_name = self.fresh_name(&format!("{prefix}_out"));
        let out = self.graph.add_value(out_name);
        let name = self.fresh_name(prefix);
        let input_shapes: Vec<&Shape> = inputs
            .iter()
            .map(|v| {
                self.shapes
                    .get(v)
                    .ok_or(GraphError::UnknownValue { value: v.0 })
            })
            .collect::<Result<_>>()?;
        let probe = Node {
            id: NodeId(usize::MAX),
            name: name.clone(),
            op: op.clone(),
            inputs: inputs.clone(),
            outputs: vec![out],
        };
        let out_shape = infer_node(&probe, &input_shapes)?;
        self.shapes.insert(out, out_shape);
        self.graph.add_node(name, op, inputs, vec![out])?;
        Ok(out)
    }

    /// 2-D convolution with freshly initialised weights and bias.
    ///
    /// # Errors
    ///
    /// Fails when the input is not rank 4 or attributes are inconsistent.
    pub fn conv(
        &mut self,
        x: ValueId,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        groups: usize,
    ) -> Result<ValueId> {
        let in_c = self
            .shapes
            .get(&x)
            .and_then(|s| s.dims().get(1).copied())
            .ok_or(GraphError::UnknownValue { value: x.0 })?;
        let fan_in = (in_c / groups.max(1)) * kernel.0 * kernel.1;
        let w = Tensor::kaiming(
            &mut self.rng,
            &[out_channels, in_c / groups.max(1), kernel.0, kernel.1],
            fan_in,
        );
        let b = Tensor::random_uniform(&mut self.rng, &[out_channels], 0.05);
        let wv = self.add_initializer("w", w);
        let bv = self.add_initializer("b", b);
        self.emit("conv", Op::Conv { kernel, stride, padding, groups }, vec![x, wv, bv])
    }

    /// Inference batch-normalisation with randomly initialised statistics.
    ///
    /// # Errors
    ///
    /// Fails on non-rank-4 inputs.
    pub fn batch_norm(&mut self, x: ValueId) -> Result<ValueId> {
        let c = self
            .shapes
            .get(&x)
            .and_then(|s| s.dims().get(1).copied())
            .ok_or(GraphError::UnknownValue { value: x.0 })?;
        // Scale near 1, bias near 0, mean near 0, variance near 1: keeps
        // activations in a realistic numeric range through deep stacks.
        let scale = Tensor::random_uniform(&mut self.rng, &[c], 0.1).map(|v| 1.0 + v);
        let bias = Tensor::random_uniform(&mut self.rng, &[c], 0.05);
        let mean = Tensor::random_uniform(&mut self.rng, &[c], 0.05);
        let var = Tensor::random_uniform(&mut self.rng, &[c], 0.1).map(|v| 1.0 + v.abs());
        let sv = self.add_initializer("bn_scale", scale);
        let bv = self.add_initializer("bn_bias", bias);
        let mv = self.add_initializer("bn_mean", mean);
        let vv = self.add_initializer("bn_var", var);
        self.emit("bn", Op::BatchNorm { epsilon: 1e-5 }, vec![x, sv, bv, mv, vv])
    }

    /// Element-wise activation.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn activation(&mut self, x: ValueId, kind: ActivationKind) -> Result<ValueId> {
        self.emit("act", Op::Activation(kind), vec![x])
    }

    /// Layer normalisation over the last axis (transformer blocks).
    ///
    /// # Errors
    ///
    /// Fails on rank-0 inputs.
    pub fn layer_norm(&mut self, x: ValueId) -> Result<ValueId> {
        let d = *self
            .shapes
            .get(&x)
            .and_then(|s| s.dims().last())
            .ok_or(GraphError::UnknownValue { value: x.0 })?;
        let gamma = Tensor::random_uniform(&mut self.rng, &[d], 0.1).map(|v| 1.0 + v);
        let beta = Tensor::random_uniform(&mut self.rng, &[d], 0.05);
        let gv = self.add_initializer("ln_gamma", gamma);
        let bv = self.add_initializer("ln_beta", beta);
        self.emit("ln", Op::LayerNorm { epsilon: 1e-5 }, vec![x, gv, bv])
    }

    /// Conv → BN → activation, the ubiquitous CNN building block.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_bn_act(
        &mut self,
        x: ValueId,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        groups: usize,
        act: ActivationKind,
    ) -> Result<ValueId> {
        let c = self.conv(x, out_channels, kernel, stride, padding, groups)?;
        let b = self.batch_norm(c)?;
        self.activation(b, act)
    }

    /// Max pooling.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn max_pool(
        &mut self,
        x: ValueId,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<ValueId> {
        self.emit("maxpool", Op::Pool { kind: PoolKind::Max, kernel, stride, padding }, vec![x])
    }

    /// Average pooling.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn avg_pool(
        &mut self,
        x: ValueId,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<ValueId> {
        self.emit("avgpool", Op::Pool { kind: PoolKind::Average, kernel, stride, padding }, vec![x])
    }

    /// Global average pooling.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn global_avg_pool(&mut self, x: ValueId) -> Result<ValueId> {
        self.emit("gap", Op::GlobalAvgPool, vec![x])
    }

    /// Local response normalisation.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn lrn(&mut self, x: ValueId, size: usize) -> Result<ValueId> {
        self.emit("lrn", Op::Lrn { size, alpha: 1e-4, beta: 0.75, bias: 1.0 }, vec![x])
    }

    /// Fully connected layer with bias.
    ///
    /// # Errors
    ///
    /// Fails on non-rank-2 inputs.
    pub fn gemm(&mut self, x: ValueId, out_features: usize) -> Result<ValueId> {
        let in_f = self
            .shapes
            .get(&x)
            .and_then(|s| s.dims().get(1).copied())
            .ok_or(GraphError::UnknownValue { value: x.0 })?;
        let w = Tensor::kaiming(&mut self.rng, &[out_features, in_f], in_f);
        let b = Tensor::random_uniform(&mut self.rng, &[out_features], 0.05);
        let wv = self.add_initializer("fc_w", w);
        let bv = self.add_initializer("fc_b", b);
        self.emit("gemm", Op::Gemm, vec![x, wv, bv])
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn add(&mut self, a: ValueId, b: ValueId) -> Result<ValueId> {
        self.emit("add", Op::Add, vec![a, b])
    }

    /// Element-wise multiplication.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn mul(&mut self, a: ValueId, b: ValueId) -> Result<ValueId> {
        self.emit("mul", Op::Mul, vec![a, b])
    }

    /// Channel concatenation.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn concat(&mut self, xs: Vec<ValueId>) -> Result<ValueId> {
        self.emit("concat", Op::Concat { axis: 1 }, xs)
    }

    /// Flatten from axis 1.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn flatten(&mut self, x: ValueId) -> Result<ValueId> {
        self.emit("flatten", Op::Flatten { axis: 1 }, vec![x])
    }

    /// Softmax over the last axis.
    ///
    /// # Errors
    ///
    /// Propagates emission errors.
    pub fn softmax(&mut self, x: ValueId) -> Result<ValueId> {
        let axis = self.shapes[&x].rank().saturating_sub(1);
        self.emit("softmax", Op::Softmax { axis }, vec![x])
    }

    /// Squeeze-and-excitation block (used by MobileNet V3, MnasNet,
    /// EfficientNet): GAP → 1x1 reduce → act → 1x1 expand → gate → scale.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn squeeze_excite(
        &mut self,
        x: ValueId,
        reduction: usize,
        act: ActivationKind,
        gate: ActivationKind,
    ) -> Result<ValueId> {
        let c = self.shapes[&x].dims()[1];
        let squeezed = self.global_avg_pool(x)?;
        let reduced = self.conv(squeezed, (c / reduction).max(1), (1, 1), (1, 1), (0, 0), 1)?;
        let reduced = self.activation(reduced, act)?;
        let expanded = self.conv(reduced, c, (1, 1), (1, 1), (0, 0), 1)?;
        let gated = self.activation(expanded, gate)?;
        self.mul(x, gated)
    }

    /// Marks `outputs` and finishes, validating the result.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn finish(mut self, outputs: Vec<ValueId>) -> Result<Graph> {
        for out in outputs {
            self.graph.mark_output(out);
        }
        // Persist inferred shapes into the graph metadata.
        for (v, s) in &self.shapes {
            self.graph.value_mut(*v)?.shape = Some(s.clone());
        }
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_small_cnn() {
        let mut b = GraphBuilder::new("small", 1);
        let x = b.input(&[1, 3, 16, 16]);
        let c = b.conv_bn_act(x, 8, (3, 3), (1, 1), (1, 1), 1, ActivationKind::Relu).unwrap();
        let p = b.max_pool(c, (2, 2), (2, 2), (0, 0)).unwrap();
        let g = b.global_avg_pool(p).unwrap();
        let f = b.flatten(g).unwrap();
        let fc = b.gemm(f, 10).unwrap();
        let s = b.softmax(fc).unwrap();
        let graph = b.finish(vec![s]).unwrap();
        assert_eq!(graph.outputs().len(), 1);
        assert!(graph.node_count() >= 7);
        assert!(graph.parameter_count() > 0);
    }

    #[test]
    fn residual_block_shapes() {
        let mut b = GraphBuilder::new("res", 2);
        let x = b.input(&[1, 8, 8, 8]);
        let c1 = b.conv_bn_act(x, 8, (3, 3), (1, 1), (1, 1), 1, ActivationKind::Relu).unwrap();
        let c2 = b.conv(c1, 8, (3, 3), (1, 1), (1, 1), 1).unwrap();
        let c2 = b.batch_norm(c2).unwrap();
        let sum = b.add(c2, x).unwrap();
        let out = b.activation(sum, ActivationKind::Relu).unwrap();
        assert_eq!(b.shape(out).dims(), &[1, 8, 8, 8]);
        b.finish(vec![out]).unwrap();
    }

    #[test]
    fn squeeze_excite_preserves_shape() {
        let mut b = GraphBuilder::new("se", 3);
        let x = b.input(&[1, 16, 4, 4]);
        let se = b
            .squeeze_excite(x, 4, ActivationKind::Relu, ActivationKind::HardSigmoid)
            .unwrap();
        assert_eq!(b.shape(se).dims(), &[1, 16, 4, 4]);
        b.finish(vec![se]).unwrap();
    }

    #[test]
    fn same_seed_same_weights() {
        let build = || {
            let mut b = GraphBuilder::new("d", 77);
            let x = b.input(&[1, 3, 8, 8]);
            let c = b.conv(x, 4, (3, 3), (1, 1), (1, 1), 1).unwrap();
            b.finish(vec![c]).unwrap()
        };
        let g1 = build();
        let g2 = build();
        for (a, b) in g1.initializers().values().zip(g2.initializers().values()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seed_different_weights() {
        let build = |seed| {
            let mut b = GraphBuilder::new("d", seed);
            let x = b.input(&[1, 3, 8, 8]);
            let c = b.conv(x, 4, (3, 3), (1, 1), (1, 1), 1).unwrap();
            b.finish(vec![c]).unwrap()
        };
        let g1 = build(1);
        let g2 = build(2);
        let w1 = g1.initializers().values().next().unwrap();
        let w2 = g2.initializers().values().next().unwrap();
        assert_ne!(w1, w2);
    }

    #[test]
    fn depthwise_builder() {
        let mut b = GraphBuilder::new("dw", 5);
        let x = b.input(&[1, 8, 8, 8]);
        let dw = b.conv(x, 8, (3, 3), (1, 1), (1, 1), 8).unwrap();
        assert_eq!(b.shape(dw).dims(), &[1, 8, 8, 8]);
        b.finish(vec![dw]).unwrap();
    }

    #[test]
    fn concat_builder() {
        let mut b = GraphBuilder::new("cat", 6);
        let x = b.input(&[1, 4, 8, 8]);
        let a = b.conv(x, 4, (1, 1), (1, 1), (0, 0), 1).unwrap();
        let c = b.conv(x, 6, (1, 1), (1, 1), (0, 0), 1).unwrap();
        let cat = b.concat(vec![a, c]).unwrap();
        assert_eq!(b.shape(cat).dims(), &[1, 10, 8, 8]);
        b.finish(vec![cat]).unwrap();
    }
}
