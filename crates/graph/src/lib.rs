//! ONNX-like computational-graph IR for the MVTEE reproduction.
//!
//! The paper manipulates DNN models as ONNX graphs: it inspects them,
//! partitions them with random contraction (§4.1), rewrites them into
//! functionally equivalent diversified variants (§4.2) and feeds them to
//! heterogeneous inference runtimes. This crate supplies that substrate:
//!
//! * [`Op`] — a typed operator set covering the seven evaluation models
//!   (convolutions with groups/strides, Gemm, BatchNorm, poolings, the
//!   MobileNet/EfficientNet activation family, Concat, Softmax, LRN, …),
//! * [`Graph`] — a DAG of [`Node`]s over named values with initializers
//!   (weights), topological ordering, validation, and convex **subgraph
//!   extraction** (the basis of partition-as-checkpoint),
//! * [`shape_infer`] — static shape inference for every operator,
//! * [`zoo`] — structurally faithful, channel-scaled builders for the
//!   models evaluated in §6.1: EfficientNet-b7, GoogleNet, Inception V3,
//!   MnasNet, MobileNet V3, ResNet-152 and ResNet-50.
//!
//! # Example
//!
//! ```
//! use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
//!
//! let model = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 42).unwrap();
//! assert!(model.graph.node_count() > 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
pub mod op;
pub mod shape_infer;
pub mod zoo;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Graph, Node, NodeId, ValueId, ValueInfo};
pub use op::{ActivationKind, Op, PoolKind};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
