//! The operator set of the IR.
//!
//! Covers everything the seven evaluation models need, plus the helper
//! operators used by graph-level diversification (Identity, Abs, dummy
//! Add/Mul by constants). Attribute semantics follow ONNX where ONNX has an
//! equivalent operator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Pooling flavour for [`Op::Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling (excluding padding from the divisor, as ONNX's
    /// default `count_include_pad = 0`).
    Average,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolKind::Max => write!(f, "Max"),
            PoolKind::Average => write!(f, "Avg"),
        }
    }
}

/// Element-wise activation flavour for [`Op::Activation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)` — MobileNet/MnasNet family.
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// `x * sigmoid(x)` (SiLU / swish) — EfficientNet family.
    Silu,
    /// `clamp(x/6 + 0.5, 0, 1)` — MobileNet V3.
    HardSigmoid,
    /// `x * hard_sigmoid(x)` — MobileNet V3.
    HardSwish,
    /// Hyperbolic tangent.
    Tanh,
    /// Absolute value (used by diversifying rewrites of Relu).
    Abs,
}

impl ActivationKind {
    /// Applies the activation to a scalar.
    #[allow(clippy::manual_clamp)] // max/min keeps IEEE NaN laundering identical to Relu
    pub fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Relu6 => x.max(0.0).min(6.0),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActivationKind::Silu => x / (1.0 + (-x).exp()),
            ActivationKind::HardSigmoid => (x / 6.0 + 0.5).clamp(0.0, 1.0),
            ActivationKind::HardSwish => x * (x / 6.0 + 0.5).clamp(0.0, 1.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Abs => x.abs(),
        }
    }
}

impl fmt::Display for ActivationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ActivationKind::Relu => "Relu",
            ActivationKind::Relu6 => "Relu6",
            ActivationKind::Sigmoid => "Sigmoid",
            ActivationKind::Silu => "Silu",
            ActivationKind::HardSigmoid => "HardSigmoid",
            ActivationKind::HardSwish => "HardSwish",
            ActivationKind::Tanh => "Tanh",
            ActivationKind::Abs => "Abs",
        };
        write!(f, "{name}")
    }
}

/// A graph operator with its attributes.
///
/// Input/output arity conventions (checked by [`crate::Graph::validate`]):
///
/// | Op | Inputs | Outputs |
/// |---|---|---|
/// | `Conv` | x, w, \[b\] | y |
/// | `Gemm` | x, w, \[b\] | y |
/// | `MatMul` | a, b | y |
/// | `BatchNorm` | x, scale, bias, mean, var | y |
/// | `Activation` | x | y |
/// | `Pool` / `GlobalAvgPool` / `Lrn` / `Softmax` / `Flatten` / `Reshape` / `Identity` | x | y |
/// | `Add` / `Mul` | a, b | y |
/// | `Concat` | x0..xn | y |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// 2-D convolution over NCHW input.
    Conv {
        /// Kernel size `(kh, kw)` (must match the weight tensor).
        kernel: (usize, usize),
        /// Stride `(sh, sw)`.
        stride: (usize, usize),
        /// Symmetric zero padding `(ph, pw)`.
        padding: (usize, usize),
        /// Number of groups; `groups == in_channels` is a depthwise conv.
        groups: usize,
    },
    /// Fully connected layer: `y = x · wᵀ + b` over `[n, k]` inputs.
    Gemm,
    /// Plain matrix multiplication of two rank-2 tensors.
    MatMul,
    /// Inference-mode batch normalisation.
    BatchNorm {
        /// Numerical-stability epsilon.
        epsilon: f32,
    },
    /// Element-wise activation.
    Activation(ActivationKind),
    /// Spatial max/average pooling.
    Pool {
        /// Pooling flavour.
        kind: PoolKind,
        /// Kernel size `(kh, kw)`.
        kernel: (usize, usize),
        /// Stride `(sh, sw)`.
        stride: (usize, usize),
        /// Symmetric zero padding `(ph, pw)`.
        padding: (usize, usize),
    },
    /// Global average pooling to `[n, c, 1, 1]`.
    GlobalAvgPool,
    /// Local response normalisation (AlexNet/GoogleNet style).
    Lrn {
        /// Window size (number of adjacent channels).
        size: usize,
        /// Alpha scaling.
        alpha: f32,
        /// Beta exponent.
        beta: f32,
        /// Bias constant.
        bias: f32,
    },
    /// Element-wise addition (supports ONNX broadcasting).
    Add,
    /// Element-wise multiplication (supports ONNX broadcasting).
    Mul,
    /// Channel-axis (or arbitrary-axis) concatenation.
    Concat {
        /// Concatenation axis.
        axis: usize,
    },
    /// Softmax along `axis`.
    Softmax {
        /// Reduction axis.
        axis: usize,
    },
    /// Flattens dims `[axis..]` into one, keeping `[..axis]`.
    Flatten {
        /// First flattened axis.
        axis: usize,
    },
    /// Reshape to a fixed target shape (element count must match).
    Reshape {
        /// Target dims.
        target: Vec<usize>,
    },
    /// The identity function. Inserted by dummy-operator diversification;
    /// `Dropout` in inference mode is also lowered to this.
    Identity,
    /// Layer normalisation over the last axis (`y = (x - μ) / √(σ² + ε) · γ + β`)
    /// — the normalisation used by transformer-family foundation models
    /// (§7.4 extension).
    LayerNorm {
        /// Numerical-stability epsilon.
        epsilon: f32,
    },
}

impl Op {
    /// Short operator name (ONNX-style) for display and statistics.
    pub fn name(&self) -> String {
        match self {
            Op::Conv { groups, .. } if *groups > 1 => "ConvGrouped".to_string(),
            Op::Conv { .. } => "Conv".to_string(),
            Op::Gemm => "Gemm".to_string(),
            Op::MatMul => "MatMul".to_string(),
            Op::BatchNorm { .. } => "BatchNorm".to_string(),
            Op::Activation(k) => k.to_string(),
            Op::Pool { kind, .. } => format!("{kind}Pool"),
            Op::GlobalAvgPool => "GlobalAvgPool".to_string(),
            Op::Lrn { .. } => "LRN".to_string(),
            Op::Add => "Add".to_string(),
            Op::Mul => "Mul".to_string(),
            Op::Concat { .. } => "Concat".to_string(),
            Op::Softmax { .. } => "Softmax".to_string(),
            Op::Flatten { .. } => "Flatten".to_string(),
            Op::Reshape { .. } => "Reshape".to_string(),
            Op::Identity => "Identity".to_string(),
            Op::LayerNorm { .. } => "LayerNorm".to_string(),
        }
    }

    /// Valid input arity range `(min, max)` for the operator.
    pub fn arity(&self) -> (usize, usize) {
        match self {
            Op::Conv { .. } => (2, 3),
            Op::Gemm => (2, 3),
            Op::LayerNorm { .. } => (3, 3),
            Op::MatMul => (2, 2),
            Op::BatchNorm { .. } => (5, 5),
            Op::Activation(_)
            | Op::Pool { .. }
            | Op::GlobalAvgPool
            | Op::Lrn { .. }
            | Op::Softmax { .. }
            | Op::Flatten { .. }
            | Op::Reshape { .. }
            | Op::Identity => (1, 1),
            Op::Add | Op::Mul => (2, 2),
            Op::Concat { .. } => (1, usize::MAX),
        }
    }

    /// Rough multiply-accumulate cost estimate given the *output* element
    /// count and conv attributes. Used by partition weight functions to
    /// balance compute rather than just node counts.
    pub fn flops_per_output(&self, in_channels: usize) -> usize {
        match self {
            Op::Conv { kernel, groups, .. } => {
                (in_channels / (*groups).max(1)) * kernel.0 * kernel.1
            }
            Op::Gemm | Op::MatMul => in_channels,
            Op::BatchNorm { .. } | Op::LayerNorm { .. } => 2,
            Op::Lrn { size, .. } => *size,
            _ => 1,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_semantics() {
        assert_eq!(ActivationKind::Relu.apply(-1.0), 0.0);
        assert_eq!(ActivationKind::Relu.apply(2.0), 2.0);
        assert_eq!(ActivationKind::Relu6.apply(9.0), 6.0);
        assert!((ActivationKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert_eq!(ActivationKind::HardSigmoid.apply(3.0), 1.0);
        assert_eq!(ActivationKind::HardSigmoid.apply(-3.0), 0.0);
        assert_eq!(ActivationKind::HardSwish.apply(3.0), 3.0);
        assert_eq!(ActivationKind::Abs.apply(-2.5), 2.5);
        assert!((ActivationKind::Silu.apply(0.0)).abs() < 1e-6);
        assert!((ActivationKind::Tanh.apply(0.0)).abs() < 1e-6);
    }

    #[test]
    fn relu_from_abs_identity() {
        // relu(x) == (x + |x|) / 2, the decomposition used by the
        // equivalent-operator-replacement transform.
        for x in [-3.0f32, -0.5, 0.0, 0.5, 7.0] {
            let relu = ActivationKind::Relu.apply(x);
            let via_abs = (x + ActivationKind::Abs.apply(x)) / 2.0;
            assert_eq!(relu, via_abs);
        }
    }

    #[test]
    fn op_names() {
        let conv = Op::Conv { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 1 };
        assert_eq!(conv.name(), "Conv");
        let dw = Op::Conv { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 32 };
        assert_eq!(dw.name(), "ConvGrouped");
        assert_eq!(Op::Pool {
            kind: PoolKind::Max,
            kernel: (2, 2),
            stride: (2, 2),
            padding: (0, 0)
        }
        .name(), "MaxPool");
        assert_eq!(Op::Activation(ActivationKind::HardSwish).name(), "HardSwish");
    }

    #[test]
    fn arity_ranges() {
        assert_eq!(Op::Gemm.arity(), (2, 3));
        assert_eq!(Op::BatchNorm { epsilon: 1e-5 }.arity(), (5, 5));
        assert_eq!(Op::Concat { axis: 1 }.arity().0, 1);
        assert_eq!(Op::Identity.arity(), (1, 1));
    }

    #[test]
    fn flops_estimates_ordering() {
        let conv3 = Op::Conv { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 1 };
        let conv1 = Op::Conv { kernel: (1, 1), stride: (1, 1), padding: (0, 0), groups: 1 };
        assert!(conv3.flops_per_output(64) > conv1.flops_per_output(64));
        assert!(conv1.flops_per_output(64) > Op::Add.flops_per_output(64));
    }
}
