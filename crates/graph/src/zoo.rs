//! The model zoo: structurally faithful builders for the seven pre-trained
//! DNNs evaluated by the paper (§6.1) — EfficientNet-b7, GoogleNet,
//! Inception V3, MnasNet, MobileNet V3, ResNet-152 and ResNet-50.
//!
//! # Substitution note (see `DESIGN.md`)
//!
//! The paper loads real pre-trained ONNX models. MVTEE's behaviour depends
//! on model *structure* (node/edge topology for partitioning, operator mix
//! and compute distribution for performance, tensor shapes for checkpoint
//! payloads) — not on trained weights, so the zoo reproduces each
//! architecture block-for-block with deterministic random weights and a
//! configurable [`ScaleProfile`] that scales channel widths and input
//! resolution to keep simulation times practical. `ScaleProfile::Full`
//! reproduces the original channel counts and 3×224×224 inputs.

use crate::op::ActivationKind::{self, HardSigmoid, HardSwish, Relu, Relu6, Sigmoid, Silu};
use crate::{Graph, GraphBuilder, Result, ValueId};
use mvtee_tensor::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's evaluation models to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// EfficientNet-b7 (MBConv + squeeze-excite, SiLU).
    EfficientNetB7,
    /// GoogleNet / Inception V1 (LRN + inception blocks).
    GoogleNet,
    /// Inception V3 (factorised inception blocks A–E).
    InceptionV3,
    /// MnasNet-B1 (inverted residuals, ReLU6).
    MnasNet,
    /// MobileNet V3 Large (bneck blocks, hard-swish, squeeze-excite).
    MobileNetV3,
    /// ResNet-152 (bottleneck residuals, [3, 8, 36, 3]).
    ResNet152,
    /// ResNet-50 (bottleneck residuals, [3, 4, 6, 3]).
    ResNet50,
    /// **Extension (§7.4):** a transformer-style mixer "foundation model"
    /// — token-mixing MatMul + LayerNorm + gated MLP blocks over a
    /// `[seq, d]` embedding. Not part of the paper's seven evaluation
    /// models; included to demonstrate MVTEE beyond CNNs.
    FoundationMixer,
}

impl ModelKind {
    /// All seven models, in the paper's alphabetical presentation order.
    pub const ALL: [ModelKind; 7] = [
        ModelKind::EfficientNetB7,
        ModelKind::GoogleNet,
        ModelKind::InceptionV3,
        ModelKind::MnasNet,
        ModelKind::MobileNetV3,
        ModelKind::ResNet152,
        ModelKind::ResNet50,
    ];

    /// The paper's seven models plus the foundation-model extension.
    pub fn extended() -> Vec<ModelKind> {
        let mut all = Self::ALL.to_vec();
        all.push(ModelKind::FoundationMixer);
        all
    }

    /// Display name matching the paper's figures.
    pub fn display_name(self) -> &'static str {
        match self {
            ModelKind::EfficientNetB7 => "EfficientNet-b7",
            ModelKind::GoogleNet => "GoogleNet",
            ModelKind::InceptionV3 => "Inception V3",
            ModelKind::MnasNet => "MnasNet",
            ModelKind::MobileNetV3 => "MobileNet V3",
            ModelKind::ResNet152 => "ResNet-152",
            ModelKind::ResNet50 => "ResNet-50",
            ModelKind::FoundationMixer => "Foundation-Mixer",
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_name())
    }
}

/// Channel-width / input-resolution scaling applied to the zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScaleProfile {
    /// Tiny models for unit/integration tests (32×32 input, ~1/8 width).
    Test,
    /// Benchmark scale used by the experiment harness (64×64, ~1/4 width).
    Bench,
    /// The paper's original sizes (224×224 / 299×299, full width).
    Full,
}

impl ScaleProfile {
    /// Input spatial resolution.
    pub fn resolution(self) -> usize {
        match self {
            ScaleProfile::Test => 32,
            ScaleProfile::Bench => 64,
            ScaleProfile::Full => 224,
        }
    }

    /// Channel width multiplier.
    pub fn width(self) -> f32 {
        match self {
            ScaleProfile::Test => 0.125,
            ScaleProfile::Bench => 0.25,
            ScaleProfile::Full => 1.0,
        }
    }

    /// Classifier output classes.
    pub fn classes(self) -> usize {
        match self {
            ScaleProfile::Test => 10,
            ScaleProfile::Bench => 100,
            ScaleProfile::Full => 1000,
        }
    }

    /// Scales a channel count: multiple of 4, at least 4.
    pub fn ch(self, c: usize) -> usize {
        let scaled = (c as f32 * self.width()).round() as usize;
        (scaled.div_ceil(4) * 4).max(4)
    }
}

/// A built model: the graph plus its canonical input shape.
#[derive(Debug, Clone)]
pub struct Model {
    /// Which architecture this is.
    pub kind: ModelKind,
    /// The scale it was built at.
    pub profile: ScaleProfile,
    /// The computational graph (validated, shapes inferred).
    pub graph: Graph,
    /// The canonical `[1, 3, h, w]` input shape.
    pub input_shape: Shape,
}

/// Builds one of the paper's models at the given scale with a deterministic
/// weight seed.
///
/// # Errors
///
/// Propagates graph-construction errors (which indicate a bug in the zoo
/// itself; all architectures are covered by tests).
pub fn build(kind: ModelKind, profile: ScaleProfile, seed: u64) -> Result<Model> {
    let res = profile.resolution();
    if kind == ModelKind::FoundationMixer {
        let (seq, d) = mixer_dims(profile);
        let graph = foundation_mixer(profile, seed)?;
        return Ok(Model { kind, profile, graph, input_shape: Shape::new(&[seq, d]) });
    }
    let input_shape = Shape::new(&[1, 3, res, res]);
    let graph = match kind {
        ModelKind::ResNet50 => resnet(profile, seed, &[3, 4, 6, 3], "resnet50")?,
        ModelKind::ResNet152 => resnet(profile, seed, &[3, 8, 36, 3], "resnet152")?,
        ModelKind::GoogleNet => googlenet(profile, seed)?,
        ModelKind::InceptionV3 => inception_v3(profile, seed)?,
        ModelKind::MobileNetV3 => mobilenet_v3(profile, seed)?,
        ModelKind::MnasNet => mnasnet(profile, seed)?,
        ModelKind::EfficientNetB7 => efficientnet_b7(profile, seed)?,
        ModelKind::FoundationMixer => unreachable!("handled above"),
    };
    Ok(Model { kind, profile, graph, input_shape })
}

/// Convenience: builds every model at one profile.
///
/// # Errors
///
/// Propagates the first builder failure.
pub fn build_all(profile: ScaleProfile, seed: u64) -> Result<Vec<Model>> {
    ModelKind::ALL.iter().map(|&k| build(k, profile, seed)).collect()
}

// ---------------------------------------------------------------------------
// ResNet family
// ---------------------------------------------------------------------------

fn resnet(profile: ScaleProfile, seed: u64, layers: &[usize; 4], name: &str) -> Result<Graph> {
    let p = profile;
    let mut b = GraphBuilder::new(name, seed);
    let x = b.input(&[1, 3, p.resolution(), p.resolution()]);
    let stem = b.conv_bn_act(x, p.ch(64), (7, 7), (2, 2), (3, 3), 1, Relu)?;
    let mut cur = b.max_pool(stem, (3, 3), (2, 2), (1, 1))?;
    let widths = [64usize, 128, 256, 512];
    for (stage, (&blocks, &width)) in layers.iter().zip(widths.iter()).enumerate() {
        for block in 0..blocks {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            cur = bottleneck(&mut b, cur, p.ch(width), p.ch(width * 4), stride)?;
        }
    }
    let gap = b.global_avg_pool(cur)?;
    let flat = b.flatten(gap)?;
    let fc = b.gemm(flat, p.classes())?;
    let out = b.softmax(fc)?;
    b.finish(vec![out])
}

fn bottleneck(
    b: &mut GraphBuilder,
    x: ValueId,
    mid: usize,
    out: usize,
    stride: usize,
) -> Result<ValueId> {
    let in_c = b.shape(x).dims()[1];
    let c1 = b.conv_bn_act(x, mid, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let c2 = b.conv_bn_act(c1, mid, (3, 3), (stride, stride), (1, 1), 1, Relu)?;
    let c3 = b.conv(c2, out, (1, 1), (1, 1), (0, 0), 1)?;
    let c3 = b.batch_norm(c3)?;
    let skip = if stride != 1 || in_c != out {
        let s = b.conv(x, out, (1, 1), (stride, stride), (0, 0), 1)?;
        b.batch_norm(s)?
    } else {
        x
    };
    let sum = b.add(c3, skip)?;
    b.activation(sum, Relu)
}

// ---------------------------------------------------------------------------
// GoogleNet (Inception V1)
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn inception_v1_block(
    b: &mut GraphBuilder,
    x: ValueId,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pp: usize,
) -> Result<ValueId> {
    let b1 = b.conv_bn_act(x, c1, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b3 = b.conv_bn_act(x, c3r, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b3 = b.conv_bn_act(b3, c3, (3, 3), (1, 1), (1, 1), 1, Relu)?;
    let b5 = b.conv_bn_act(x, c5r, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b5 = b.conv_bn_act(b5, c5, (5, 5), (1, 1), (2, 2), 1, Relu)?;
    let bp = b.max_pool(x, (3, 3), (1, 1), (1, 1))?;
    let bp = b.conv_bn_act(bp, pp, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    b.concat(vec![b1, b3, b5, bp])
}

fn googlenet(p: ScaleProfile, seed: u64) -> Result<Graph> {
    let mut b = GraphBuilder::new("googlenet", seed);
    let x = b.input(&[1, 3, p.resolution(), p.resolution()]);
    let stem = b.conv_bn_act(x, p.ch(64), (7, 7), (2, 2), (3, 3), 1, Relu)?;
    let stem = b.max_pool(stem, (3, 3), (2, 2), (1, 1))?;
    let stem = b.lrn(stem, 5)?;
    let stem = b.conv_bn_act(stem, p.ch(64), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let stem = b.conv_bn_act(stem, p.ch(192), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    let stem = b.lrn(stem, 5)?;
    let mut cur = b.max_pool(stem, (3, 3), (2, 2), (1, 1))?;

    let c = |v: usize| p.ch(v);
    cur = inception_v1_block(&mut b, cur, c(64), c(96), c(128), c(16), c(32), c(32))?; // 3a
    cur = inception_v1_block(&mut b, cur, c(128), c(128), c(192), c(32), c(96), c(64))?; // 3b
    cur = b.max_pool(cur, (3, 3), (2, 2), (1, 1))?;
    cur = inception_v1_block(&mut b, cur, c(192), c(96), c(208), c(16), c(48), c(64))?; // 4a
    cur = inception_v1_block(&mut b, cur, c(160), c(112), c(224), c(24), c(64), c(64))?; // 4b
    cur = inception_v1_block(&mut b, cur, c(128), c(128), c(256), c(24), c(64), c(64))?; // 4c
    cur = inception_v1_block(&mut b, cur, c(112), c(144), c(288), c(32), c(64), c(64))?; // 4d
    cur = inception_v1_block(&mut b, cur, c(256), c(160), c(320), c(32), c(128), c(128))?; // 4e
    cur = b.max_pool(cur, (3, 3), (2, 2), (1, 1))?;
    cur = inception_v1_block(&mut b, cur, c(256), c(160), c(320), c(32), c(128), c(128))?; // 5a
    cur = inception_v1_block(&mut b, cur, c(384), c(192), c(384), c(48), c(128), c(128))?; // 5b

    let gap = b.global_avg_pool(cur)?;
    let flat = b.flatten(gap)?;
    let fc = b.gemm(flat, p.classes())?;
    let out = b.softmax(fc)?;
    b.finish(vec![out])
}

// ---------------------------------------------------------------------------
// Inception V3
// ---------------------------------------------------------------------------

fn inception_a(b: &mut GraphBuilder, x: ValueId, p: ScaleProfile, pool_ch: usize) -> Result<ValueId> {
    let c = |v: usize| p.ch(v);
    let b1 = b.conv_bn_act(x, c(64), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b5 = b.conv_bn_act(x, c(48), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b5 = b.conv_bn_act(b5, c(64), (5, 5), (1, 1), (2, 2), 1, Relu)?;
    let b3 = b.conv_bn_act(x, c(64), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b3 = b.conv_bn_act(b3, c(96), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    let b3 = b.conv_bn_act(b3, c(96), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    let bp = b.avg_pool(x, (3, 3), (1, 1), (1, 1))?;
    let bp = b.conv_bn_act(bp, pool_ch, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    b.concat(vec![b1, b5, b3, bp])
}

fn reduction_b(b: &mut GraphBuilder, x: ValueId, p: ScaleProfile) -> Result<ValueId> {
    let c = |v: usize| p.ch(v);
    let b3 = b.conv_bn_act(x, c(384), (3, 3), (2, 2), (1, 1), 1, Relu)?;
    let bd = b.conv_bn_act(x, c(64), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let bd = b.conv_bn_act(bd, c(96), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    let bd = b.conv_bn_act(bd, c(96), (3, 3), (2, 2), (1, 1), 1, Relu)?;
    let bp = b.max_pool(x, (3, 3), (2, 2), (1, 1))?;
    b.concat(vec![b3, bd, bp])
}

fn inception_c(b: &mut GraphBuilder, x: ValueId, p: ScaleProfile, ch7: usize) -> Result<ValueId> {
    let c = |v: usize| p.ch(v);
    let b1 = b.conv_bn_act(x, c(192), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b7 = b.conv_bn_act(x, ch7, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b7 = b.conv_bn_act(b7, ch7, (1, 7), (1, 1), (0, 3), 1, Relu)?;
    let b7 = b.conv_bn_act(b7, c(192), (7, 1), (1, 1), (3, 0), 1, Relu)?;
    let bd = b.conv_bn_act(x, ch7, (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let bd = b.conv_bn_act(bd, ch7, (7, 1), (1, 1), (3, 0), 1, Relu)?;
    let bd = b.conv_bn_act(bd, ch7, (1, 7), (1, 1), (0, 3), 1, Relu)?;
    let bd = b.conv_bn_act(bd, ch7, (7, 1), (1, 1), (3, 0), 1, Relu)?;
    let bd = b.conv_bn_act(bd, c(192), (1, 7), (1, 1), (0, 3), 1, Relu)?;
    let bp = b.avg_pool(x, (3, 3), (1, 1), (1, 1))?;
    let bp = b.conv_bn_act(bp, c(192), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    b.concat(vec![b1, b7, bd, bp])
}

fn reduction_d(b: &mut GraphBuilder, x: ValueId, p: ScaleProfile) -> Result<ValueId> {
    let c = |v: usize| p.ch(v);
    let b3 = b.conv_bn_act(x, c(192), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b3 = b.conv_bn_act(b3, c(320), (3, 3), (2, 2), (1, 1), 1, Relu)?;
    let b7 = b.conv_bn_act(x, c(192), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b7 = b.conv_bn_act(b7, c(192), (1, 7), (1, 1), (0, 3), 1, Relu)?;
    let b7 = b.conv_bn_act(b7, c(192), (7, 1), (1, 1), (3, 0), 1, Relu)?;
    let b7 = b.conv_bn_act(b7, c(192), (3, 3), (2, 2), (1, 1), 1, Relu)?;
    let bp = b.max_pool(x, (3, 3), (2, 2), (1, 1))?;
    b.concat(vec![b3, b7, bp])
}

fn inception_e(b: &mut GraphBuilder, x: ValueId, p: ScaleProfile) -> Result<ValueId> {
    let c = |v: usize| p.ch(v);
    let b1 = b.conv_bn_act(x, c(320), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b3 = b.conv_bn_act(x, c(384), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let b3a = b.conv_bn_act(b3, c(384), (1, 3), (1, 1), (0, 1), 1, Relu)?;
    let b3b = b.conv_bn_act(b3, c(384), (3, 1), (1, 1), (1, 0), 1, Relu)?;
    let bd = b.conv_bn_act(x, c(448), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    let bd = b.conv_bn_act(bd, c(384), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    let bda = b.conv_bn_act(bd, c(384), (1, 3), (1, 1), (0, 1), 1, Relu)?;
    let bdb = b.conv_bn_act(bd, c(384), (3, 1), (1, 1), (1, 0), 1, Relu)?;
    let bp = b.avg_pool(x, (3, 3), (1, 1), (1, 1))?;
    let bp = b.conv_bn_act(bp, c(192), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    b.concat(vec![b1, b3a, b3b, bda, bdb, bp])
}

fn inception_v3(p: ScaleProfile, seed: u64) -> Result<Graph> {
    let mut b = GraphBuilder::new("inception_v3", seed);
    let c = |v: usize| p.ch(v);
    let x = b.input(&[1, 3, p.resolution(), p.resolution()]);
    let mut cur = b.conv_bn_act(x, c(32), (3, 3), (2, 2), (1, 1), 1, Relu)?;
    cur = b.conv_bn_act(cur, c(32), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    cur = b.conv_bn_act(cur, c(64), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    cur = b.max_pool(cur, (3, 3), (2, 2), (1, 1))?;
    cur = b.conv_bn_act(cur, c(80), (1, 1), (1, 1), (0, 0), 1, Relu)?;
    cur = b.conv_bn_act(cur, c(192), (3, 3), (1, 1), (1, 1), 1, Relu)?;
    cur = b.max_pool(cur, (3, 3), (2, 2), (1, 1))?;

    cur = inception_a(&mut b, cur, p, c(32))?;
    cur = inception_a(&mut b, cur, p, c(64))?;
    cur = inception_a(&mut b, cur, p, c(64))?;
    cur = reduction_b(&mut b, cur, p)?;
    cur = inception_c(&mut b, cur, p, c(128))?;
    cur = inception_c(&mut b, cur, p, c(160))?;
    cur = inception_c(&mut b, cur, p, c(160))?;
    cur = inception_c(&mut b, cur, p, c(192))?;
    cur = reduction_d(&mut b, cur, p)?;
    cur = inception_e(&mut b, cur, p)?;
    cur = inception_e(&mut b, cur, p)?;

    let gap = b.global_avg_pool(cur)?;
    let flat = b.flatten(gap)?;
    let fc = b.gemm(flat, p.classes())?;
    let out = b.softmax(fc)?;
    b.finish(vec![out])
}

// ---------------------------------------------------------------------------
// MobileNet V3 Large
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn bneck(
    b: &mut GraphBuilder,
    x: ValueId,
    kernel: usize,
    expand: usize,
    out: usize,
    se: bool,
    act: ActivationKind,
    stride: usize,
) -> Result<ValueId> {
    let in_c = b.shape(x).dims()[1];
    let mut cur = x;
    if expand != in_c {
        cur = b.conv_bn_act(cur, expand, (1, 1), (1, 1), (0, 0), 1, act)?;
    }
    let pad = kernel / 2;
    cur = b.conv_bn_act(
        cur,
        expand,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
        expand,
        act,
    )?;
    if se {
        cur = b.squeeze_excite(cur, 4, Relu, HardSigmoid)?;
    }
    let proj = b.conv(cur, out, (1, 1), (1, 1), (0, 0), 1)?;
    let proj = b.batch_norm(proj)?;
    if stride == 1 && in_c == out {
        b.add(proj, x)
    } else {
        Ok(proj)
    }
}

fn mobilenet_v3(p: ScaleProfile, seed: u64) -> Result<Graph> {
    let mut b = GraphBuilder::new("mobilenet_v3", seed);
    let c = |v: usize| p.ch(v);
    let x = b.input(&[1, 3, p.resolution(), p.resolution()]);
    let mut cur = b.conv_bn_act(x, c(16), (3, 3), (2, 2), (1, 1), 1, HardSwish)?;
    // (kernel, expand, out, se, act, stride) — MobileNetV3-Large table.
    let rows: [(usize, usize, usize, bool, ActivationKind, usize); 15] = [
        (3, 16, 16, false, Relu, 1),
        (3, 64, 24, false, Relu, 2),
        (3, 72, 24, false, Relu, 1),
        (5, 72, 40, true, Relu, 2),
        (5, 120, 40, true, Relu, 1),
        (5, 120, 40, true, Relu, 1),
        (3, 240, 80, false, HardSwish, 2),
        (3, 200, 80, false, HardSwish, 1),
        (3, 184, 80, false, HardSwish, 1),
        (3, 184, 80, false, HardSwish, 1),
        (3, 480, 112, true, HardSwish, 1),
        (3, 672, 112, true, HardSwish, 1),
        (5, 672, 160, true, HardSwish, 2),
        (5, 960, 160, true, HardSwish, 1),
        (5, 960, 160, true, HardSwish, 1),
    ];
    for (k, e, o, se, act, s) in rows {
        cur = bneck(&mut b, cur, k, c(e), c(o), se, act, s)?;
    }
    cur = b.conv_bn_act(cur, c(960), (1, 1), (1, 1), (0, 0), 1, HardSwish)?;
    let gap = b.global_avg_pool(cur)?;
    let head = b.conv(gap, c(1280), (1, 1), (1, 1), (0, 0), 1)?;
    let head = b.activation(head, HardSwish)?;
    let flat = b.flatten(head)?;
    let fc = b.gemm(flat, p.classes())?;
    let out = b.softmax(fc)?;
    b.finish(vec![out])
}

// ---------------------------------------------------------------------------
// MnasNet-B1
// ---------------------------------------------------------------------------

fn mnasnet(p: ScaleProfile, seed: u64) -> Result<Graph> {
    let mut b = GraphBuilder::new("mnasnet", seed);
    let c = |v: usize| p.ch(v);
    let x = b.input(&[1, 3, p.resolution(), p.resolution()]);
    let mut cur = b.conv_bn_act(x, c(32), (3, 3), (2, 2), (1, 1), 1, Relu6)?;
    // Separable stem block.
    let dw_c = b.shape(cur).dims()[1];
    cur = b.conv_bn_act(cur, dw_c, (3, 3), (1, 1), (1, 1), dw_c, Relu6)?;
    cur = b.conv(cur, c(16), (1, 1), (1, 1), (0, 0), 1)?;
    cur = b.batch_norm(cur)?;
    // (kernel, expansion t, out channels, blocks, first-stride).
    let stages: [(usize, usize, usize, usize, usize); 6] = [
        (3, 3, 24, 3, 2),
        (5, 3, 40, 3, 2),
        (5, 6, 80, 3, 2),
        (3, 6, 96, 2, 1),
        (5, 6, 192, 4, 2),
        (3, 6, 320, 1, 1),
    ];
    for (k, t, o, blocks, first_stride) in stages {
        for i in 0..blocks {
            let stride = if i == 0 { first_stride } else { 1 };
            let in_c = b.shape(cur).dims()[1];
            cur = bneck(&mut b, cur, k, in_c * t, c(o), false, Relu6, stride)?;
        }
    }
    cur = b.conv_bn_act(cur, c(1280), (1, 1), (1, 1), (0, 0), 1, Relu6)?;
    let gap = b.global_avg_pool(cur)?;
    let flat = b.flatten(gap)?;
    let fc = b.gemm(flat, p.classes())?;
    let out = b.softmax(fc)?;
    b.finish(vec![out])
}

// ---------------------------------------------------------------------------
// EfficientNet-b7
// ---------------------------------------------------------------------------

fn mbconv(
    b: &mut GraphBuilder,
    x: ValueId,
    kernel: usize,
    expand_ratio: usize,
    out: usize,
    stride: usize,
) -> Result<ValueId> {
    let in_c = b.shape(x).dims()[1];
    let expanded = in_c * expand_ratio;
    let mut cur = x;
    if expand_ratio != 1 {
        cur = b.conv_bn_act(cur, expanded, (1, 1), (1, 1), (0, 0), 1, Silu)?;
    }
    let pad = kernel / 2;
    cur = b.conv_bn_act(
        cur,
        expanded,
        (kernel, kernel),
        (stride, stride),
        (pad, pad),
        expanded,
        Silu,
    )?;
    cur = b.squeeze_excite(cur, (4 * expand_ratio).max(4), Silu, Sigmoid)?;
    let proj = b.conv(cur, out, (1, 1), (1, 1), (0, 0), 1)?;
    let proj = b.batch_norm(proj)?;
    if stride == 1 && in_c == out {
        b.add(proj, x)
    } else {
        Ok(proj)
    }
}

fn efficientnet_b7(p: ScaleProfile, seed: u64) -> Result<Graph> {
    let mut b = GraphBuilder::new("efficientnet_b7", seed);
    let c = |v: usize| p.ch(v);
    let x = b.input(&[1, 3, p.resolution(), p.resolution()]);
    let mut cur = b.conv_bn_act(x, c(64), (3, 3), (2, 2), (1, 1), 1, Silu)?;
    // b7-scaled stages: (expand, out channels, layers, stride, kernel).
    let stages: [(usize, usize, usize, usize, usize); 7] = [
        (1, 32, 4, 1, 3),
        (6, 48, 7, 2, 3),
        (6, 80, 7, 2, 5),
        (6, 160, 10, 2, 3),
        (6, 224, 10, 1, 5),
        (6, 384, 13, 2, 5),
        (6, 640, 4, 1, 3),
    ];
    for (expand, out, layers, first_stride, kernel) in stages {
        for i in 0..layers {
            let stride = if i == 0 { first_stride } else { 1 };
            cur = mbconv(&mut b, cur, kernel, expand, c(out), stride)?;
        }
    }
    cur = b.conv_bn_act(cur, c(2560), (1, 1), (1, 1), (0, 0), 1, Silu)?;
    let gap = b.global_avg_pool(cur)?;
    let flat = b.flatten(gap)?;
    let fc = b.gemm(flat, p.classes())?;
    let out = b.softmax(fc)?;
    b.finish(vec![out])
}

// ---------------------------------------------------------------------------
// Foundation-model extension (§7.4): a transformer-style mixer
// ---------------------------------------------------------------------------

/// Sequence length and embedding width per profile.
fn mixer_dims(p: ScaleProfile) -> (usize, usize) {
    match p {
        ScaleProfile::Test => (16, 32),
        ScaleProfile::Bench => (32, 64),
        ScaleProfile::Full => (128, 512),
    }
}

/// Blocks per profile (depth).
fn mixer_depth(p: ScaleProfile) -> usize {
    match p {
        ScaleProfile::Test => 4,
        ScaleProfile::Bench => 8,
        ScaleProfile::Full => 12,
    }
}

fn foundation_mixer(p: ScaleProfile, seed: u64) -> Result<Graph> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let (seq, d) = mixer_dims(p);
    let mut b = GraphBuilder::new("foundation_mixer", seed);
    let x = b.input(&[seq, d]);
    // Token-mixing matrices are per-block initializers ("frozen attention"
    // patterns), scaled to keep activations bounded.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let mut cur = x;
    for _ in 0..mixer_depth(p) {
        // Token mixing: ln -> MatMul(M, ·) -> residual.
        let ln1 = b.layer_norm(cur)?;
        let mix = mvtee_tensor::Tensor::random_uniform(&mut rng, &[seq, seq], 1.0 / seq as f32);
        let mv = b.emit_initializer("token_mix", mix);
        let mixed = b.emit("tokmix", crate::Op::MatMul, vec![mv, ln1])?;
        cur = b.add(cur, mixed)?;
        // Channel MLP: ln -> Gemm(4d) -> SiLU -> Gemm(d) -> residual.
        let ln2 = b.layer_norm(cur)?;
        let up = b.gemm(ln2, 4 * d)?;
        let act = b.activation(up, Silu)?;
        let down = b.gemm(act, d)?;
        cur = b.add(cur, down)?;
    }
    let ln_f = b.layer_norm(cur)?;
    // Mean-pool over tokens via a constant [1, seq] matrix, then classify.
    let pool =
        mvtee_tensor::Tensor::full(&[1, seq], 1.0 / seq as f32);
    let pv = b.emit_initializer("mean_pool", pool);
    let pooled = b.emit("pool", crate::Op::MatMul, vec![pv, ln_f])?;
    let logits = b.gemm(pooled, p.classes())?;
    let out = b.softmax(logits)?;
    b.finish(vec![out])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_at_test_scale() {
        for kind in ModelKind::ALL {
            let model = build(kind, ScaleProfile::Test, 7).unwrap();
            model.graph.validate().unwrap();
            assert!(model.graph.node_count() > 30, "{kind} too small");
            assert_eq!(model.graph.inputs().len(), 1, "{kind}");
            assert_eq!(model.graph.outputs().len(), 1, "{kind}");
        }
    }

    #[test]
    fn depth_ordering_matches_architectures() {
        let n = |k| build(k, ScaleProfile::Test, 7).unwrap().graph.node_count();
        assert!(n(ModelKind::ResNet152) > n(ModelKind::ResNet50));
        assert!(n(ModelKind::EfficientNetB7) > n(ModelKind::ResNet50));
        assert!(n(ModelKind::InceptionV3) > n(ModelKind::GoogleNet));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = build(ModelKind::ResNet50, ScaleProfile::Test, 9).unwrap();
        let b = build(ModelKind::ResNet50, ScaleProfile::Test, 9).unwrap();
        assert_eq!(a.graph.nodes(), b.graph.nodes());
        for (x, y) in a.graph.initializers().values().zip(b.graph.initializers().values()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn scale_profile_channels() {
        assert_eq!(ScaleProfile::Full.ch(64), 64);
        assert_eq!(ScaleProfile::Test.ch(64), 8);
        assert!(ScaleProfile::Test.ch(3) >= 4);
        assert_eq!(ScaleProfile::Bench.ch(64), 16);
    }

    #[test]
    fn googlenet_uses_lrn_and_concat() {
        let m = build(ModelKind::GoogleNet, ScaleProfile::Test, 1).unwrap();
        let hist = m.graph.op_histogram();
        assert_eq!(hist.get("LRN"), Some(&2));
        assert_eq!(hist.get("Concat"), Some(&9));
    }

    #[test]
    fn mobilenet_uses_hardswish_and_se() {
        let m = build(ModelKind::MobileNetV3, ScaleProfile::Test, 1).unwrap();
        let hist = m.graph.op_histogram();
        assert!(hist.get("HardSwish").copied().unwrap_or(0) > 5);
        assert!(hist.get("HardSigmoid").copied().unwrap_or(0) >= 8);
        assert!(hist.get("ConvGrouped").copied().unwrap_or(0) >= 15);
    }

    #[test]
    fn efficientnet_b7_depth() {
        let m = build(ModelKind::EfficientNetB7, ScaleProfile::Test, 1).unwrap();
        // 55 MBConv blocks, each with SE — this is by far the deepest model.
        assert!(m.graph.node_count() > 500, "got {}", m.graph.node_count());
        let hist = m.graph.op_histogram();
        assert!(hist.get("Silu").copied().unwrap_or(0) > 100);
    }

    #[test]
    fn bench_scale_builds() {
        let m = build(ModelKind::ResNet50, ScaleProfile::Bench, 3).unwrap();
        m.graph.validate().unwrap();
        assert_eq!(m.input_shape.dims(), &[1, 3, 64, 64]);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::ResNet50.to_string(), "ResNet-50");
        assert_eq!(ModelKind::EfficientNetB7.to_string(), "EfficientNet-b7");
        assert_eq!(ModelKind::FoundationMixer.to_string(), "Foundation-Mixer");
    }

    #[test]
    fn foundation_mixer_builds_and_is_transformer_shaped() {
        let m = build(ModelKind::FoundationMixer, ScaleProfile::Test, 3).unwrap();
        m.graph.validate().unwrap();
        assert_eq!(m.input_shape.dims(), &[16, 32]);
        let hist = m.graph.op_histogram();
        assert!(hist.get("LayerNorm").copied().unwrap_or(0) >= 8);
        assert!(hist.get("MatMul").copied().unwrap_or(0) >= 5);
        assert!(hist.get("Gemm").copied().unwrap_or(0) >= 8);
        assert_eq!(ModelKind::extended().len(), 8);
    }
}
