//! Static shape inference for every operator in the IR.
//!
//! Mirrors the model-inspection module of the paper's offline tool: given
//! graph input shapes, propagates through the DAG and annotates every
//! [`crate::ValueInfo`]. The partitioner uses the inferred boundary shapes
//! to estimate checkpoint payload sizes, and the runtime uses them to
//! pre-validate execution plans.

use crate::{Graph, GraphError, Node, Op, Result};
use mvtee_tensor::Shape;
use std::collections::HashMap;

/// Computes the spatial output size of a conv/pool window.
fn window_out(input: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize> {
    let padded = input + 2 * pad;
    if padded < kernel || stride == 0 {
        return Err(GraphError::ShapeInference {
            node: String::new(),
            reason: format!("window {kernel} does not fit input {input} with pad {pad}"),
        });
    }
    Ok((padded - kernel) / stride + 1)
}

/// Infers the output shape of a single node given its input shapes.
///
/// # Errors
///
/// Returns [`GraphError::ShapeInference`] when shapes are incompatible with
/// the operator's requirements.
pub fn infer_node(node: &Node, input_shapes: &[&Shape]) -> Result<Shape> {
    let fail = |reason: String| GraphError::ShapeInference { node: node.name.clone(), reason };
    let rank4 = |s: &Shape| -> Result<(usize, usize, usize, usize)> {
        s.as_nchw().map_err(|_| fail(format!("expected rank-4 input, got {s}")))
    };
    match &node.op {
        Op::Conv { kernel, stride, padding, groups } => {
            let (n, c, h, w) = rank4(input_shapes[0])?;
            let wt = input_shapes[1];
            if wt.rank() != 4 {
                return Err(fail(format!("conv weight must be rank 4, got {wt}")));
            }
            let (oc, ic_per_group, kh, kw) =
                (wt.dims()[0], wt.dims()[1], wt.dims()[2], wt.dims()[3]);
            if (kh, kw) != *kernel {
                return Err(fail(format!(
                    "kernel attribute {kernel:?} mismatches weight {kh}x{kw}"
                )));
            }
            if *groups == 0 || c % groups != 0 || oc % groups != 0 {
                return Err(fail(format!("groups {groups} incompatible with channels {c}->{oc}")));
            }
            if ic_per_group != c / groups {
                return Err(fail(format!(
                    "weight expects {ic_per_group} channels/group, input has {}",
                    c / groups
                )));
            }
            if let Some(b) = input_shapes.get(2) {
                if b.dims() != [oc] {
                    return Err(fail(format!("bias shape {b} must be [{oc}]")));
                }
            }
            let oh = window_out(h, kernel.0, stride.0, padding.0)
                .map_err(|_| fail(format!("spatial h: {h} k{} s{} p{}", kernel.0, stride.0, padding.0)))?;
            let ow = window_out(w, kernel.1, stride.1, padding.1)
                .map_err(|_| fail(format!("spatial w: {w} k{} s{} p{}", kernel.1, stride.1, padding.1)))?;
            Ok(Shape::new(&[n, oc, oh, ow]))
        }
        Op::Gemm => {
            let x = input_shapes[0];
            let w = input_shapes[1];
            if x.rank() != 2 || w.rank() != 2 {
                return Err(fail(format!("gemm needs rank-2 inputs, got {x} and {w}")));
            }
            let (n, k) = (x.dims()[0], x.dims()[1]);
            let (m, k2) = (w.dims()[0], w.dims()[1]);
            if k != k2 {
                return Err(fail(format!("gemm inner dims differ: {k} vs {k2}")));
            }
            if let Some(b) = input_shapes.get(2) {
                if b.dims() != [m] {
                    return Err(fail(format!("gemm bias shape {b} must be [{m}]")));
                }
            }
            Ok(Shape::new(&[n, m]))
        }
        Op::MatMul => {
            let a = input_shapes[0];
            let b = input_shapes[1];
            if a.rank() != 2 || b.rank() != 2 || a.dims()[1] != b.dims()[0] {
                return Err(fail(format!("matmul shapes incompatible: {a} x {b}")));
            }
            Ok(Shape::new(&[a.dims()[0], b.dims()[1]]))
        }
        Op::BatchNorm { .. } => {
            let (_, c, _, _) = rank4(input_shapes[0])?;
            for (i, s) in input_shapes[1..5].iter().enumerate() {
                if s.dims() != [c] {
                    return Err(fail(format!("bn param {i} shape {s} must be [{c}]")));
                }
            }
            Ok(input_shapes[0].clone())
        }
        Op::Activation(_) | Op::Identity | Op::Lrn { .. } => Ok(input_shapes[0].clone()),
        Op::LayerNorm { .. } => {
            let x = input_shapes[0];
            if x.rank() == 0 {
                return Err(fail("layernorm needs at least rank 1".into()));
            }
            let d = *x.dims().last().expect("rank checked");
            for (i, s) in input_shapes[1..3].iter().enumerate() {
                if s.dims() != [d] {
                    return Err(fail(format!("layernorm param {i} shape {s} must be [{d}]")));
                }
            }
            Ok(x.clone())
        }
        Op::Pool { kernel, stride, padding, .. } => {
            let (n, c, h, w) = rank4(input_shapes[0])?;
            let oh = window_out(h, kernel.0, stride.0, padding.0)
                .map_err(|_| fail(format!("pool h: {h}")))?;
            let ow = window_out(w, kernel.1, stride.1, padding.1)
                .map_err(|_| fail(format!("pool w: {w}")))?;
            Ok(Shape::new(&[n, c, oh, ow]))
        }
        Op::GlobalAvgPool => {
            let (n, c, _, _) = rank4(input_shapes[0])?;
            Ok(Shape::new(&[n, c, 1, 1]))
        }
        Op::Add | Op::Mul => input_shapes[0]
            .broadcast(input_shapes[1])
            .map_err(|e| fail(e.to_string())),
        Op::Concat { axis } => {
            let first = input_shapes[0];
            if *axis >= first.rank() {
                return Err(fail(format!("concat axis {axis} out of range for {first}")));
            }
            let mut out = first.dims().to_vec();
            for s in &input_shapes[1..] {
                if s.rank() != first.rank() {
                    return Err(fail(format!("concat rank mismatch: {first} vs {s}")));
                }
                for (d, (&a, &b)) in first.dims().iter().zip(s.dims()).enumerate() {
                    if d != *axis && a != b {
                        return Err(fail(format!("concat dim {d} mismatch: {a} vs {b}")));
                    }
                }
                out[*axis] += s.dims()[*axis];
            }
            Ok(Shape::new(&out))
        }
        Op::Softmax { axis } => {
            if *axis >= input_shapes[0].rank() {
                return Err(fail(format!("softmax axis {axis} out of range")));
            }
            Ok(input_shapes[0].clone())
        }
        Op::Flatten { axis } => {
            let dims = input_shapes[0].dims();
            if *axis > dims.len() {
                return Err(fail(format!("flatten axis {axis} out of range")));
            }
            let keep: usize = dims[..*axis].iter().product();
            let flat: usize = dims[*axis..].iter().product();
            Ok(Shape::new(&[keep.max(1), flat]))
        }
        Op::Reshape { target } => {
            let n: usize = input_shapes[0].num_elements();
            let m: usize = target.iter().product();
            if n != m {
                return Err(fail(format!("reshape {n} elements into {m}")));
            }
            Ok(Shape::new(target))
        }
    }
}

/// Runs whole-graph shape inference, writing inferred shapes into the
/// graph's value metadata.
///
/// `input_shapes` maps graph-input value ids to concrete shapes.
///
/// # Errors
///
/// Fails when an input shape is missing, the graph is cyclic, or any node's
/// shapes are inconsistent.
pub fn infer_graph(graph: &mut Graph, input_shapes: &HashMap<crate::ValueId, Shape>) -> Result<()> {
    let mut known: HashMap<crate::ValueId, Shape> = HashMap::new();
    for &inp in graph.inputs() {
        let shape = input_shapes.get(&inp).ok_or_else(|| {
            GraphError::InvalidInterface(format!("no shape supplied for input {}", inp.0))
        })?;
        known.insert(inp, shape.clone());
    }
    for (&v, t) in graph.initializers() {
        known.insert(v, t.shape().clone());
    }
    let order = graph.topological_order()?;
    for nid in order {
        let node = graph.node(nid)?.clone();
        let mut shapes: Vec<&Shape> = Vec::with_capacity(node.inputs.len());
        for inp in &node.inputs {
            shapes.push(known.get(inp).ok_or_else(|| GraphError::ShapeInference {
                node: node.name.clone(),
                reason: format!("input {} shape unknown", inp.0),
            })?);
        }
        let out_shape = infer_node(&node, &shapes)?;
        for &out in &node.outputs {
            known.insert(out, out_shape.clone());
        }
    }
    for (v, s) in known {
        graph.value_mut(v)?.shape = Some(s);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ActivationKind, PoolKind};
    use crate::{Graph, Op};
    use mvtee_tensor::Tensor;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims)
    }

    fn node_with(op: Op, n_inputs: usize) -> Node {
        Node {
            id: crate::NodeId(0),
            name: "t".into(),
            op,
            inputs: (0..n_inputs).map(crate::ValueId).collect(),
            outputs: vec![crate::ValueId(99)],
        }
    }

    #[test]
    fn conv_shapes() {
        let op = Op::Conv { kernel: (3, 3), stride: (2, 2), padding: (1, 1), groups: 1 };
        let n = node_with(op, 2);
        let x = shape(&[1, 3, 224, 224]);
        let w = shape(&[64, 3, 3, 3]);
        let out = infer_node(&n, &[&x, &w]).unwrap();
        assert_eq!(out.dims(), &[1, 64, 112, 112]);
    }

    #[test]
    fn depthwise_conv_shapes() {
        let op = Op::Conv { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 32 };
        let n = node_with(op, 2);
        let x = shape(&[1, 32, 56, 56]);
        let w = shape(&[32, 1, 3, 3]);
        let out = infer_node(&n, &[&x, &w]).unwrap();
        assert_eq!(out.dims(), &[1, 32, 56, 56]);
    }

    #[test]
    fn conv_rejects_bad_weight() {
        let op = Op::Conv { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 1 };
        let n = node_with(op, 2);
        let x = shape(&[1, 3, 8, 8]);
        let w = shape(&[64, 4, 3, 3]); // expects 4 in-channels, input has 3
        assert!(infer_node(&n, &[&x, &w]).is_err());
    }

    #[test]
    fn conv_rejects_kernel_attr_mismatch() {
        let op = Op::Conv { kernel: (5, 5), stride: (1, 1), padding: (0, 0), groups: 1 };
        let n = node_with(op, 2);
        let x = shape(&[1, 3, 8, 8]);
        let w = shape(&[8, 3, 3, 3]);
        assert!(infer_node(&n, &[&x, &w]).is_err());
    }

    #[test]
    fn gemm_and_matmul() {
        let n = node_with(Op::Gemm, 3);
        let x = shape(&[2, 512]);
        let w = shape(&[1000, 512]);
        let b = shape(&[1000]);
        assert_eq!(infer_node(&n, &[&x, &w, &b]).unwrap().dims(), &[2, 1000]);

        let m = node_with(Op::MatMul, 2);
        let a = shape(&[3, 4]);
        let c = shape(&[4, 5]);
        assert_eq!(infer_node(&m, &[&a, &c]).unwrap().dims(), &[3, 5]);
        assert!(infer_node(&m, &[&a, &shape(&[3, 5])]).is_err());
    }

    #[test]
    fn pool_shapes() {
        let op = Op::Pool { kind: PoolKind::Max, kernel: (3, 3), stride: (2, 2), padding: (1, 1) };
        let n = node_with(op, 1);
        let x = shape(&[1, 64, 112, 112]);
        assert_eq!(infer_node(&n, &[&x]).unwrap().dims(), &[1, 64, 56, 56]);
    }

    #[test]
    fn global_avg_pool() {
        let n = node_with(Op::GlobalAvgPool, 1);
        let x = shape(&[2, 128, 7, 7]);
        assert_eq!(infer_node(&n, &[&x]).unwrap().dims(), &[2, 128, 1, 1]);
    }

    #[test]
    fn batchnorm_validates_params() {
        let n = node_with(Op::BatchNorm { epsilon: 1e-5 }, 5);
        let x = shape(&[1, 16, 8, 8]);
        let p = shape(&[16]);
        assert_eq!(
            infer_node(&n, &[&x, &p, &p, &p, &p]).unwrap().dims(),
            &[1, 16, 8, 8]
        );
        let bad = shape(&[8]);
        assert!(infer_node(&n, &[&x, &p, &p, &bad, &p]).is_err());
    }

    #[test]
    fn concat_shapes() {
        let n = node_with(Op::Concat { axis: 1 }, 3);
        let a = shape(&[1, 64, 28, 28]);
        let b = shape(&[1, 96, 28, 28]);
        let c = shape(&[1, 32, 28, 28]);
        assert_eq!(infer_node(&n, &[&a, &b, &c]).unwrap().dims(), &[1, 192, 28, 28]);
        let bad = shape(&[1, 64, 14, 14]);
        assert!(infer_node(&n, &[&a, &bad]).is_err());
    }

    #[test]
    fn flatten_and_reshape() {
        let n = node_with(Op::Flatten { axis: 1 }, 1);
        let x = shape(&[2, 128, 7, 7]);
        assert_eq!(infer_node(&n, &[&x]).unwrap().dims(), &[2, 128 * 49]);

        let r = node_with(Op::Reshape { target: vec![2, 49, 128] }, 1);
        assert_eq!(infer_node(&r, &[&x]).unwrap().dims(), &[2, 49, 128]);
        let bad = node_with(Op::Reshape { target: vec![7] }, 1);
        assert!(infer_node(&bad, &[&x]).is_err());
    }

    #[test]
    fn add_broadcasts() {
        let n = node_with(Op::Add, 2);
        let a = shape(&[1, 16, 8, 8]);
        let b = shape(&[16, 1, 1]);
        assert_eq!(infer_node(&n, &[&a, &b]).unwrap().dims(), &[1, 16, 8, 8]);
    }

    #[test]
    fn whole_graph_inference() {
        let mut g = Graph::new("t");
        let x = g.add_value("x");
        let w = g.add_value("w");
        let c1 = g.add_value("c1");
        let r1 = g.add_value("r1");
        let p1 = g.add_value("p1");
        g.mark_input(x);
        g.set_initializer(w, Tensor::zeros(&[8, 3, 3, 3]));
        g.add_node(
            "conv",
            Op::Conv { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 1 },
            vec![x, w],
            vec![c1],
        )
        .unwrap();
        g.add_node("relu", Op::Activation(ActivationKind::Relu), vec![c1], vec![r1]).unwrap();
        g.add_node("gap", Op::GlobalAvgPool, vec![r1], vec![p1]).unwrap();
        g.mark_output(p1);

        let mut shapes = HashMap::new();
        shapes.insert(x, Shape::new(&[1, 3, 16, 16]));
        infer_graph(&mut g, &shapes).unwrap();
        assert_eq!(g.value(p1).unwrap().shape.as_ref().unwrap().dims(), &[1, 8, 1, 1]);
        assert_eq!(g.value(c1).unwrap().shape.as_ref().unwrap().dims(), &[1, 8, 16, 16]);
    }

    #[test]
    fn whole_graph_requires_input_shapes() {
        let mut g = Graph::new("t");
        let x = g.add_value("x");
        let y = g.add_value("y");
        g.mark_input(x);
        g.add_node("id", Op::Identity, vec![x], vec![y]).unwrap();
        g.mark_output(y);
        assert!(infer_graph(&mut g, &HashMap::new()).is_err());
    }

    #[test]
    fn window_out_edge_cases() {
        assert_eq!(window_out(224, 7, 2, 3).unwrap(), 112);
        assert_eq!(window_out(4, 4, 1, 0).unwrap(), 1);
        assert!(window_out(3, 4, 1, 0).is_err());
        assert!(window_out(8, 2, 0, 0).is_err());
    }
}
