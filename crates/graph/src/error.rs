use std::fmt;

/// Errors produced by graph construction, validation and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node referenced a value id that does not exist in the graph.
    UnknownValue {
        /// The offending value id (raw index).
        value: usize,
    },
    /// A node id was out of range.
    UnknownNode {
        /// The offending node id (raw index).
        node: usize,
    },
    /// A value is produced by more than one node (violates SSA form).
    MultipleProducers {
        /// The multiply-produced value id (raw index).
        value: usize,
    },
    /// The graph contains a cycle.
    CyclicGraph,
    /// An operator received the wrong number of inputs.
    ArityMismatch {
        /// Operator name.
        op: String,
        /// Expected input count.
        expected: usize,
        /// Actual input count.
        actual: usize,
    },
    /// Shape inference failed for a node.
    ShapeInference {
        /// Node name.
        node: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A graph input/output list was inconsistent.
    InvalidInterface(String),
    /// A required initializer (weight tensor) is missing.
    MissingInitializer {
        /// The value id whose initializer is absent (raw index).
        value: usize,
    },
    /// A subgraph request was not convex / self-contained.
    InvalidSubgraph(String),
    /// Deserialization failed.
    Deserialize(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownValue { value } => write!(f, "unknown value id {value}"),
            GraphError::UnknownNode { node } => write!(f, "unknown node id {node}"),
            GraphError::MultipleProducers { value } => {
                write!(f, "value {value} has multiple producers")
            }
            GraphError::CyclicGraph => write!(f, "graph contains a cycle"),
            GraphError::ArityMismatch { op, expected, actual } => {
                write!(f, "operator {op} expects {expected} inputs, got {actual}")
            }
            GraphError::ShapeInference { node, reason } => {
                write!(f, "shape inference failed at node {node}: {reason}")
            }
            GraphError::InvalidInterface(why) => write!(f, "invalid graph interface: {why}"),
            GraphError::MissingInitializer { value } => {
                write!(f, "missing initializer for value {value}")
            }
            GraphError::InvalidSubgraph(why) => write!(f, "invalid subgraph: {why}"),
            GraphError::Deserialize(why) => write!(f, "deserialization failed: {why}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            GraphError::UnknownValue { value: 1 },
            GraphError::UnknownNode { node: 2 },
            GraphError::MultipleProducers { value: 3 },
            GraphError::CyclicGraph,
            GraphError::ArityMismatch { op: "Conv".into(), expected: 2, actual: 1 },
            GraphError::ShapeInference { node: "n".into(), reason: "r".into() },
            GraphError::InvalidInterface("x".into()),
            GraphError::MissingInitializer { value: 4 },
            GraphError::InvalidSubgraph("y".into()),
            GraphError::Deserialize("z".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
