//! Variant specifications: one point in the full multi-level
//! diversification space.

use crate::TransformKind;
use mvtee_runtime::{Accumulation, BlasKind, ConvStrategy, EngineConfig, EngineKind, KernelStrategy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which (simulated) TEE hardware backs a variant — the paper's TEE-level
/// diversification ("we also support execution in SGX and TDX, providing
/// TEE-level variants").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TeeBackend {
    /// Process-based enclave (Intel SGX style).
    Sgx,
    /// VM-based trust domain (Intel TDX style).
    Tdx,
}

impl fmt::Display for TeeBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeBackend::Sgx => write!(f, "sgx"),
            TeeBackend::Tdx => write!(f, "tdx"),
        }
    }
}

/// Globally unique identifier of a variant within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VariantId(pub u64);

impl fmt::Display for VariantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "variant-{}", self.0)
    }
}

/// A complete variant description: graph-level transforms + inference
/// instance configuration + system-level knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantSpec {
    /// Unique id.
    pub id: VariantId,
    /// Graph-level transforms applied to the partition subgraph, in order.
    pub transforms: Vec<TransformKind>,
    /// Randomness seed for the transforms.
    pub transform_seed: u64,
    /// Inference-instance configuration (runtime family, BLAS, schedule).
    pub engine: EngineConfig,
    /// Simulated TEE backend.
    pub tee: TeeBackend,
    /// ASLR seed (system-level diversification; randomises the simulated
    /// address layout the CVE injectors key on).
    pub aslr_seed: u64,
    /// Compiler-assisted hardening applied to this variant (sanitizers,
    /// stack protection, bounds checks) — modelled as named capabilities
    /// the fault injectors consult.
    pub hardening: Vec<String>,
}

impl VariantSpec {
    /// A plain replicated variant: no transforms, the given engine family,
    /// SGX backend. Used for the paper's fundamental-performance
    /// experiments which replicate identical ORT variants.
    pub fn replicated(id: u64, kind: EngineKind) -> Self {
        VariantSpec {
            id: VariantId(id),
            transforms: Vec::new(),
            transform_seed: 0,
            engine: EngineConfig::of_kind(kind),
            tee: TeeBackend::Sgx,
            aslr_seed: 0,
            hardening: Vec::new(),
        }
    }

    /// Short description, e.g. `variant-3 [ort-like/blocked-blas/im2col/opt, sgx]`.
    pub fn describe(&self) -> String {
        let transforms = if self.transforms.is_empty() {
            "none".to_string()
        } else {
            self.transforms.iter().map(|t| t.to_string()).collect::<Vec<_>>().join("+")
        };
        format!(
            "{} [{}, {}, transforms: {}]",
            self.id,
            self.engine.describe(),
            self.tee,
            transforms
        )
    }

    /// A coarse diversity distance in `[0, 1]` between two specs: counts
    /// differing diversification axes (engine family, BLAS, conv strategy,
    /// accumulation, optimisation, TEE, transform set).
    pub fn diversity_distance(&self, other: &VariantSpec) -> f64 {
        let mut differing = 0usize;
        const AXES: usize = 8;
        if self.engine.kind != other.engine.kind {
            differing += 1;
        }
        if self.engine.blas != other.engine.blas {
            differing += 1;
        }
        if self.engine.conv_strategy != other.engine.conv_strategy {
            differing += 1;
        }
        if self.engine.accumulation != other.engine.accumulation {
            differing += 1;
        }
        if self.engine.optimize != other.engine.optimize {
            differing += 1;
        }
        if self.engine.kernel_strategy != other.engine.kernel_strategy {
            differing += 1;
        }
        if self.tee != other.tee {
            differing += 1;
        }
        let ta: std::collections::BTreeSet<_> = self.transforms.iter().collect();
        let tb: std::collections::BTreeSet<_> = other.transforms.iter().collect();
        if ta != tb {
            differing += 1;
        }
        differing as f64 / AXES as f64
    }

    /// Whether this spec includes a named hardening capability (consulted
    /// by the CVE-class fault injectors: e.g. a variant with
    /// `"bounds-check"` is immune to OOB-class exploits).
    pub fn has_hardening(&self, name: &str) -> bool {
        self.hardening.iter().any(|h| h == name)
    }
}

/// Generates `n` maximally spread specs across the diversification axes.
///
/// Axis assignment is round-robin over engine families, BLAS backends,
/// accumulation orders and TEE backends, with per-variant transform lists
/// drawn deterministically from `seed` — an automatic analogue of the
/// paper's configuration-driven variant construction.
pub fn spread_specs(n: usize, seed: u64) -> Vec<VariantSpec> {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let engine_kinds = [EngineKind::OrtLike, EngineKind::TvmLike, EngineKind::Reference];
    let blas_kinds = BlasKind::ALL;
    let tees = [TeeBackend::Sgx, TeeBackend::Tdx];
    let hardenings: [&[&str]; 4] = [
        &[],
        &["bounds-check"],
        &["sanitizer-address", "stack-protect"],
        &["error-handling", "bounds-check"],
    ];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64 * 0x9e37));
        let kind = engine_kinds[i % engine_kinds.len()];
        let mut engine = EngineConfig::of_kind(kind).with_blas(blas_kinds[i % blas_kinds.len()]);
        if i % 2 == 1 {
            engine.accumulation = Accumulation::Tree;
        }
        if i % 5 == 4 {
            engine.conv_strategy = ConvStrategy::Direct;
        }
        // Kernel strategy is the 8th axis: cycle Auto (per-shape table)
        // with the three pinned kernels. Decorrelated from the i%3 engine
        // family cycle by the modulus.
        engine.kernel_strategy = [
            KernelStrategy::Auto,
            KernelStrategy::SimdMicrokernel,
            KernelStrategy::Scalar,
            KernelStrategy::PanelPacked,
        ][i % 4];
        let mut transforms: Vec<TransformKind> = TransformKind::ALL.to_vec();
        transforms.shuffle(&mut rng);
        transforms.truncate(1 + i % 3);
        out.push(VariantSpec {
            id: VariantId(i as u64),
            transforms,
            transform_seed: seed.wrapping_add(i as u64),
            engine,
            tee: tees[i % tees.len()],
            aslr_seed: seed.rotate_left(i as u32 % 63).wrapping_add(i as u64),
            hardening: hardenings[i % hardenings.len()].iter().map(|s| s.to_string()).collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_spec_has_no_transforms() {
        let s = VariantSpec::replicated(1, EngineKind::OrtLike);
        assert!(s.transforms.is_empty());
        assert_eq!(s.engine.kind, EngineKind::OrtLike);
        assert_eq!(s.diversity_distance(&VariantSpec::replicated(2, EngineKind::OrtLike)), 0.0);
    }

    #[test]
    fn spread_specs_are_diverse() {
        let specs = spread_specs(6, 3);
        assert_eq!(specs.len(), 6);
        // Adjacent specs must differ on several axes.
        for pair in specs.windows(2) {
            assert!(pair[0].diversity_distance(&pair[1]) > 0.2);
        }
        // All ids unique.
        let ids: std::collections::HashSet<_> = specs.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn spread_specs_deterministic() {
        assert_eq!(spread_specs(4, 7), spread_specs(4, 7));
        assert_ne!(spread_specs(4, 7), spread_specs(4, 8));
    }

    #[test]
    fn describe_mentions_engine_and_tee() {
        let s = &spread_specs(2, 1)[1];
        let d = s.describe();
        assert!(d.contains("variant-1"));
        assert!(d.contains("sgx") || d.contains("tdx"));
    }

    #[test]
    fn hardening_lookup() {
        let mut s = VariantSpec::replicated(0, EngineKind::Reference);
        s.hardening.push("bounds-check".into());
        assert!(s.has_hardening("bounds-check"));
        assert!(!s.has_hardening("sanitizer-address"));
    }

    #[test]
    fn diversity_distance_bounds() {
        let specs = spread_specs(10, 5);
        for a in &specs {
            for b in &specs {
                let d = a.diversity_distance(b);
                assert!((0.0..=1.0).contains(&d));
                assert_eq!(d, b.diversity_distance(a));
            }
            assert_eq!(a.diversity_distance(a), 0.0);
        }
    }
}
