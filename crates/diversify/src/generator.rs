//! Variant materialisation and the pre-established variant pool.
//!
//! The offline tool of §5.1 produces, for every partition of every
//! partition set, a collection of encrypted variant bundles. Here a
//! [`VariantBundle`] is the plaintext artifact (spec + transformed
//! subgraph); the TEE substrate seals it with the variant-specific key when
//! the pool is deployed (see `mvtee-tee`).

use crate::spec::{spread_specs, VariantSpec};
use crate::transforms::apply_all;
use crate::Result;
use mvtee_graph::Graph;
use mvtee_partition::PartitionSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A materialised variant: the spec plus the transformed partition
/// subgraph it executes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantBundle {
    /// The variant's full specification.
    pub spec: VariantSpec,
    /// Partition index this bundle belongs to.
    pub partition: usize,
    /// The (diversified) subgraph to execute.
    pub graph: Graph,
}

impl VariantBundle {
    /// Serialises the bundle for sealing into the encrypted variant store.
    ///
    /// Format: a stable, versioned, self-describing byte layout produced by
    /// `serde` + a compact internal encoding (JSON is avoided to keep the
    /// dependency set minimal; the encoding is private to MVTEE).
    pub fn to_bytes(&self) -> Vec<u8> {
        // A tiny self-framing encoding: spec (postcard-style manual) would
        // be overkill; we reuse serde's derived Debug-stable structure via
        // bincode-like packing is unavailable, so we serialise through the
        // graph/tensor binary helpers plus a JSON-ish spec header encoded
        // manually. Simplest robust approach within the approved
        // dependency set: serde + std fmt is not machine-readable, so we
        // use a length-prefixed custom writer.
        encode::bundle(self)
    }

    /// Deserialises a bundle produced by [`VariantBundle::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a graph deserialisation error for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        encode::bundle_from(bytes)
    }
}

/// Binary encoding for bundles (length-prefixed sections).
mod encode {
    use super::*;
    use crate::DiversifyError;

    fn put_section(out: &mut Vec<u8>, bytes: &[u8]) {
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(bytes);
    }

    fn get_section<'a>(bytes: &mut &'a [u8]) -> Option<&'a [u8]> {
        if bytes.len() < 8 {
            return None;
        }
        let len = u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize;
        if bytes.len() < 8 + len {
            return None;
        }
        let (section, rest) = bytes[8..].split_at(len);
        *bytes = rest;
        Some(section)
    }

    pub fn bundle(b: &VariantBundle) -> Vec<u8> {
        let spec = serde_encode(&b.spec);
        let graph = serde_encode(&b.graph);
        let mut out = Vec::with_capacity(spec.len() + graph.len() + 32);
        out.extend_from_slice(b"MVTB1\0");
        out.extend_from_slice(&(b.partition as u64).to_le_bytes());
        put_section(&mut out, &spec);
        put_section(&mut out, &graph);
        out
    }

    pub fn bundle_from(mut bytes: &[u8]) -> Result<VariantBundle> {
        let fail = || DiversifyError::Graph(mvtee_graph::GraphError::Deserialize(
            "malformed variant bundle".into(),
        ));
        if bytes.len() < 14 || &bytes[..6] != b"MVTB1\0" {
            return Err(fail());
        }
        let partition =
            u64::from_le_bytes(bytes[6..14].try_into().map_err(|_| fail())?) as usize;
        bytes = &bytes[14..];
        let spec_bytes = get_section(&mut bytes).ok_or_else(fail)?;
        let graph_bytes = get_section(&mut bytes).ok_or_else(fail)?;
        let spec: VariantSpec = serde_decode(spec_bytes).ok_or_else(fail)?;
        let graph: Graph = serde_decode(graph_bytes).ok_or_else(fail)?;
        Ok(VariantBundle { spec, partition, graph })
    }

    /// serde encoding via the `serde_json`-free route: we use the
    /// `postcard`-style approach of serde's `Serialize` into a compact
    /// self-made format. To stay within the approved dependency list we
    /// piggyback on `serde`'s derive through an in-crate minimal writer.
    fn serde_encode<T: Serialize>(value: &T) -> Vec<u8> {
        mvtee_codec::to_bytes(value).expect("in-memory encoding cannot fail")
    }

    fn serde_decode<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Option<T> {
        mvtee_codec::from_bytes(bytes).ok()
    }
}

/// Generates variant bundles for partitions.
#[derive(Debug, Clone)]
pub struct VariantGenerator {
    seed: u64,
}

impl VariantGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        VariantGenerator { seed }
    }

    /// Materialises `spec` against one partition subgraph.
    ///
    /// # Errors
    ///
    /// Propagates transform failures.
    pub fn materialize(
        &self,
        subgraph: &Graph,
        partition: usize,
        spec: &VariantSpec,
    ) -> Result<VariantBundle> {
        let graph = apply_all(subgraph, &spec.transforms, spec.transform_seed)?;
        Ok(VariantBundle { spec: spec.clone(), partition, graph })
    }

    /// Builds a full [`VariantPool`] for a partition set: `variants_per_partition`
    /// diversified bundles for every stage.
    ///
    /// # Errors
    ///
    /// Propagates extraction and transform failures.
    pub fn build_pool(
        &self,
        model: &Graph,
        set: &PartitionSet,
        variants_per_partition: usize,
    ) -> Result<VariantPool> {
        let subgraphs = set
            .extract_subgraphs(model)
            .map_err(|e| crate::DiversifyError::Runtime(e.to_string()))?;
        let mut entries = BTreeMap::new();
        for (pi, sub) in subgraphs.iter().enumerate() {
            let specs = spread_specs(
                variants_per_partition,
                self.seed.wrapping_add(pi as u64 * 0xABCD),
            );
            let mut bundles = Vec::with_capacity(specs.len());
            for (vi, mut spec) in specs.into_iter().enumerate() {
                spec.id = crate::VariantId((pi * 1000 + vi) as u64);
                bundles.push(self.materialize(sub, pi, &spec)?);
            }
            entries.insert(pi, bundles);
        }
        Ok(VariantPool { model: model.name.clone(), partitions: set.len(), entries })
    }
}

/// The pre-established pool of inference variants for one partition set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantPool {
    /// Model name.
    pub model: String,
    /// Number of partitions in the backing set.
    pub partitions: usize,
    entries: BTreeMap<usize, Vec<VariantBundle>>,
}

impl VariantPool {
    /// Bundles for one partition.
    pub fn bundles(&self, partition: usize) -> &[VariantBundle] {
        self.entries.get(&partition).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Looks up one bundle.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DiversifyError::UnknownVariant`] when absent.
    pub fn bundle(&self, partition: usize, variant: usize) -> Result<&VariantBundle> {
        self.entries
            .get(&partition)
            .and_then(|v| v.get(variant))
            .ok_or(crate::DiversifyError::UnknownVariant { partition, variant })
    }

    /// Total number of bundles in the pool.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// `true` when the pool holds no bundles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_partition::slice_by_boundaries;
    use mvtee_runtime::Engine;
    use mvtee_tensor::{metrics, Tensor};

    fn model_and_set() -> (mvtee_graph::zoo::Model, PartitionSet) {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 13).unwrap();
        let set = slice_by_boundaries(&m.graph, &[40, 80]).unwrap();
        (m, set)
    }

    #[test]
    fn pool_builds_bundles_for_every_partition() {
        let (m, set) = model_and_set();
        let pool = VariantGenerator::new(1).build_pool(&m.graph, &set, 3).unwrap();
        assert_eq!(pool.len(), 9);
        for pi in 0..3 {
            assert_eq!(pool.bundles(pi).len(), 3);
        }
        assert!(pool.bundle(0, 0).is_ok());
        assert!(pool.bundle(0, 9).is_err());
        assert!(pool.bundle(7, 0).is_err());
    }

    #[test]
    fn bundle_variants_are_equivalent_per_partition() {
        let (m, set) = model_and_set();
        let subs = set.extract_subgraphs(&m.graph).unwrap();
        let pool = VariantGenerator::new(5).build_pool(&m.graph, &set, 3).unwrap();
        // Execute partition 0's variants on the same input and compare.
        let sub = &subs[0];
        let input_shape = sub
            .value(sub.inputs()[0])
            .unwrap()
            .shape
            .clone()
            .expect("shape inferred");
        let n: usize = input_shape.num_elements();
        let input = Tensor::from_vec(
            (0..n).map(|i| ((i % 53) as f32 - 26.0) / 26.0).collect(),
            input_shape.dims(),
        )
        .unwrap();
        let mut outputs = Vec::new();
        for b in pool.bundles(0) {
            let engine = Engine::new(b.spec.engine.clone());
            let p = engine.prepare(&b.graph).unwrap();
            outputs.push(p.run(std::slice::from_ref(&input)).unwrap().remove(0));
        }
        for pair in outputs.windows(2) {
            assert!(
                metrics::allclose(&pair[0], &pair[1], 1e-3, 1e-4),
                "variants diverged: {}",
                metrics::max_abs_diff(&pair[0], &pair[1])
            );
        }
    }

    #[test]
    fn bundle_round_trips_through_bytes() {
        let (m, set) = model_and_set();
        let pool = VariantGenerator::new(2).build_pool(&m.graph, &set, 2).unwrap();
        let bundle = pool.bundle(1, 1).unwrap();
        let bytes = bundle.to_bytes();
        let back = VariantBundle::from_bytes(&bytes).unwrap();
        assert_eq!(back.spec, bundle.spec);
        assert_eq!(back.partition, bundle.partition);
        assert_eq!(back.graph.node_count(), bundle.graph.node_count());
        assert_eq!(back.graph.initializers().len(), bundle.graph.initializers().len());
    }

    #[test]
    fn bundle_rejects_garbage() {
        assert!(VariantBundle::from_bytes(b"not a bundle").is_err());
        assert!(VariantBundle::from_bytes(b"").is_err());
        let (m, set) = model_and_set();
        let pool = VariantGenerator::new(2).build_pool(&m.graph, &set, 1).unwrap();
        let mut bytes = pool.bundle(0, 0).unwrap().to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(VariantBundle::from_bytes(&bytes).is_err());
    }

    #[test]
    fn generator_is_deterministic() {
        let (m, set) = model_and_set();
        let a = VariantGenerator::new(9).build_pool(&m.graph, &set, 2).unwrap();
        let b = VariantGenerator::new(9).build_pool(&m.graph, &set, 2).unwrap();
        assert_eq!(
            a.bundle(0, 0).unwrap().to_bytes(),
            b.bundle(0, 0).unwrap().to_bytes()
        );
    }
}
