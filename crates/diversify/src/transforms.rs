//! Model-graph-level diversification: semantic-preserving rewrites.
//!
//! Every transform takes a graph and returns a functionally equivalent
//! graph whose structure (and hence vulnerability/fault surface) differs.
//! The paper's §4.2 lists the families implemented here; the tests verify
//! equivalence against the reference executor within FP tolerance.

use crate::{DiversifyError, Result};
use mvtee_graph::op::ActivationKind;
use mvtee_graph::{Graph, Op, ValueId};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The graph-level transform families of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TransformKind {
    /// Insert identity operators on random edges (dummy operators).
    DummyIdentity,
    /// Insert `Add 0` / `Mul 1` dummy arithmetic on random edges.
    DummyArithmetic,
    /// Replace `Gemm` with `MatMul + Add` (operator decomposition).
    DecomposeGemm,
    /// Replace `Relu` with `(x + |x|) · 0.5` (operator decomposition).
    DecomposeRelu,
    /// Shuffle conv output channels with compensating permutations
    /// downstream (channel manipulation).
    ChannelShuffle,
    /// Apply the BN-folding optimisation pass selectively (selective
    /// optimisation as a defense).
    SelectiveOptimize,
    /// Swap the operands of commutative `Add`/`Mul` nodes (mathematical
    /// property-based rewriting).
    CommutativeReorder,
}

impl TransformKind {
    /// All transforms.
    pub const ALL: [TransformKind; 7] = [
        TransformKind::DummyIdentity,
        TransformKind::DummyArithmetic,
        TransformKind::DecomposeGemm,
        TransformKind::DecomposeRelu,
        TransformKind::ChannelShuffle,
        TransformKind::SelectiveOptimize,
        TransformKind::CommutativeReorder,
    ];

    /// Applies the transform with the given randomness seed.
    ///
    /// Transforms are best-effort: when a pattern does not occur in the
    /// graph the input is returned unchanged (never an error), so specs can
    /// apply any transform list to any partition.
    ///
    /// # Errors
    ///
    /// Only structural failures (graph invariants broken by a bug) error.
    pub fn apply(self, graph: &Graph, seed: u64) -> Result<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            TransformKind::DummyIdentity => insert_dummy_identities(graph, &mut rng, 3),
            TransformKind::DummyArithmetic => insert_dummy_arithmetic(graph, &mut rng, 3),
            TransformKind::DecomposeGemm => decompose_gemm(graph),
            TransformKind::DecomposeRelu => decompose_relu(graph, &mut rng, 4),
            TransformKind::ChannelShuffle => channel_shuffle(graph, &mut rng, 2),
            TransformKind::SelectiveOptimize => selective_optimize(graph, &mut rng),
            TransformKind::CommutativeReorder => commutative_reorder(graph, &mut rng),
        }
    }
}

impl fmt::Display for TransformKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TransformKind::DummyIdentity => "dummy-identity",
            TransformKind::DummyArithmetic => "dummy-arithmetic",
            TransformKind::DecomposeGemm => "decompose-gemm",
            TransformKind::DecomposeRelu => "decompose-relu",
            TransformKind::ChannelShuffle => "channel-shuffle",
            TransformKind::SelectiveOptimize => "selective-optimize",
            TransformKind::CommutativeReorder => "commutative-reorder",
        };
        write!(f, "{name}")
    }
}

/// Applies a sequence of transforms.
///
/// # Errors
///
/// Propagates the first transform failure.
pub fn apply_all(graph: &Graph, transforms: &[TransformKind], seed: u64) -> Result<Graph> {
    let mut g = graph.clone();
    for (i, t) in transforms.iter().enumerate() {
        g = t.apply(&g, seed.wrapping_add(i as u64 * 0x51_7c_c1))?;
    }
    Ok(g)
}

/// Candidate rewiring points: (consumer node index, input slot) pairs for
/// non-initializer values.
fn edge_slots(graph: &Graph) -> Vec<(usize, usize)> {
    let mut slots = Vec::new();
    for (ni, node) in graph.nodes().iter().enumerate() {
        for (si, v) in node.inputs.iter().enumerate() {
            if graph.initializer(*v).is_none() {
                slots.push((ni, si));
            }
        }
    }
    slots
}

/// Inserts `count` Identity nodes on random edges.
fn insert_dummy_identities(graph: &Graph, rng: &mut StdRng, count: usize) -> Result<Graph> {
    let mut g = graph.clone();
    let mut slots = edge_slots(&g);
    slots.shuffle(rng);
    for (k, &(ni, si)) in slots.iter().take(count).enumerate() {
        let orig = g.nodes()[ni].inputs[si];
        let shape = graph.value(orig).ok().and_then(|i| i.shape.clone());
        let nv = g.add_value(format!("dummy_id_val_{k}"));
        if let Some(s) = shape {
            g.value_mut(nv)?.shape = Some(s);
        }
        g.add_node(format!("dummy_id_{k}"), Op::Identity, vec![orig], vec![nv])?;
        g.node_mut(mvtee_graph::NodeId(ni))?.inputs[si] = nv;
    }
    g.validate()?;
    Ok(g)
}

/// Inserts `Add 0` or `Mul 1` dummy nodes on random edges.
fn insert_dummy_arithmetic(graph: &Graph, rng: &mut StdRng, count: usize) -> Result<Graph> {
    let mut g = graph.clone();
    let mut slots = edge_slots(&g);
    slots.shuffle(rng);
    for (k, &(ni, si)) in slots.iter().take(count).enumerate() {
        let orig = g.nodes()[ni].inputs[si];
        let shape = graph.value(orig).ok().and_then(|i| i.shape.clone());
        let use_add = rng.gen_bool(0.5);
        let cv = g.add_value(format!("dummy_const_{k}"));
        g.set_initializer(cv, Tensor::scalar(if use_add { 0.0 } else { 1.0 }));
        let nv = g.add_value(format!("dummy_arith_val_{k}"));
        if let Some(s) = shape {
            g.value_mut(nv)?.shape = Some(s);
        }
        let op = if use_add { Op::Add } else { Op::Mul };
        g.add_node(format!("dummy_arith_{k}"), op, vec![orig, cv], vec![nv])?;
        g.node_mut(mvtee_graph::NodeId(ni))?.inputs[si] = nv;
    }
    g.validate()?;
    Ok(g)
}

/// Replaces every `Gemm` with `MatMul(x, wᵀ)` followed by `Add` bias.
fn decompose_gemm(graph: &Graph) -> Result<Graph> {
    let mut g = graph.clone();
    let gemm_ids: Vec<usize> = g
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.op, Op::Gemm) && n.inputs.len() == 3)
        .map(|(i, _)| i)
        .collect();
    for (k, ni) in gemm_ids.into_iter().enumerate() {
        let node = g.node(mvtee_graph::NodeId(ni))?.clone();
        let (x, w, b) = (node.inputs[0], node.inputs[1], node.inputs[2]);
        let Some(wt) = g.initializer(w) else {
            continue; // non-initializer weights can't be transposed offline
        };
        // Transpose [out, in] -> [in, out].
        let (o, i) = (wt.dims()[0], wt.dims()[1]);
        let src = wt.data().to_vec();
        let mut t = vec![0.0f32; o * i];
        for r in 0..o {
            for c in 0..i {
                t[c * o + r] = src[r * i + c];
            }
        }
        let wt_v = g.add_value(format!("gemm_wt_{k}"));
        g.set_initializer(wt_v, Tensor::from_vec(t, &[i, o]).expect("transposed weight"));
        let mm_v = g.add_value(format!("gemm_mm_{k}"));
        g.add_node(format!("gemm_decomp_mm_{k}"), Op::MatMul, vec![x, wt_v], vec![mm_v])?;
        // The original node becomes the bias Add, keeping its output id.
        let node = g.node_mut(mvtee_graph::NodeId(ni))?;
        node.op = Op::Add;
        node.inputs = vec![mm_v, b];
    }
    g.validate()?;
    Ok(g)
}

/// Replaces up to `count` random `Relu` nodes with `(x + |x|) · 0.5`.
fn decompose_relu(graph: &Graph, rng: &mut StdRng, count: usize) -> Result<Graph> {
    let mut g = graph.clone();
    let mut relu_ids: Vec<usize> = g
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.op, Op::Activation(ActivationKind::Relu)))
        .map(|(i, _)| i)
        .collect();
    relu_ids.shuffle(rng);
    for (k, ni) in relu_ids.into_iter().take(count).enumerate() {
        let node = g.node(mvtee_graph::NodeId(ni))?.clone();
        let x = node.inputs[0];
        let shape = graph.value(x).ok().and_then(|i| i.shape.clone());
        let abs_v = g.add_value(format!("relu_abs_{k}"));
        let sum_v = g.add_value(format!("relu_sum_{k}"));
        if let Some(s) = &shape {
            g.value_mut(abs_v)?.shape = Some(s.clone());
            g.value_mut(sum_v)?.shape = Some(s.clone());
        }
        let half_v = g.add_value(format!("relu_half_{k}"));
        g.set_initializer(half_v, Tensor::scalar(0.5));
        g.add_node(
            format!("relu_decomp_abs_{k}"),
            Op::Activation(ActivationKind::Abs),
            vec![x],
            vec![abs_v],
        )?;
        g.add_node(format!("relu_decomp_add_{k}"), Op::Add, vec![x, abs_v], vec![sum_v])?;
        let node = g.node_mut(mvtee_graph::NodeId(ni))?;
        node.op = Op::Mul;
        node.inputs = vec![sum_v, half_v];
    }
    g.validate()?;
    Ok(g)
}

/// Shuffles the output channels of up to `count` Conv nodes, compensating
/// in the downstream consumer chain.
///
/// Pattern: `Conv(g=1) → (BatchNorm | elementwise Activation)* → Conv(g=1)`
/// where every intermediate value has exactly one consumer and is not a
/// graph output. The permutation is applied to the first conv's output
/// channels (weight rows + bias), every BN's per-channel parameters, and
/// the second conv's input channels (weight columns).
fn channel_shuffle(graph: &Graph, rng: &mut StdRng, count: usize) -> Result<Graph> {
    let mut g = graph.clone();
    let consumers = g.consumers();
    let mut candidates: Vec<(usize, Vec<usize>, usize)> = Vec::new(); // (conv1, chain bns, conv2)

    'outer: for (ni, node) in g.nodes().iter().enumerate() {
        let Op::Conv { groups: 1, .. } = node.op else { continue };
        let mut chain_bns = Vec::new();
        let mut v = node.outputs[0];
        loop {
            if g.outputs().contains(&v) {
                continue 'outer;
            }
            let Some(cs) = consumers.get(&v) else { continue 'outer };
            if cs.len() != 1 {
                continue 'outer;
            }
            let next = g.node(cs[0]).expect("consumer exists");
            // The chased value must be the primary data input.
            if next.inputs[0] != v {
                continue 'outer;
            }
            match &next.op {
                Op::BatchNorm { .. } => {
                    chain_bns.push(next.id.0);
                    v = next.outputs[0];
                }
                Op::Activation(_) => {
                    v = next.outputs[0];
                }
                Op::Conv { groups: 1, .. } => {
                    candidates.push((ni, chain_bns, next.id.0));
                    continue 'outer;
                }
                _ => continue 'outer,
            }
        }
    }
    candidates.shuffle(rng);
    for (conv1, bns, conv2) in candidates.into_iter().take(count) {
        let w1_id = g.node(mvtee_graph::NodeId(conv1))?.inputs[1];
        let b1_id = g.node(mvtee_graph::NodeId(conv1))?.inputs.get(2).copied();
        let w2_id = g.node(mvtee_graph::NodeId(conv2))?.inputs[1];
        let Some(w1) = g.initializer(w1_id).cloned() else { continue };
        let Some(w2) = g.initializer(w2_id).cloned() else { continue };
        let oc = w1.dims()[0];
        if w2.dims()[1] != oc {
            continue; // defensive: shapes must agree
        }
        let mut perm: Vec<usize> = (0..oc).collect();
        perm.shuffle(rng);
        // conv1 weight rows + bias.
        let per_out = w1.len() / oc;
        let mut new_w1 = vec![0.0f32; w1.len()];
        for (new_o, &old_o) in perm.iter().enumerate() {
            new_w1[new_o * per_out..(new_o + 1) * per_out]
                .copy_from_slice(&w1.data()[old_o * per_out..(old_o + 1) * per_out]);
        }
        *g.initializer_mut(w1_id).expect("w1 exists") =
            Tensor::from_vec(new_w1, w1.dims()).expect("same shape");
        if let Some(b1) = b1_id {
            if let Some(bias) = g.initializer(b1).cloned() {
                let mut nb = vec![0.0f32; oc];
                for (new_o, &old_o) in perm.iter().enumerate() {
                    nb[new_o] = bias.data()[old_o];
                }
                *g.initializer_mut(b1).expect("b1 exists") =
                    Tensor::from_vec(nb, &[oc]).expect("same shape");
            }
        }
        // BN params along the chain.
        for bn in bns {
            let param_ids: Vec<ValueId> = g.node(mvtee_graph::NodeId(bn))?.inputs[1..5].to_vec();
            for pid in param_ids {
                if let Some(p) = g.initializer(pid).cloned() {
                    let mut np = vec![0.0f32; oc];
                    for (new_o, &old_o) in perm.iter().enumerate() {
                        np[new_o] = p.data()[old_o];
                    }
                    *g.initializer_mut(pid).expect("bn param exists") =
                        Tensor::from_vec(np, &[oc]).expect("same shape");
                }
            }
        }
        // conv2 input channels (dim 1).
        let d = w2.dims().to_vec();
        let (o2, _ic, kh, kw) = (d[0], d[1], d[2], d[3]);
        let ksz = kh * kw;
        let mut new_w2 = vec![0.0f32; w2.len()];
        for o in 0..o2 {
            for (new_i, &old_i) in perm.iter().enumerate() {
                let src = (o * oc + old_i) * ksz;
                let dst = (o * oc + new_i) * ksz;
                new_w2[dst..dst + ksz].copy_from_slice(&w2.data()[src..src + ksz]);
            }
        }
        *g.initializer_mut(w2_id).expect("w2 exists") =
            Tensor::from_vec(new_w2, &d).expect("same shape");
    }
    g.validate()?;
    Ok(g)
}

/// Applies one of the optimisation pipelines at random: none, identity
/// elimination only, or the full standard pipeline.
fn selective_optimize(graph: &Graph, rng: &mut StdRng) -> Result<Graph> {
    match rng.gen_range(0..3u8) {
        0 => Ok(graph.clone()),
        1 => mvtee_runtime::optimize::eliminate_identities(graph).map_err(DiversifyError::from),
        _ => mvtee_runtime::optimize::standard_pipeline(graph).map_err(DiversifyError::from),
    }
}

/// Swaps the operand order of commutative Add/Mul nodes (50% each).
fn commutative_reorder(graph: &Graph, rng: &mut StdRng) -> Result<Graph> {
    let mut g = graph.clone();
    let ids: Vec<usize> = g
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n.op, Op::Add | Op::Mul))
        .map(|(i, _)| i)
        .collect();
    for ni in ids {
        if rng.gen_bool(0.5) {
            let node = g.node_mut(mvtee_graph::NodeId(ni))?;
            // Only swap when shapes broadcast symmetrically (identical
            // shapes always do; mixed shapes also commute under ONNX
            // broadcasting, so a swap is always safe semantically).
            node.inputs.swap(0, 1);
        }
    }
    g.validate()?;
    Ok(g)
}

/// Structural distance between two graphs: 1 − Jaccard similarity of their
/// (op-name, input-count) multiset. Used to quantify diversification.
pub fn structural_distance(a: &Graph, b: &Graph) -> f64 {
    use std::collections::HashMap;
    let mut counts_a: HashMap<String, i64> = HashMap::new();
    for n in a.nodes() {
        *counts_a.entry(format!("{}:{}", n.op.name(), n.inputs.len())).or_insert(0) += 1;
    }
    let mut counts_b: HashMap<String, i64> = HashMap::new();
    for n in b.nodes() {
        *counts_b.entry(format!("{}:{}", n.op.name(), n.inputs.len())).or_insert(0) += 1;
    }
    let mut intersection = 0i64;
    let mut union = 0i64;
    let keys: std::collections::HashSet<&String> =
        counts_a.keys().chain(counts_b.keys()).collect();
    for k in keys {
        let x = counts_a.get(k).copied().unwrap_or(0);
        let y = counts_b.get(k).copied().unwrap_or(0);
        intersection += x.min(y);
        union += x.max(y);
    }
    if union == 0 {
        0.0
    } else {
        1.0 - intersection as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_runtime::{Engine, EngineConfig, EngineKind};
    use mvtee_tensor::metrics;

    fn run_reference(graph: &Graph, input: &Tensor) -> Tensor {
        Engine::new(EngineConfig::of_kind(EngineKind::Reference))
            .prepare(graph)
            .unwrap()
            .run(std::slice::from_ref(input))
            .unwrap()
            .remove(0)
    }

    fn test_input(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|i| ((i % 89) as f32 - 44.0) / 44.0).collect(), dims).unwrap()
    }

    fn check_equivalence(kind: TransformKind, model: ModelKind) {
        let m = zoo::build(model, ScaleProfile::Test, 21).unwrap();
        let t = kind.apply(&m.graph, 5).unwrap();
        t.validate().unwrap();
        let input = test_input(m.input_shape.dims());
        let y0 = run_reference(&m.graph, &input);
        let y1 = run_reference(&t, &input);
        assert!(
            metrics::allclose(&y0, &y1, 1e-3, 1e-5),
            "{kind} broke semantics: max diff {}",
            metrics::max_abs_diff(&y0, &y1)
        );
    }

    #[test]
    fn dummy_identity_preserves_semantics() {
        check_equivalence(TransformKind::DummyIdentity, ModelKind::ResNet50);
    }

    #[test]
    fn dummy_identity_adds_nodes() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 21).unwrap();
        let t = TransformKind::DummyIdentity.apply(&m.graph, 5).unwrap();
        assert_eq!(t.node_count(), m.graph.node_count() + 3);
    }

    #[test]
    fn dummy_arithmetic_preserves_semantics() {
        check_equivalence(TransformKind::DummyArithmetic, ModelKind::MnasNet);
    }

    #[test]
    fn decompose_gemm_preserves_semantics() {
        check_equivalence(TransformKind::DecomposeGemm, ModelKind::ResNet50);
    }

    #[test]
    fn decompose_gemm_removes_gemm_nodes() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 21).unwrap();
        let t = TransformKind::DecomposeGemm.apply(&m.graph, 0).unwrap();
        assert_eq!(t.op_histogram().get("Gemm"), None);
        assert!(t.op_histogram().get("MatMul").copied().unwrap_or(0) >= 1);
    }

    #[test]
    fn decompose_relu_preserves_semantics() {
        check_equivalence(TransformKind::DecomposeRelu, ModelKind::GoogleNet);
    }

    #[test]
    fn decompose_relu_introduces_abs() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 21).unwrap();
        let t = TransformKind::DecomposeRelu.apply(&m.graph, 1).unwrap();
        assert!(t.op_histogram().get("Abs").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn channel_shuffle_preserves_semantics() {
        check_equivalence(TransformKind::ChannelShuffle, ModelKind::ResNet50);
    }

    #[test]
    fn channel_shuffle_changes_weights() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 21).unwrap();
        let t = TransformKind::ChannelShuffle.apply(&m.graph, 3).unwrap();
        // Some initializer must have changed.
        let changed = m
            .graph
            .initializers()
            .iter()
            .any(|(v, tensor)| t.initializer(*v).map(|u| u != tensor).unwrap_or(false));
        assert!(changed, "channel shuffle was a no-op");
    }

    #[test]
    fn selective_optimize_preserves_semantics() {
        for seed in 0..3 {
            let m = zoo::build(ModelKind::MobileNetV3, ScaleProfile::Test, 21).unwrap();
            let t = TransformKind::SelectiveOptimize.apply(&m.graph, seed).unwrap();
            let input = test_input(m.input_shape.dims());
            let y0 = run_reference(&m.graph, &input);
            let y1 = run_reference(&t, &input);
            assert!(metrics::allclose(&y0, &y1, 1e-3, 1e-5), "seed {seed}");
        }
    }

    #[test]
    fn commutative_reorder_preserves_semantics_exactly() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 21).unwrap();
        let t = TransformKind::CommutativeReorder.apply(&m.graph, 5).unwrap();
        let input = test_input(m.input_shape.dims());
        let y0 = run_reference(&m.graph, &input);
        let y1 = run_reference(&t, &input);
        // IEEE addition/multiplication are commutative: bit-exact.
        assert_eq!(y0, y1);
    }

    #[test]
    fn apply_all_stacks_transforms() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 21).unwrap();
        let t = apply_all(
            &m.graph,
            &[
                TransformKind::DummyIdentity,
                TransformKind::DecomposeGemm,
                TransformKind::CommutativeReorder,
            ],
            9,
        )
        .unwrap();
        t.validate().unwrap();
        let input = test_input(m.input_shape.dims());
        let y0 = run_reference(&m.graph, &input);
        let y1 = run_reference(&t, &input);
        assert!(metrics::allclose(&y0, &y1, 1e-3, 1e-5));
    }

    #[test]
    fn transforms_work_on_partition_subgraphs() {
        use mvtee_partition::slice_by_boundaries;
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 21).unwrap();
        let set = slice_by_boundaries(&m.graph, &[60]).unwrap();
        let subs = set.extract_subgraphs(&m.graph).unwrap();
        for sub in &subs {
            for kind in TransformKind::ALL {
                let t = kind.apply(sub, 3).unwrap();
                t.validate().unwrap();
            }
        }
    }

    #[test]
    fn structural_distance_properties() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 21).unwrap();
        assert_eq!(structural_distance(&m.graph, &m.graph), 0.0);
        let t = TransformKind::DecomposeGemm.apply(&m.graph, 1).unwrap();
        let d = structural_distance(&m.graph, &t);
        assert!(d > 0.0 && d <= 1.0);
    }

    #[test]
    fn transform_display_names() {
        for k in TransformKind::ALL {
            assert!(!k.to_string().is_empty());
        }
    }
}
