//! Multi-level variant diversification (§4.2 of the paper).
//!
//! MVTEE generates functionally equivalent but diversified inference
//! variants automatically, exploiting the natural heterogeneity of the ML
//! stack. This crate implements both levels:
//!
//! * **Model graph level** ([`transforms`]) — ONNX-to-ONNX-style rewrites:
//!   dummy operators (identity / add-zero / mul-one), equivalent operator
//!   replacement (Gemm → MatMul+Add, Relu → (x+|x|)/2), channel
//!   manipulation (shuffling conv output channels with compensating weight
//!   permutations downstream), selective optimisation (BN folding /
//!   identity elimination as a defense toggle) and commutative operator
//!   reordering. All transforms preserve semantics to floating-point
//!   tolerance and are property-tested against the reference executor.
//! * **Inference instance level** ([`spec`]) — executor family, BLAS
//!   backend, optimisation level, accumulation order, TEE backend and ASLR
//!   seed, combined into a [`VariantSpec`].
//!
//! [`generator`] materialises specs against partitioned subgraphs into a
//! [`VariantPool`] — the pre-established pool from which the monitor
//! initialises and updates variant TEEs at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod spec;
pub mod transforms;

mod error;

pub use error::DiversifyError;
pub use generator::{VariantBundle, VariantGenerator, VariantPool};
pub use spec::{TeeBackend, VariantId, VariantSpec};
pub use transforms::TransformKind;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DiversifyError>;
