use std::fmt;

/// Errors produced during variant generation.
#[derive(Debug, Clone, PartialEq)]
pub enum DiversifyError {
    /// A graph operation failed.
    Graph(mvtee_graph::GraphError),
    /// A runtime operation (optimisation pass) failed.
    Runtime(String),
    /// A transform could not be applied to this graph.
    Inapplicable {
        /// Transform name.
        transform: String,
        /// Why it could not be applied.
        reason: String,
    },
    /// A variant request referenced an unknown pool entry.
    UnknownVariant {
        /// Partition index.
        partition: usize,
        /// Variant index within the partition.
        variant: usize,
    },
}

impl fmt::Display for DiversifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiversifyError::Graph(e) => write!(f, "graph error: {e}"),
            DiversifyError::Runtime(e) => write!(f, "runtime error: {e}"),
            DiversifyError::Inapplicable { transform, reason } => {
                write!(f, "transform {transform} inapplicable: {reason}")
            }
            DiversifyError::UnknownVariant { partition, variant } => {
                write!(f, "no variant {variant} for partition {partition}")
            }
        }
    }
}

impl std::error::Error for DiversifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiversifyError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvtee_graph::GraphError> for DiversifyError {
    fn from(e: mvtee_graph::GraphError) -> Self {
        DiversifyError::Graph(e)
    }
}

impl From<mvtee_runtime::RuntimeError> for DiversifyError {
    fn from(e: mvtee_runtime::RuntimeError) -> Self {
        DiversifyError::Runtime(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            DiversifyError::Graph(mvtee_graph::GraphError::CyclicGraph),
            DiversifyError::Runtime("x".into()),
            DiversifyError::Inapplicable { transform: "t".into(), reason: "r".into() },
            DiversifyError::UnknownVariant { partition: 1, variant: 2 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
