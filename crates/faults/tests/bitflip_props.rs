//! Property tests for the weight bit-flip injector: an `ExponentMsb` flip
//! must always change the targeted weight, and — because a flip is an XOR
//! toggle — a second identical call must restore the graph bit-exactly.

use mvtee_faults::{flip_weight_bits, BitFlipStrategy};
use mvtee_graph::op::ActivationKind;
use mvtee_graph::{Graph, GraphBuilder};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small conv-net with a seeded parameter set: enough distinct
/// initializers (conv weights, biases, batch-norm stats) that flips land
/// on varied tensors.
fn weighted_graph(seed: u64) -> Graph {
    let mut b = GraphBuilder::new("flip-props", seed);
    let x = b.input(&[1, 3, 6, 6]);
    let c1 = b.conv(x, 4, (3, 3), (1, 1), (1, 1), 1).expect("conv1");
    let n1 = b.batch_norm(c1).expect("bn1");
    let a1 = b.activation(n1, ActivationKind::Relu).expect("relu");
    let c2 = b.conv(a1, 4, (3, 3), (1, 1), (1, 1), 1).expect("conv2");
    let g = b.global_avg_pool(c2).expect("gap");
    b.finish(vec![g]).expect("valid graph")
}

fn weight_bits(g: &Graph) -> HashMap<usize, Vec<u32>> {
    g.initializers()
        .iter()
        .map(|(v, t)| (v.0, t.data().iter().map(|x| x.to_bits()).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exponent_flip_always_changes_the_tensor(
        graph_seed in any::<u64>(),
        flip_seed in any::<u64>(),
        count in 1usize..5,
    ) {
        let clean = weighted_graph(graph_seed);
        let mut g = clean.clone();
        let flips = flip_weight_bits(&mut g, BitFlipStrategy::ExponentMsb, count, flip_seed);
        prop_assert_eq!(flips.len(), count);
        for f in &flips {
            prop_assert_eq!(f.bit, 30, "ExponentMsb targets bit 30");
            prop_assert_eq!(
                f.before.to_bits() ^ f.after.to_bits(),
                1u32 << 30,
                "flip must toggle exactly the exponent MSB"
            );
            prop_assert_ne!(f.before.to_bits(), f.after.to_bits());
        }
        // Each element ends up changed iff it was flipped an odd number of
        // times (the same element can be drawn twice).
        let before = weight_bits(&clean);
        let after = weight_bits(&g);
        let mut flip_parity: HashMap<(usize, usize), usize> = HashMap::new();
        for f in &flips {
            *flip_parity.entry((f.tensor.0, f.element)).or_insert(0) += 1;
        }
        for (vid, bits) in &after {
            for (i, b) in bits.iter().enumerate() {
                let parity = flip_parity.get(&(*vid, i)).copied().unwrap_or(0) % 2;
                let changed = before[vid][i] != *b;
                prop_assert_eq!(
                    changed,
                    parity == 1,
                    "tensor {} element {} changed={} but flip parity={}",
                    vid, i, changed, parity
                );
            }
        }
    }

    #[test]
    fn identical_second_flip_is_an_exact_inverse(
        graph_seed in any::<u64>(),
        flip_seed in any::<u64>(),
        count in 1usize..5,
    ) {
        let clean = weighted_graph(graph_seed);
        let mut g = clean.clone();
        let first = flip_weight_bits(&mut g, BitFlipStrategy::ExponentMsb, count, flip_seed);
        // Same seed, same strategy, same count → the exact same elements
        // toggle again, restoring every weight bit-exactly.
        let second = flip_weight_bits(&mut g, BitFlipStrategy::ExponentMsb, count, flip_seed);
        prop_assert_eq!(first.len(), second.len());
        // The same seed draws the same (tensor, element) sequence. (No
        // per-flip before/after claim: one call can hit the same element
        // twice, making intermediate values differ between passes — only
        // the whole-graph XOR parity below is invariant.)
        for (a, b) in first.iter().zip(second.iter()) {
            prop_assert_eq!(a.tensor, b.tensor);
            prop_assert_eq!(a.element, b.element);
        }
        prop_assert_eq!(
            weight_bits(&clean),
            weight_bits(&g),
            "second identical flip did not restore the graph"
        );
    }
}
