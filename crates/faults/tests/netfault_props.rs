//! Property tests for the wire-fault layer: every drawable [`NetFault`]
//! spec must round-trip through `Display`/`FromStr`, and a seeded
//! corruption of a sealed frame must *always* fail AEAD authentication
//! (the netchaos 100%-detection gate, proven over the whole seed space
//! rather than a handful of samples).

use mvtee_crypto::channel::{memory_pair, Handshake, Role, SecureChannel};
use mvtee_crypto::CryptoError;
use mvtee_faults::{FaultDirection, FaultyTransport, NetFault, NetFaultClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_net_faults_round_trip(seed in any::<u64>()) {
        let fault = NetFault::arbitrary(&mut StdRng::seed_from_u64(seed));
        let spec = fault.to_string();
        let reparsed: NetFault = spec.parse().expect("generated spec must parse");
        prop_assert_eq!(reparsed, fault, "round trip failed for {}", spec);
    }

    #[test]
    fn corruption_always_fails_aead(
        corrupt_seed in any::<u64>(),
        payload_len in 1usize..512,
    ) {
        let fault = NetFault { class: NetFaultClass::Corrupt { seed: corrupt_seed }, from_frame: 0 };
        let hs_i = Handshake::from_pre_shared(b"prop", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"prop", Role::Responder);
        let (a, b) = memory_pair();
        let mut tx =
            SecureChannel::new(FaultyTransport::new(a, fault, FaultDirection::Send), &hs_i, 1);
        let mut rx = SecureChannel::new(b, &hs_r, 1);
        tx.send(&vec![0xCD; payload_len]).unwrap();
        prop_assert!(
            matches!(rx.recv(), Err(CryptoError::AuthenticationFailed)),
            "corrupted frame must fail authentication (seed {corrupt_seed})"
        );
    }

    #[test]
    fn dropped_frames_surface_as_sequence_mismatch(drop_at in 0u64..4) {
        let fault = NetFault { class: NetFaultClass::Drop, from_frame: drop_at };
        let hs_i = Handshake::from_pre_shared(b"prop", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"prop", Role::Responder);
        let (a, b) = memory_pair();
        let mut tx =
            SecureChannel::new(FaultyTransport::new(a, fault, FaultDirection::Send), &hs_i, 2);
        let mut rx = SecureChannel::new(b, &hs_r, 2);
        for i in 0..5u8 {
            tx.send(&[i]).unwrap();
        }
        // Frames before the drop arrive intact; the frame after the gap
        // carries the wrong sequence number and is rejected.
        for i in 0..drop_at {
            prop_assert_eq!(rx.recv().unwrap(), vec![i as u8]);
        }
        let gap = rx.recv();
        prop_assert!(
            matches!(gap, Err(CryptoError::SequenceMismatch { .. })),
            "expected sequence mismatch after the dropped frame"
        );
    }
}
