//! Deterministic wire-level fault injection: a [`FaultyTransport`]
//! wrapper around any [`FrameTransport`].
//!
//! The liveness faults of [`crate::liveness`] act inside a variant host;
//! this module attacks the layer below — the framed connection itself —
//! with the eight wire-fault classes a distributed panel must survive:
//! delay, stall, drop, duplicate, truncate, byte-corrupt, torn mid-frame
//! write, and abrupt disconnect. Faults fire from a replayable schedule
//! keyed on the frame index of the faulted direction, so the same
//! [`NetFault`] spec always perturbs the same frame — a failing netchaos
//! storm replays byte-for-byte.
//!
//! The wrapper never blocks forever: a stall *swallows* frames (send) or
//! *discards* them while continuing to consume (receive), so the faulted
//! endpoint unblocks with an error the moment the underlying transport
//! dies. Detection is someone else's job by design — the AEAD layer
//! rejects corruption, sequence numbers expose drops and duplicates, and
//! heartbeat deadlines expose stalls.

use mvtee_crypto::channel::FrameTransport;
use mvtee_crypto::CryptoError;
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One of the eight wire-fault classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFaultClass {
    /// Every frame from the trigger onward is delayed by `ms` before
    /// delivery (liveness degradation, never corruption).
    Delay {
        /// Added latency per frame, milliseconds.
        ms: u64,
    },
    /// Every frame from the trigger onward is silently discarded — the
    /// peer stops hearing from us but the connection stays up.
    Stall,
    /// Exactly one frame is discarded.
    Drop,
    /// Exactly one frame is delivered twice.
    Duplicate,
    /// Exactly one frame is cut to half its length.
    Truncate,
    /// Exactly one frame has one byte flipped inside its trailing 16
    /// bytes (the AEAD tag region of a sealed frame), at a seeded
    /// position.
    Corrupt {
        /// Seed selecting the flipped byte and the XOR mask.
        seed: u64,
    },
    /// A torn mid-frame write: half the frame is delivered, then the
    /// connection is torn down.
    Torn,
    /// The connection is abruptly closed at the trigger frame.
    Disconnect,
}

impl NetFaultClass {
    /// `true` for classes that keep applying from the trigger onward
    /// (delay, stall); `false` for one-shot classes.
    pub fn is_ongoing(self) -> bool {
        matches!(self, NetFaultClass::Delay { .. } | NetFaultClass::Stall)
    }

    /// Short class token used in specs and report rows.
    pub fn token(self) -> &'static str {
        match self {
            NetFaultClass::Delay { .. } => "delay",
            NetFaultClass::Stall => "stall",
            NetFaultClass::Drop => "drop",
            NetFaultClass::Duplicate => "dup",
            NetFaultClass::Truncate => "trunc",
            NetFaultClass::Corrupt { .. } => "corrupt",
            NetFaultClass::Torn => "torn",
            NetFaultClass::Disconnect => "disc",
        }
    }

    /// Every class, for schedule enumeration in benches and campaigns.
    pub const ALL_TOKENS: [&'static str; 8] =
        ["delay", "stall", "drop", "dup", "trunc", "corrupt", "torn", "disc"];
}

/// A seeded, replayable wire fault: `class` applied at (or from)
/// non-exempt frame index `from_frame` of the faulted direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFault {
    /// Which wire-fault class fires.
    pub class: NetFaultClass,
    /// Frame index (0-based, counting only non-exempt frames on the
    /// faulted path) at which the fault fires; ongoing classes apply
    /// from here onward.
    pub from_frame: u64,
}

impl NetFault {
    /// Draws a fault uniformly over all eight classes
    /// (`Arbitrary`-style; deterministic given the RNG state).
    pub fn arbitrary(rng: &mut StdRng) -> Self {
        let from_frame = rng.gen_range(0..4);
        let class = match rng.gen_range(0..8) {
            0 => NetFaultClass::Delay { ms: rng.gen_range(1u64..=4) * 10 },
            1 => NetFaultClass::Stall,
            2 => NetFaultClass::Drop,
            3 => NetFaultClass::Duplicate,
            4 => NetFaultClass::Truncate,
            5 => NetFaultClass::Corrupt { seed: rng.next_u64() },
            6 => NetFaultClass::Torn,
            _ => NetFaultClass::Disconnect,
        };
        NetFault { class, from_frame }
    }
}

impl fmt::Display for NetFault {
    /// One-token spec, e.g. `net:delay:2:20`, `net:stall:1`,
    /// `net:corrupt:3:12345`, `net:disc:0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let from = self.from_frame;
        match self.class {
            NetFaultClass::Delay { ms } => write!(f, "net:delay:{from}:{ms}"),
            NetFaultClass::Corrupt { seed } => write!(f, "net:corrupt:{from}:{seed}"),
            other => write!(f, "net:{}:{from}", other.token()),
        }
    }
}

impl FromStr for NetFault {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = |msg: &str| format!("bad net fault spec '{s}': {msg}");
        let parse_from = |t: &str| t.parse::<u64>().map_err(|_| bad("bad frame index"));
        let (class, from_frame) = match parts.as_slice() {
            ["net", "delay", from, ms] => (
                NetFaultClass::Delay { ms: ms.parse().map_err(|_| bad("bad delay"))? },
                parse_from(from)?,
            ),
            ["net", "corrupt", from, seed] => (
                NetFaultClass::Corrupt { seed: seed.parse().map_err(|_| bad("bad seed"))? },
                parse_from(from)?,
            ),
            ["net", "stall", from] => (NetFaultClass::Stall, parse_from(from)?),
            ["net", "drop", from] => (NetFaultClass::Drop, parse_from(from)?),
            ["net", "dup", from] => (NetFaultClass::Duplicate, parse_from(from)?),
            ["net", "trunc", from] => (NetFaultClass::Truncate, parse_from(from)?),
            ["net", "torn", from] => (NetFaultClass::Torn, parse_from(from)?),
            ["net", "disc", from] => (NetFaultClass::Disconnect, parse_from(from)?),
            _ => return Err(bad("unrecognised shape")),
        };
        Ok(NetFault { class, from_frame })
    }
}

/// Which direction of the wrapped transport the fault perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDirection {
    /// Outbound frames (`send_frame`) are faulted.
    Send,
    /// Inbound frames (`recv_frame`) are faulted.
    Recv,
}

/// A [`FrameTransport`] wrapper injecting one [`NetFault`] into one
/// direction of an inner transport.
///
/// Frames on the non-faulted direction pass through untouched. When the
/// wrapper sits *under* a lane multiplexer, [`exempt_lane`] excludes a
/// lane (by its 1-byte prefix) from frame counting and one-shot faults,
/// keeping the trigger index deterministic even when timing-dependent
/// traffic (heartbeats) shares the connection — an active stall still
/// silences exempt frames, because a stalled wire stalls everything.
///
/// [`exempt_lane`]: FaultyTransport::exempt_lane
pub struct FaultyTransport<T> {
    inner: T,
    fault: NetFault,
    direction: FaultDirection,
    exempt: Option<u8>,
    count: AtomicU64,
    injected: Arc<AtomicU64>,
    pending: Mutex<Option<Vec<u8>>>,
    injected_total: mvtee_telemetry::Counter,
}

impl<T: FrameTransport> FaultyTransport<T> {
    /// Wraps `inner`, faulting the `direction` path with `fault`.
    pub fn new(inner: T, fault: NetFault, direction: FaultDirection) -> Self {
        FaultyTransport {
            inner,
            fault,
            direction,
            exempt: None,
            count: AtomicU64::new(0),
            injected: Arc::new(AtomicU64::new(0)),
            pending: Mutex::new(None),
            injected_total: mvtee_telemetry::counter("faults.net.injected"),
        }
    }

    /// Excludes frames whose first byte is `lane` from counting and
    /// one-shot faults (see the type docs).
    pub fn exempt_lane(mut self, lane: u8) -> Self {
        self.exempt = Some(lane);
        self
    }

    /// A shared handle to this wrapper's injection count, usable after
    /// the wrapper itself has been consumed by a mux split.
    pub fn injected_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.injected)
    }

    fn is_exempt(&self, frame: &[u8]) -> bool {
        matches!((self.exempt, frame.first()), (Some(lane), Some(&first)) if lane == first)
    }

    fn record_injection(&self) {
        self.injected.fetch_add(1, Ordering::SeqCst);
        self.injected_total.inc();
    }

    /// Whether the ongoing-stall window is open (the schedule position
    /// has reached the trigger frame).
    fn stall_active(&self) -> bool {
        self.fault.class == NetFaultClass::Stall
            && self.count.load(Ordering::SeqCst) >= self.fault.from_frame
    }

    fn triggers(&self, idx: u64) -> bool {
        if self.fault.class.is_ongoing() {
            idx >= self.fault.from_frame
        } else {
            idx == self.fault.from_frame
        }
    }

    fn faulted_send(&self, frame: Vec<u8>) -> mvtee_crypto::Result<()> {
        if self.is_exempt(&frame) {
            if self.stall_active() {
                self.record_injection();
                return Ok(());
            }
            return self.inner.send_frame(frame);
        }
        let idx = self.count.fetch_add(1, Ordering::SeqCst);
        if !self.triggers(idx) {
            return self.inner.send_frame(frame);
        }
        match self.fault.class {
            NetFaultClass::Delay { ms } => {
                self.record_injection();
                std::thread::sleep(Duration::from_millis(ms));
                self.inner.send_frame(frame)
            }
            NetFaultClass::Stall | NetFaultClass::Drop => {
                self.record_injection();
                Ok(())
            }
            NetFaultClass::Duplicate => {
                self.record_injection();
                self.inner.send_frame(frame.clone())?;
                self.inner.send_frame(frame)
            }
            NetFaultClass::Truncate => {
                self.record_injection();
                self.inner.send_frame(frame[..frame.len() / 2].to_vec())
            }
            NetFaultClass::Corrupt { seed } => {
                self.record_injection();
                self.inner.send_frame(corrupt_frame(frame, seed))
            }
            NetFaultClass::Torn => {
                self.record_injection();
                let _ = self.inner.send_frame(frame[..frame.len() / 2].to_vec());
                self.inner.close();
                Err(CryptoError::ConnectionClosed)
            }
            NetFaultClass::Disconnect => {
                self.record_injection();
                self.inner.close();
                Err(CryptoError::ConnectionClosed)
            }
        }
    }

    fn faulted_recv(&self) -> mvtee_crypto::Result<Vec<u8>> {
        if let Some(frame) = self.pending.lock().expect("pending poisoned").take() {
            return Ok(frame);
        }
        loop {
            let frame = self.inner.recv_frame()?;
            if self.is_exempt(&frame) {
                if self.stall_active() {
                    self.record_injection();
                    continue;
                }
                return Ok(frame);
            }
            let idx = self.count.fetch_add(1, Ordering::SeqCst);
            if !self.triggers(idx) {
                return Ok(frame);
            }
            match self.fault.class {
                NetFaultClass::Delay { ms } => {
                    self.record_injection();
                    std::thread::sleep(Duration::from_millis(ms));
                    return Ok(frame);
                }
                NetFaultClass::Stall | NetFaultClass::Drop => {
                    // Discard but keep consuming: unblocks with Err the
                    // moment the inner transport dies.
                    self.record_injection();
                    continue;
                }
                NetFaultClass::Duplicate => {
                    self.record_injection();
                    *self.pending.lock().expect("pending poisoned") = Some(frame.clone());
                    return Ok(frame);
                }
                NetFaultClass::Truncate => {
                    self.record_injection();
                    return Ok(frame[..frame.len() / 2].to_vec());
                }
                NetFaultClass::Corrupt { seed } => {
                    self.record_injection();
                    return Ok(corrupt_frame(frame, seed));
                }
                NetFaultClass::Torn => {
                    self.record_injection();
                    let half = frame[..frame.len() / 2].to_vec();
                    self.inner.close();
                    return Ok(half);
                }
                NetFaultClass::Disconnect => {
                    self.record_injection();
                    self.inner.close();
                    return Err(CryptoError::ConnectionClosed);
                }
            }
        }
    }
}

/// Flips one seeded byte inside the trailing 16 bytes of `frame` — the
/// AEAD tag region of any sealed frame, so corruption is always
/// detectable rather than sometimes landing in plaintext headers the
/// receiver ignores.
fn corrupt_frame(mut frame: Vec<u8>, seed: u64) -> Vec<u8> {
    if frame.is_empty() {
        return frame;
    }
    let window = frame.len().min(16) as u64;
    let pos = frame.len() - 1 - (seed % window) as usize;
    frame[pos] ^= (seed >> 8) as u8 | 1;
    frame
}

impl<T: FrameTransport> FrameTransport for FaultyTransport<T> {
    fn send_frame(&self, frame: Vec<u8>) -> mvtee_crypto::Result<()> {
        match self.direction {
            FaultDirection::Send => self.faulted_send(frame),
            FaultDirection::Recv => self.inner.send_frame(frame),
        }
    }

    fn recv_frame(&self) -> mvtee_crypto::Result<Vec<u8>> {
        match self.direction {
            FaultDirection::Recv => self.faulted_recv(),
            FaultDirection::Send => self.inner.recv_frame(),
        }
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_crypto::channel::{memory_pair, Handshake, MemoryTransport, Role, SecureChannel};

    fn spec(s: &str) -> NetFault {
        s.parse().expect("spec parses")
    }

    fn faulty_pair(
        fault: NetFault,
        direction: FaultDirection,
    ) -> (FaultyTransport<MemoryTransport>, MemoryTransport) {
        let (a, b) = memory_pair();
        (FaultyTransport::new(a, fault, direction), b)
    }

    #[test]
    fn specs_round_trip() {
        for s in [
            "net:delay:2:20",
            "net:stall:0",
            "net:drop:3",
            "net:dup:1",
            "net:trunc:2",
            "net:corrupt:1:987654321",
            "net:torn:0",
            "net:disc:4",
        ] {
            let f: NetFault = s.parse().unwrap();
            assert_eq!(f.to_string(), s, "round trip failed for {s}");
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in ["net", "net:melt:1", "net:drop:x", "net:delay:1", "drop:1", ""] {
            assert!(s.parse::<NetFault>().is_err(), "accepted bad spec '{s}'");
        }
    }

    #[test]
    fn drop_loses_exactly_one_frame() {
        let (tx, rx) = faulty_pair(spec("net:drop:1"), FaultDirection::Send);
        for i in 0..4u8 {
            tx.send_frame(vec![i]).unwrap();
        }
        let seen: Vec<Vec<u8>> = (0..3).map(|_| rx.recv_frame().unwrap()).collect();
        assert_eq!(seen, vec![vec![0], vec![2], vec![3]]);
        assert_eq!(tx.injected_handle().load(Ordering::SeqCst), 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let (tx, rx) = faulty_pair(spec("net:dup:0"), FaultDirection::Send);
        tx.send_frame(vec![7]).unwrap();
        tx.send_frame(vec![8]).unwrap();
        assert_eq!(rx.recv_frame().unwrap(), vec![7]);
        assert_eq!(rx.recv_frame().unwrap(), vec![7]);
        assert_eq!(rx.recv_frame().unwrap(), vec![8]);
    }

    #[test]
    fn duplicate_on_recv_replays_from_pending() {
        let (a, b) = memory_pair();
        let rx = FaultyTransport::new(b, spec("net:dup:0"), FaultDirection::Recv);
        a.send_frame(vec![5, 6]).unwrap();
        a.send_frame(vec![9]).unwrap();
        assert_eq!(rx.recv_frame().unwrap(), vec![5, 6]);
        assert_eq!(rx.recv_frame().unwrap(), vec![5, 6]);
        assert_eq!(rx.recv_frame().unwrap(), vec![9]);
    }

    #[test]
    fn truncate_halves_the_frame() {
        let (tx, rx) = faulty_pair(spec("net:trunc:0"), FaultDirection::Send);
        tx.send_frame(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(rx.recv_frame().unwrap(), vec![1, 2]);
    }

    #[test]
    fn stall_swallows_from_trigger_onward() {
        let (tx, rx) = faulty_pair(spec("net:stall:2"), FaultDirection::Send);
        for i in 0..5u8 {
            tx.send_frame(vec![i]).unwrap();
        }
        assert_eq!(rx.recv_frame().unwrap(), vec![0]);
        assert_eq!(rx.recv_frame().unwrap(), vec![1]);
        drop(tx); // sender gone: the starved receiver unblocks with Err
        assert!(rx.recv_frame().is_err());
    }

    #[test]
    fn disconnect_errors_and_torn_sends_half_then_dies() {
        let (tx, rx) = faulty_pair(spec("net:disc:0"), FaultDirection::Send);
        assert!(matches!(tx.send_frame(vec![1]), Err(CryptoError::ConnectionClosed)));
        drop(rx);

        let (tx, rx) = faulty_pair(spec("net:torn:0"), FaultDirection::Send);
        assert!(tx.send_frame(vec![1, 2, 3, 4]).is_err());
        assert_eq!(rx.recv_frame().unwrap(), vec![1, 2]);
    }

    #[test]
    fn corrupted_secure_frame_fails_aead() {
        let hs_i = Handshake::from_pre_shared(b"net", Role::Initiator);
        let hs_r = Handshake::from_pre_shared(b"net", Role::Responder);
        let (a, b) = memory_pair();
        let mut tx = SecureChannel::new(
            FaultyTransport::new(a, spec("net:corrupt:0:42"), FaultDirection::Send),
            &hs_i,
            6,
        );
        let mut rx = SecureChannel::new(b, &hs_r, 6);
        tx.send(b"checkpoint").unwrap();
        assert!(matches!(rx.recv(), Err(CryptoError::AuthenticationFailed)));
    }

    #[test]
    fn exempt_lane_bypasses_counting_but_not_stall() {
        const HB: u8 = 3;
        let (a, b) = memory_pair();
        let tx = FaultyTransport::new(a, spec("net:drop:0"), FaultDirection::Send).exempt_lane(HB);
        tx.send_frame(vec![HB, 0xA5]).unwrap(); // exempt: not counted
        tx.send_frame(vec![1, 1]).unwrap(); // idx 0: dropped
        tx.send_frame(vec![1, 2]).unwrap();
        assert_eq!(b.recv_frame().unwrap(), vec![HB, 0xA5]);
        assert_eq!(b.recv_frame().unwrap(), vec![1, 2]);

        let (a, b) = memory_pair();
        let tx = FaultyTransport::new(a, spec("net:stall:0"), FaultDirection::Send).exempt_lane(HB);
        tx.send_frame(vec![HB, 0xA5]).unwrap(); // stall active from frame 0: silenced too
        drop(tx);
        assert!(b.recv_frame().is_err());
    }

    #[test]
    fn delay_preserves_content() {
        let (tx, rx) = faulty_pair(spec("net:delay:0:1"), FaultDirection::Send);
        tx.send_frame(vec![42; 8]).unwrap();
        assert_eq!(rx.recv_frame().unwrap(), vec![42; 8]);
    }
}
