//! Provisioning faults: corruption of the chunked encrypted model
//! upload.
//!
//! The model registry (`mvtee-registry`) receives models as chunked
//! AES-GCM ciphertext over the attested provisioning lane. This module
//! enumerates the ways that stream can go wrong — a flipped ciphertext
//! byte, a truncated chunk, a dropped or reordered chunk, a tenant that
//! tears the upload mid-stream, and a manifest that lies about the
//! model's graph fingerprint. Every one must be **Detected** at
//! provisioning time: the registry rejects the upload with a precise
//! error and no variant ever runs a model assembled from a bad stream.
//!
//! Like [`FaultDescriptor`](crate::descriptor::FaultDescriptor), a
//! [`ProvisionFault`] round-trips through `Display`/`FromStr` so a
//! failing provisioning scenario replays byte-for-byte from its one-line
//! spec, and [`ProvisionFault::arbitrary`] draws from the full space
//! deterministically for seeded campaigns.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// One fault injected into a chunked model upload.
///
/// `chunk` indices are taken modulo the upload's chunk count at
/// injection time, so a drawn descriptor applies to any model size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvisionFault {
    /// XORs `mask` into one byte of chunk `chunk`'s ciphertext (AEAD
    /// must reject the chunk).
    CorruptChunk {
        /// Target chunk index (modulo chunk count).
        chunk: u64,
        /// Non-zero XOR mask applied to one ciphertext byte.
        mask: u8,
    },
    /// Truncates the tail of chunk `chunk`'s ciphertext frame.
    TruncateChunk {
        /// Target chunk index (modulo chunk count).
        chunk: u64,
    },
    /// Silently skips chunk `chunk` (the registry must notice the gap,
    /// not assemble a shorter model).
    DropChunk {
        /// Target chunk index (modulo chunk count).
        chunk: u64,
    },
    /// Swaps chunk `chunk` with its successor on the wire.
    ReorderChunks {
        /// First chunk of the swapped pair (modulo chunk count − 1).
        chunk: u64,
    },
    /// The tenant disconnects after `after` verified chunks and never
    /// finalizes — the torn upload the resume protocol recovers from.
    TornUpload {
        /// Chunks delivered before the tear (modulo chunk count).
        after: u64,
    },
    /// The manifest claims a graph fingerprint that does not match the
    /// uploaded bytes (a tenant trying to poison another tenant's
    /// content address).
    FingerprintMismatch,
}

/// Provisioning fault family row label.
pub const FAMILY_PROVISION: &str = "prov";

impl ProvisionFault {
    /// Matrix row label: the provisioning fault class.
    pub fn class_name(&self) -> &'static str {
        match self {
            ProvisionFault::CorruptChunk { .. } => "prov-corrupt",
            ProvisionFault::TruncateChunk { .. } => "prov-trunc",
            ProvisionFault::DropChunk { .. } => "prov-drop",
            ProvisionFault::ReorderChunks { .. } => "prov-reorder",
            ProvisionFault::TornUpload { .. } => "prov-torn",
            ProvisionFault::FingerprintMismatch => "prov-fpmismatch",
        }
    }

    /// Whether the fault tears the upload instead of corrupting it —
    /// torn uploads are *resumable*, not rejected, so campaigns hold
    /// them to a different invariant (resume from the last verified
    /// chunk) than the corruption classes (reject before finalize).
    pub fn is_torn(&self) -> bool {
        matches!(self, ProvisionFault::TornUpload { .. })
    }

    /// Draws a fault uniformly from the full space (`Arbitrary`-style;
    /// deterministic given the RNG state).
    pub fn arbitrary(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..6) {
            0 => ProvisionFault::CorruptChunk {
                chunk: rng.gen_range(0..16),
                mask: rng.gen_range(1..=255),
            },
            1 => ProvisionFault::TruncateChunk { chunk: rng.gen_range(0..16) },
            2 => ProvisionFault::DropChunk { chunk: rng.gen_range(0..16) },
            3 => ProvisionFault::ReorderChunks { chunk: rng.gen_range(0..16) },
            4 => ProvisionFault::TornUpload { after: rng.gen_range(0..16) },
            _ => ProvisionFault::FingerprintMismatch,
        }
    }
}

impl fmt::Display for ProvisionFault {
    /// One-token spec, e.g. `prov:corrupt:2:129`, `prov:trunc:0`,
    /// `prov:drop:3`, `prov:reorder:1`, `prov:torn:4`, `prov:fpmismatch`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvisionFault::CorruptChunk { chunk, mask } => {
                write!(f, "prov:corrupt:{chunk}:{mask}")
            }
            ProvisionFault::TruncateChunk { chunk } => write!(f, "prov:trunc:{chunk}"),
            ProvisionFault::DropChunk { chunk } => write!(f, "prov:drop:{chunk}"),
            ProvisionFault::ReorderChunks { chunk } => write!(f, "prov:reorder:{chunk}"),
            ProvisionFault::TornUpload { after } => write!(f, "prov:torn:{after}"),
            ProvisionFault::FingerprintMismatch => write!(f, "prov:fpmismatch"),
        }
    }
}

impl FromStr for ProvisionFault {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = |msg: &str| format!("bad provisioning fault spec '{s}': {msg}");
        match parts.as_slice() {
            ["prov", "corrupt", chunk, mask] => {
                let chunk = chunk.parse().map_err(|_| bad("bad chunk"))?;
                let mask: u8 = mask.parse().map_err(|_| bad("bad mask"))?;
                if mask == 0 {
                    return Err(bad("mask must be non-zero"));
                }
                Ok(ProvisionFault::CorruptChunk { chunk, mask })
            }
            ["prov", "trunc", chunk] => Ok(ProvisionFault::TruncateChunk {
                chunk: chunk.parse().map_err(|_| bad("bad chunk"))?,
            }),
            ["prov", "drop", chunk] => Ok(ProvisionFault::DropChunk {
                chunk: chunk.parse().map_err(|_| bad("bad chunk"))?,
            }),
            ["prov", "reorder", chunk] => Ok(ProvisionFault::ReorderChunks {
                chunk: chunk.parse().map_err(|_| bad("bad chunk"))?,
            }),
            ["prov", "torn", after] => Ok(ProvisionFault::TornUpload {
                after: after.parse().map_err(|_| bad("bad chunk"))?,
            }),
            ["prov", "fpmismatch"] => Ok(ProvisionFault::FingerprintMismatch),
            _ => Err(bad("unrecognised shape")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn specs_round_trip() {
        let samples = [
            "prov:corrupt:2:129",
            "prov:corrupt:0:1",
            "prov:trunc:0",
            "prov:drop:3",
            "prov:reorder:1",
            "prov:torn:4",
            "prov:fpmismatch",
        ];
        for s in samples {
            let f: ProvisionFault = s.parse().unwrap();
            assert_eq!(f.to_string(), s, "round trip failed for {s}");
        }
    }

    #[test]
    fn arbitrary_is_deterministic_and_covers_every_class() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let a = ProvisionFault::arbitrary(&mut StdRng::seed_from_u64(seed));
            let b = ProvisionFault::arbitrary(&mut StdRng::seed_from_u64(seed));
            assert_eq!(a, b);
            let re: ProvisionFault = a.to_string().parse().unwrap();
            assert_eq!(re, a);
            seen.insert(a.class_name());
        }
        assert_eq!(seen.len(), 6, "64 seeds must cover all six classes: {seen:?}");
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in [
            "",
            "prov",
            "prov:corrupt:2",
            "prov:corrupt:2:0",
            "prov:corrupt:x:1",
            "prov:melt:1",
            "prov:fpmismatch:1",
            "chan:2:drop",
        ] {
            assert!(s.parse::<ProvisionFault>().is_err(), "accepted bad spec '{s}'");
        }
    }

    #[test]
    fn only_torn_uploads_are_resumable() {
        assert!(ProvisionFault::TornUpload { after: 1 }.is_torn());
        assert!(!ProvisionFault::CorruptChunk { chunk: 0, mask: 1 }.is_torn());
        assert!(!ProvisionFault::FingerprintMismatch.is_torn());
    }
}
