//! Liveness faults: stalls and lossy channels.
//!
//! The bit-flip/FrameFlip/CVE families corrupt *values*; this family
//! attacks *progress*. A variant that hangs, lags, or whose response
//! channel silently drops frames never produces a wrong answer — it
//! produces no answer, which a checkpoint that waits forever cannot
//! distinguish from a slow one. These descriptors drive the straggler
//! watchdog (checkpoint deadlines escalating timeout → late-dissent →
//! quarantine) and the recovery manager the same way the value faults
//! drive voting.
//!
//! All faults are deterministic in the batch counter so campaign
//! scenarios replay exactly.

/// How a stalled variant misbehaves once the stall begins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallMode {
    /// Responds, but only after sleeping this many milliseconds per batch.
    Delay {
        /// Added latency per batch, in milliseconds.
        delay_ms: u64,
    },
    /// Never responds again: keeps consuming requests (the enclave is
    /// alive, its channel open) but produces nothing — the
    /// indistinguishable-from-slow worst case.
    Hang,
}

/// A deterministic per-variant scheduling stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallFault {
    /// First batch (inclusive) the stall affects.
    pub from_batch: u64,
    /// Delay or full hang.
    pub mode: StallMode,
}

/// How a lossy channel corrupts one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelFaultMode {
    /// The response frame for the target batch is silently dropped.
    Drop,
    /// The response frame is truncated mid-frame; the monitor-side decode
    /// fails and the channel is torn down.
    Truncate,
}

/// A deterministic one-shot response-channel fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelFault {
    /// The batch whose response frame is affected.
    pub on_batch: u64,
    /// Drop or truncate.
    pub mode: ChannelFaultMode,
}

/// A liveness fault injected into one variant host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessFault {
    /// Scheduling stall (delay or hang).
    Stall(StallFault),
    /// Lossy response channel.
    Channel(ChannelFault),
}

impl LivenessFault {
    /// Milliseconds to sleep before answering `batch` (0 when unaffected).
    pub fn delay_for(&self, batch: u64) -> u64 {
        match self {
            LivenessFault::Stall(StallFault {
                from_batch,
                mode: StallMode::Delay { delay_ms },
            }) if batch >= *from_batch => *delay_ms,
            _ => 0,
        }
    }

    /// Whether the variant hangs (consumes without responding) on `batch`.
    pub fn hangs_on(&self, batch: u64) -> bool {
        matches!(
            self,
            LivenessFault::Stall(StallFault { from_batch, mode: StallMode::Hang })
                if batch >= *from_batch
        )
    }

    /// Whether the response frame for `batch` is silently dropped.
    pub fn drops_on(&self, batch: u64) -> bool {
        matches!(
            self,
            LivenessFault::Channel(ChannelFault { on_batch, mode: ChannelFaultMode::Drop })
                if batch == *on_batch
        )
    }

    /// Whether the response frame for `batch` is truncated mid-frame.
    pub fn truncates_on(&self, batch: u64) -> bool {
        matches!(
            self,
            LivenessFault::Channel(ChannelFault { on_batch, mode: ChannelFaultMode::Truncate })
                if batch == *on_batch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_faults_are_batch_deterministic() {
        let hang = LivenessFault::Stall(StallFault { from_batch: 3, mode: StallMode::Hang });
        assert!(!hang.hangs_on(2));
        assert!(hang.hangs_on(3));
        assert!(hang.hangs_on(100));
        assert_eq!(hang.delay_for(3), 0);

        let delay = LivenessFault::Stall(StallFault {
            from_batch: 1,
            mode: StallMode::Delay { delay_ms: 40 },
        });
        assert_eq!(delay.delay_for(0), 0);
        assert_eq!(delay.delay_for(1), 40);
        assert!(!delay.hangs_on(9));
    }

    #[test]
    fn channel_faults_hit_exactly_one_batch() {
        let drop =
            LivenessFault::Channel(ChannelFault { on_batch: 2, mode: ChannelFaultMode::Drop });
        assert!(!drop.drops_on(1));
        assert!(drop.drops_on(2));
        assert!(!drop.drops_on(3));
        assert!(!drop.truncates_on(2));

        let trunc = LivenessFault::Channel(ChannelFault {
            on_batch: 4,
            mode: ChannelFaultMode::Truncate,
        });
        assert!(trunc.truncates_on(4));
        assert!(!trunc.truncates_on(5));
        assert!(!trunc.drops_on(4));
    }
}
