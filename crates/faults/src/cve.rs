//! CVE-class vulnerability simulators — the Table 1 reproduction.
//!
//! The paper's empirical analysis maps TensorFlow CVE classes to the
//! variant families that defend against them. Each [`CveClass`] here
//! carries (a) the observable *effect* of a successful exploit and (b) the
//! susceptibility rule: which variant configurations the exploit works
//! against. An [`Attack`] wraps a variant's [`PreparedModel`]; when the
//! trigger input arrives and the variant is susceptible, the effect
//! manifests — as a crash or a corrupted output — which is exactly the
//! signal MVTEE's checkpoints observe.
//!
//! | Class | Example CVE | Impact | Defending variants |
//! |---|---|---|---|
//! | OOB | CVE-2021-41226 / -41883 / -41900 / -25668 | DoS, corruption, R/W, code exec | different RT, bounds check, sanitizers, ASLR |
//! | UNP | CVE-2022-21739 / -25672 | DoS, incorrect results | different RT, sanitizers |
//! | FPE | CVE-2022-21725 | DoS, incorrect results | different RT, error handling, compiler |
//! | IO  | CVE-2022-21727 / -21733 | DoS, corruption, incorrect results | different RT, sanitizers, compiler |
//! | UAF | CVE-2021-37652 | DoS, corruption, code exec | different RT, sanitizers |
//! | ACF | CVE-2022-35935 | DoS | different RT, error handling |

use mvtee_diversify::VariantSpec;
use mvtee_runtime::{EngineKind, PreparedModel, Result as RtResult, RuntimeError};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The six vulnerability classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CveClass {
    /// Out-of-bound read/write.
    Oob,
    /// Uninitialized / null pointer dereference.
    Unp,
    /// Floating-point exception.
    Fpe,
    /// Integer overflow.
    Io,
    /// Use-after-free.
    Uaf,
    /// Assertion check failure.
    Acf,
}

impl CveClass {
    /// All classes.
    pub const ALL: [CveClass; 6] =
        [CveClass::Oob, CveClass::Unp, CveClass::Fpe, CveClass::Io, CveClass::Uaf, CveClass::Acf];

    /// A representative CVE identifier for display.
    pub fn example_cve(self) -> &'static str {
        match self {
            CveClass::Oob => "CVE-2021-41226",
            CveClass::Unp => "CVE-2022-21739",
            CveClass::Fpe => "CVE-2022-21725",
            CveClass::Io => "CVE-2022-21727",
            CveClass::Uaf => "CVE-2021-37652",
            CveClass::Acf => "CVE-2022-35935",
        }
    }

    /// Hardening capabilities (beyond "different RT") that defend this
    /// class, matching Table 1's "Variants e.g." column.
    pub fn defenses(self) -> &'static [&'static str] {
        match self {
            CveClass::Oob => &["bounds-check", "sanitizer-address"],
            CveClass::Unp => &["sanitizer-address"],
            CveClass::Fpe => &["error-handling", "compiler-checks"],
            CveClass::Io => &["sanitizer-address", "compiler-checks"],
            CveClass::Uaf => &["sanitizer-address"],
            CveClass::Acf => &["error-handling"],
        }
    }

    /// The observable effect of a successful exploit.
    pub fn effect(self) -> FaultEffect {
        match self {
            CveClass::Oob => FaultEffect::CorruptOutput,
            CveClass::Unp => FaultEffect::Crash,
            CveClass::Fpe => FaultEffect::NanOutput,
            CveClass::Io => FaultEffect::CorruptOutput,
            CveClass::Uaf => FaultEffect::CorruptOutput,
            CveClass::Acf => FaultEffect::Crash,
        }
    }

    /// Is a variant with `spec` susceptible to this class?
    ///
    /// Susceptibility rules (the Table 1 matrix):
    /// * the vulnerable runtime family is the ORT-like stack (the
    ///   framework the CVEs live in); *different RT* variants
    ///   (TVM-like, reference interpreter) do not contain the code,
    /// * any listed hardening capability on the variant defeats the
    ///   exploit,
    /// * the OOB code-execution path additionally needs a known address
    ///   layout: a non-zero ASLR seed randomises it away.
    pub fn affects(self, spec: &VariantSpec) -> bool {
        if spec.engine.kind != EngineKind::OrtLike {
            return false; // "Different RT" defends every class.
        }
        if self.defenses().iter().any(|d| spec.has_hardening(d)) {
            return false;
        }
        if self == CveClass::Oob && spec.aslr_seed != 0 {
            return false; // ASLR breaks the OOB exploit chain.
        }
        true
    }
}

impl fmt::Display for CveClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CveClass::Oob => "OOB",
            CveClass::Unp => "UNP",
            CveClass::Fpe => "FPE",
            CveClass::Io => "IO",
            CveClass::Uaf => "UAF",
            CveClass::Acf => "ACF",
        };
        write!(f, "{name}")
    }
}

/// How an exploited variant misbehaves, as observed at the output level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// The variant process dies (DoS / crash-type CVEs).
    Crash,
    /// Output tensor silently corrupted (R/W primitives, data corruption).
    CorruptOutput,
    /// Output becomes NaN (floating-point exceptions propagating).
    NanOutput,
}

/// When the malicious payload fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputTrigger {
    /// Every inference (the attacker owns the input stream).
    Always,
    /// Only when the first input element equals the magic marker (a
    /// crafted request among benign traffic).
    MagicMarker(f32),
}

impl InputTrigger {
    /// Does this input fire the trigger?
    pub fn fires(&self, inputs: &[Tensor]) -> bool {
        match self {
            InputTrigger::Always => true,
            InputTrigger::MagicMarker(m) => inputs
                .first()
                .and_then(|t| t.data().first())
                .map(|&v| v == *m)
                .unwrap_or(false),
        }
    }
}

/// A configured attack instance: class + trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attack {
    /// The exploited vulnerability class.
    pub class: CveClass,
    /// When it fires.
    pub trigger: InputTrigger,
}

impl Attack {
    /// An always-firing attack of the given class.
    pub fn new(class: CveClass) -> Self {
        Attack { class, trigger: InputTrigger::Always }
    }

    /// An attack fired by a magic marker input.
    pub fn with_marker(class: CveClass, marker: f32) -> Self {
        Attack { class, trigger: InputTrigger::MagicMarker(marker) }
    }

    /// Wraps a variant's prepared model: if the variant is susceptible,
    /// the exploit fires on triggering inputs.
    pub fn instrument(
        &self,
        inner: Box<dyn PreparedModel>,
        spec: &VariantSpec,
    ) -> Box<dyn PreparedModel> {
        Box::new(VulnerableModel {
            inner,
            attack: *self,
            susceptible: self.class.affects(spec),
            seed: spec.id.0,
        })
    }
}

/// A [`PreparedModel`] wrapper that manifests an exploit.
pub struct VulnerableModel {
    inner: Box<dyn PreparedModel>,
    attack: Attack,
    susceptible: bool,
    seed: u64,
}

impl VulnerableModel {
    /// Whether this instance will misbehave on triggering inputs.
    pub fn is_susceptible(&self) -> bool {
        self.susceptible
    }
}

impl PreparedModel for VulnerableModel {
    fn run(&self, inputs: &[Tensor]) -> RtResult<Vec<Tensor>> {
        let exploited = self.susceptible && self.attack.trigger.fires(inputs);
        if !exploited {
            return self.inner.run(inputs);
        }
        match self.attack.class.effect() {
            FaultEffect::Crash => Err(RuntimeError::Crashed {
                reason: format!(
                    "{} ({}) exploited: variant terminated",
                    self.attack.class,
                    self.attack.class.example_cve()
                ),
            }),
            FaultEffect::CorruptOutput => {
                let mut outputs = self.inner.run(inputs)?;
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0xbad_c0de);
                for out in &mut outputs {
                    // Overwrite a random span: the OOB/UAF write primitive
                    // scribbling over the result buffer.
                    let len = out.len();
                    if len == 0 {
                        continue;
                    }
                    let start = rng.gen_range(0..len);
                    let span = (len / 4).max(1);
                    let data = out.data_mut();
                    for i in 0..span {
                        let j = (start + i) % len;
                        data[j] = rng.gen_range(-1000.0..1000.0);
                    }
                }
                Ok(outputs)
            }
            FaultEffect::NanOutput => {
                let mut outputs = self.inner.run(inputs)?;
                for out in &mut outputs {
                    if let Some(v) = out.data_mut().first_mut() {
                        *v = f32::NAN;
                    }
                }
                Ok(outputs)
            }
        }
    }

    fn describe(&self) -> String {
        format!("{} [instrumented: {}]", self.inner.describe(), self.attack.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_diversify::spec::VariantSpec;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_runtime::{Engine, EngineConfig};

    fn prepared() -> Box<dyn PreparedModel> {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 31).unwrap();
        Engine::new(EngineConfig::of_kind(EngineKind::OrtLike)).prepare(&m.graph).unwrap()
    }

    fn input() -> Tensor {
        Tensor::ones(&[1, 3, 32, 32])
    }

    fn ort_spec() -> VariantSpec {
        VariantSpec::replicated(0, EngineKind::OrtLike)
    }

    #[test]
    fn different_rt_defends_every_class() {
        let tvm = VariantSpec::replicated(1, EngineKind::TvmLike);
        let reference = VariantSpec::replicated(2, EngineKind::Reference);
        for class in CveClass::ALL {
            assert!(!class.affects(&tvm), "{class} should not affect tvm");
            assert!(!class.affects(&reference), "{class} should not affect reference");
            assert!(class.affects(&ort_spec()), "{class} should affect plain ort");
        }
    }

    #[test]
    fn hardening_defends_matching_classes() {
        let mut hardened = ort_spec();
        hardened.hardening.push("sanitizer-address".into());
        assert!(!CveClass::Oob.affects(&hardened));
        assert!(!CveClass::Uaf.affects(&hardened));
        assert!(!CveClass::Unp.affects(&hardened));
        // Sanitizers do not stop FPE/ACF.
        assert!(CveClass::Fpe.affects(&hardened));
        assert!(CveClass::Acf.affects(&hardened));

        let mut error_handling = ort_spec();
        error_handling.hardening.push("error-handling".into());
        assert!(!CveClass::Fpe.affects(&error_handling));
        assert!(!CveClass::Acf.affects(&error_handling));
        assert!(CveClass::Oob.affects(&error_handling));
    }

    #[test]
    fn aslr_defends_oob_only() {
        let mut aslr = ort_spec();
        aslr.aslr_seed = 42;
        assert!(!CveClass::Oob.affects(&aslr));
        assert!(CveClass::Uaf.affects(&aslr));
        assert!(CveClass::Io.affects(&aslr));
    }

    #[test]
    fn crash_classes_kill_the_variant() {
        for class in [CveClass::Unp, CveClass::Acf] {
            let attacked = Attack::new(class).instrument(prepared(), &ort_spec());
            let err = attacked.run(&[input()]).unwrap_err();
            assert!(matches!(err, RuntimeError::Crashed { .. }), "{class}");
        }
    }

    #[test]
    fn corruption_classes_change_outputs() {
        let clean = prepared().run(&[input()]).unwrap().remove(0);
        for class in [CveClass::Oob, CveClass::Io, CveClass::Uaf] {
            let attacked = Attack::new(class).instrument(prepared(), &ort_spec());
            let out = attacked.run(&[input()]).unwrap().remove(0);
            assert_ne!(out, clean, "{class} corruption invisible");
        }
    }

    #[test]
    fn fpe_produces_nan() {
        let attacked = Attack::new(CveClass::Fpe).instrument(prepared(), &ort_spec());
        let out = attacked.run(&[input()]).unwrap().remove(0);
        assert!(out.data()[0].is_nan());
    }

    #[test]
    fn non_susceptible_variant_unaffected() {
        let tvm_spec = VariantSpec::replicated(3, EngineKind::TvmLike);
        // Instrument an (ORT-prepared) model with a TVM spec: not
        // susceptible, must behave identically to the clean model.
        let attacked = Attack::new(CveClass::Oob).instrument(prepared(), &tvm_spec);
        let clean = prepared().run(&[input()]).unwrap();
        assert_eq!(attacked.run(&[input()]).unwrap(), clean);
    }

    #[test]
    fn magic_marker_gates_the_exploit() {
        let attack = Attack::with_marker(CveClass::Acf, 1337.0);
        let attacked = attack.instrument(prepared(), &ort_spec());
        // Benign input: fine.
        assert!(attacked.run(&[input()]).is_ok());
        // Crafted input: crash.
        let mut crafted = input();
        crafted.data_mut()[0] = 1337.0;
        assert!(matches!(
            attacked.run(&[crafted]),
            Err(RuntimeError::Crashed { .. })
        ));
    }

    #[test]
    fn table1_matrix_shape() {
        // Every class must have at least one non-RT defense, and the
        // defense list must match Table 1's families.
        for class in CveClass::ALL {
            assert!(!class.defenses().is_empty(), "{class}");
            assert!(!class.example_cve().is_empty());
        }
    }
}
