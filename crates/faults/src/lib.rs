//! Fault and vulnerability injection for MVTEE's security evaluation.
//!
//! The paper's threat model targets (i) software memory-safety/runtime
//! errors in ML frameworks (the TensorFlow CVE classes of Table 1) and
//! (ii) faults in models or framework/library code (bit-flip attacks such
//! as Terminal Brain Damage and FrameFlip). This crate simulates both so
//! the security analysis is reproducible end-to-end:
//!
//! * [`bitflip`] — weight-targeted bit flips (exponent-MSB strategy for
//!   maximal accuracy damage, or random bits),
//! * [`blasfault`] — the FrameFlip analogue: a code-level fault in one
//!   BLAS backend; variants on other backends are unaffected,
//! * [`cve`] — six CVE-class simulators (OOB, UNP, FPE, IO, UAF, ACF)
//!   that fire only on variants whose configuration is susceptible,
//!   reproducing Table 1's "defending variants" matrix,
//! * [`liveness`] — progress faults (deterministic stalls/hangs, lossy
//!   response channels) that never corrupt a value but starve a
//!   checkpoint, exercising the straggler watchdog and recovery manager,
//! * [`netfault`] — wire-level faults (delay, stall, drop, duplicate,
//!   truncate, corrupt, torn write, disconnect) injected under the
//!   secure channel by a seeded [`FrameTransport`] wrapper, exercising
//!   AEAD detection, heartbeat deadlines and the connection supervisor,
//! * [`provision`] — chunked-model-upload faults (corrupt, truncated,
//!   dropped or reordered chunks, torn uploads, fingerprint mismatches)
//!   that the model registry must detect at provisioning time, before a
//!   variant ever runs the model.
//!
//! [`FrameTransport`]: mvtee_crypto::channel::FrameTransport
//!
//! Faults manifest exactly like the real thing at the MVX observation
//! level: a crash (the variant's run returns
//! [`mvtee_runtime::RuntimeError::Crashed`]) or a corrupted/divergent
//! output tensor — which is what the monitor's checkpoints must catch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitflip;
pub mod blasfault;
pub mod cve;
pub mod descriptor;
pub mod liveness;
pub mod netfault;
pub mod provision;

pub use bitflip::{flip_weight_bits, BitFlipStrategy, FlippedBit};
pub use blasfault::{FaultyBlas, FrameFlip, GemmCorruption};
pub use cve::{Attack, CveClass, FaultEffect, InputTrigger, VulnerableModel};
pub use descriptor::{BitFlipFault, FaultDescriptor};
pub use liveness::{ChannelFault, ChannelFaultMode, LivenessFault, StallFault, StallMode};
pub use netfault::{FaultDirection, FaultyTransport, NetFault, NetFaultClass};
pub use provision::{ProvisionFault, FAMILY_PROVISION};
