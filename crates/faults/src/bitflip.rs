//! Weight-targeted bit-flip faults (Rowhammer / Terminal-Brain-Damage
//! style).
//!
//! Hong et al. showed that flipping the *exponent MSB* of a single FP32
//! weight can degrade a DNN's accuracy gracelessly; random mantissa flips
//! are mostly harmless. Both strategies are provided: the targeted one for
//! attack simulation and the random one for baseline fault studies.

use mvtee_graph::{Graph, ValueId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which bits the injector flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitFlipStrategy {
    /// Flip the exponent MSB (bit 30) of the selected weights — the
    /// high-impact attack bits.
    ExponentMsb,
    /// Flip a uniformly random bit of the selected weights.
    RandomBit,
}

/// Record of one injected flip, for reporting and reversal.
#[derive(Debug, Clone, PartialEq)]
pub struct FlippedBit {
    /// Value id of the weight tensor.
    pub tensor: ValueId,
    /// Flat element index within the tensor.
    pub element: usize,
    /// Bit position flipped (0 = LSB of the FP32 representation).
    pub bit: u32,
    /// Weight value before the flip.
    pub before: f32,
    /// Weight value after the flip.
    pub after: f32,
}

/// Flips `count` weight bits in the graph's initializers in place.
///
/// Returns the flip records (empty when the graph has no parameters).
pub fn flip_weight_bits(
    graph: &mut Graph,
    strategy: BitFlipStrategy,
    count: usize,
    seed: u64,
) -> Vec<FlippedBit> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weight_ids: Vec<ValueId> = graph
        .initializers()
        .iter()
        .filter(|(_, t)| !t.is_empty())
        .map(|(v, _)| *v)
        .collect();
    if weight_ids.is_empty() {
        return Vec::new();
    }
    let mut flips = Vec::with_capacity(count);
    for _ in 0..count {
        let tensor_id = weight_ids[rng.gen_range(0..weight_ids.len())];
        let tensor = graph.initializer_mut(tensor_id).expect("listed initializer");
        let element = rng.gen_range(0..tensor.len());
        let bit = match strategy {
            BitFlipStrategy::ExponentMsb => 30,
            BitFlipStrategy::RandomBit => rng.gen_range(0..32),
        };
        let before = tensor.data()[element];
        let after = f32::from_bits(before.to_bits() ^ (1u32 << bit));
        tensor.data_mut()[element] = after;
        flips.push(FlippedBit { tensor: tensor_id, element, bit, before, after });
    }
    flips
}

/// Reverts previously injected flips (test helper).
pub fn revert_flips(graph: &mut Graph, flips: &[FlippedBit]) {
    for flip in flips.iter().rev() {
        if let Some(t) = graph.initializer_mut(flip.tensor) {
            t.data_mut()[flip.element] = flip.before;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_runtime::{Engine, EngineConfig, EngineKind};
    use mvtee_tensor::{metrics, Tensor};

    fn run(graph: &Graph, input: &Tensor) -> Tensor {
        Engine::new(EngineConfig::of_kind(EngineKind::OrtLike))
            .prepare(graph)
            .unwrap()
            .run(std::slice::from_ref(input))
            .unwrap()
            .remove(0)
    }

    #[test]
    fn exponent_flip_changes_magnitude_dramatically() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 17).unwrap();
        let mut g = m.graph.clone();
        let flips = flip_weight_bits(&mut g, BitFlipStrategy::ExponentMsb, 1, 3);
        assert_eq!(flips.len(), 1);
        let f = &flips[0];
        // Exponent MSB flip scales the weight by 2^±128-ish.
        assert_ne!(f.before, f.after);
        let ratio = (f.after.abs().log2() - f.before.abs().log2()).abs();
        assert!(ratio > 64.0 || f.after == 0.0 || !f.after.is_finite(), "ratio {ratio}");
    }

    #[test]
    fn flips_perturb_model_outputs() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 17).unwrap();
        let input = Tensor::ones(m.input_shape.dims());
        let clean = run(&m.graph, &input);
        let mut g = m.graph.clone();
        let flips = flip_weight_bits(&mut g, BitFlipStrategy::ExponentMsb, 4, 11);
        let faulty = run(&g, &input);
        // High-impact flips must be visible as output divergence (this is
        // exactly what MVX checkpoints detect).
        assert!(
            !metrics::allclose(&clean, &faulty, 1e-3, 1e-4),
            "exponent flips were invisible: max diff {}",
            metrics::max_abs_diff(&clean, &faulty)
        );
        assert_eq!(flips.len(), 4);
    }

    #[test]
    fn revert_restores_graph() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 17).unwrap();
        let mut g = m.graph.clone();
        let flips = flip_weight_bits(&mut g, BitFlipStrategy::RandomBit, 8, 5);
        revert_flips(&mut g, &flips);
        for (v, t) in m.graph.initializers() {
            assert_eq!(g.initializer(*v).unwrap(), t);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 17).unwrap();
        let mut g1 = m.graph.clone();
        let mut g2 = m.graph.clone();
        let f1 = flip_weight_bits(&mut g1, BitFlipStrategy::RandomBit, 3, 9);
        let f2 = flip_weight_bits(&mut g2, BitFlipStrategy::RandomBit, 3, 9);
        assert_eq!(f1, f2);
    }

    #[test]
    fn empty_graph_yields_no_flips() {
        let mut g = Graph::new("empty");
        assert!(flip_weight_bits(&mut g, BitFlipStrategy::RandomBit, 3, 1).is_empty());
    }
}
