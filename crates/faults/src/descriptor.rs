//! Scenario-enumerable fault descriptors.
//!
//! The campaign engine (`mvtee-campaign`) needs to *enumerate* the fault
//! space — every bit-flip strategy, FrameFlip target, and CVE class — and
//! to reconstruct any drawn fault exactly from a one-line textual spec so
//! a failing scenario can be replayed byte-for-byte. [`FaultDescriptor`]
//! is that closed, serialisable description: it carries everything needed
//! to instantiate the concrete fault objects ([`Attack`], [`FrameFlip`],
//! [`flip_weight_bits`] parameters) and round-trips through
//! `Display`/`FromStr`.
//!
//! Constructors follow proptest's `Arbitrary` style: a seeded RNG draws a
//! descriptor from the full space deterministically, so the same campaign
//! seed always yields the same fault sequence.

use crate::bitflip::BitFlipStrategy;
use crate::blasfault::{FrameFlip, GemmCorruption};
use crate::cve::{Attack, CveClass, InputTrigger};
use crate::liveness::{ChannelFault, ChannelFaultMode, StallFault, StallMode};
use crate::netfault::NetFault;
use mvtee_runtime::BlasKind;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::str::FromStr;

/// Parameters of a weight-targeted bit-flip fault, sealed into a variant's
/// subgraph at offline time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitFlipFault {
    /// Which bits are flipped.
    pub strategy: BitFlipStrategy,
    /// Number of flips.
    pub count: usize,
    /// RNG seed selecting the flipped weights.
    pub seed: u64,
}

/// One fault drawn from the full space the campaign enumerates.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultDescriptor {
    /// Weight bit flips applied to one variant's sealed subgraph.
    WeightBitFlip(BitFlipFault),
    /// Platform-wide BLAS code fault (FrameFlip).
    BlasFault(FrameFlip),
    /// A CVE-class exploit present on the variant hosts.
    Cve(Attack),
    /// A scheduling stall (delay or hang) on one variant host.
    Stall(StallFault),
    /// A lossy response channel (drop or truncation) on one variant host.
    Channel(ChannelFault),
    /// A wire-level transport fault on one variant's connection.
    Net(NetFault),
}

/// Bit-flip family row label.
pub const FAMILY_BITFLIP: &str = "bitflip";
/// FrameFlip family row label.
pub const FAMILY_FRAMEFLIP: &str = "frameflip";
/// Stall (liveness) family row label.
pub const FAMILY_STALL: &str = "stall";
/// Channel-fault (liveness) family row label.
pub const FAMILY_CHANNEL: &str = "chan";
/// Wire-level transport fault family row label.
pub const FAMILY_NET: &str = "net";

impl FaultDescriptor {
    /// Matrix row label: the fault class. CVE faults use the Table 1 class
    /// name (`OOB`, `UNP`, …); the other families use their family name.
    pub fn class_name(&self) -> String {
        match self {
            FaultDescriptor::WeightBitFlip(_) => FAMILY_BITFLIP.to_string(),
            FaultDescriptor::BlasFault(_) => FAMILY_FRAMEFLIP.to_string(),
            FaultDescriptor::Cve(a) => a.class.to_string(),
            FaultDescriptor::Stall(_) => FAMILY_STALL.to_string(),
            FaultDescriptor::Channel(_) => FAMILY_CHANNEL.to_string(),
            FaultDescriptor::Net(n) => format!("net-{}", n.class.token()),
        }
    }

    /// Coarse family name (`bitflip`, `frameflip`, `cve`, `stall`,
    /// `chan`, `net`).
    pub fn family(&self) -> &'static str {
        match self {
            FaultDescriptor::WeightBitFlip(_) => FAMILY_BITFLIP,
            FaultDescriptor::BlasFault(_) => FAMILY_FRAMEFLIP,
            FaultDescriptor::Cve(_) => "cve",
            FaultDescriptor::Stall(_) => FAMILY_STALL,
            FaultDescriptor::Channel(_) => FAMILY_CHANNEL,
            FaultDescriptor::Net(_) => FAMILY_NET,
        }
    }

    /// Draws a descriptor uniformly from the full fault space
    /// (`Arbitrary`-style; deterministic given the RNG state).
    pub fn arbitrary(rng: &mut StdRng) -> Self {
        match rng.gen_range(0..6) {
            0 => FaultDescriptor::WeightBitFlip(BitFlipFault::arbitrary(rng)),
            1 => FaultDescriptor::BlasFault(arbitrary_frameflip(rng)),
            2 => FaultDescriptor::Stall(arbitrary_stall(rng)),
            3 => FaultDescriptor::Channel(arbitrary_channel(rng)),
            4 => FaultDescriptor::Net(NetFault::arbitrary(rng)),
            _ => FaultDescriptor::Cve(arbitrary_attack(rng)),
        }
    }

    /// Convenience: draw from a fresh RNG seeded with `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Self::arbitrary(&mut StdRng::seed_from_u64(seed))
    }
}

impl BitFlipFault {
    /// Draws bit-flip parameters (1–4 flips, either strategy).
    pub fn arbitrary(rng: &mut StdRng) -> Self {
        let strategy = if rng.gen_bool(0.5) {
            BitFlipStrategy::ExponentMsb
        } else {
            BitFlipStrategy::RandomBit
        };
        BitFlipFault { strategy, count: rng.gen_range(1..=4), seed: rng.next_u64() }
    }
}

fn arbitrary_frameflip(rng: &mut StdRng) -> FrameFlip {
    let target = BlasKind::ALL[rng.gen_range(0..BlasKind::ALL.len())];
    let corruption = if rng.gen_bool(0.5) {
        GemmCorruption::ZeroPrefix { fraction: 0.3 }
    } else {
        GemmCorruption::BitFlipStride { stride: rng.gen_range(1..=4) }
    };
    FrameFlip { target, corruption }
}

fn arbitrary_stall(rng: &mut StdRng) -> StallFault {
    let from_batch = rng.gen_range(0..4);
    let mode = if rng.gen_bool(0.5) {
        StallMode::Hang
    } else {
        StallMode::Delay { delay_ms: rng.gen_range(1u64..=8) * 25 }
    };
    StallFault { from_batch, mode }
}

fn arbitrary_channel(rng: &mut StdRng) -> ChannelFault {
    let on_batch = rng.gen_range(0..4);
    let mode = if rng.gen_bool(0.5) {
        ChannelFaultMode::Drop
    } else {
        ChannelFaultMode::Truncate
    };
    ChannelFault { on_batch, mode }
}

fn arbitrary_attack(rng: &mut StdRng) -> Attack {
    let class = CveClass::ALL[rng.gen_range(0..CveClass::ALL.len())];
    // Marker triggers are only meaningful where raw inputs are visible
    // (partition 0); the scenario generator decides placement, so both
    // trigger kinds are drawable here.
    if rng.gen_bool(0.25) {
        Attack::with_marker(class, 1337.0)
    } else {
        Attack::new(class)
    }
}

fn blas_name(kind: BlasKind) -> &'static str {
    match kind {
        BlasKind::Naive => "naive",
        BlasKind::Blocked => "blocked",
        BlasKind::Strided => "strided",
    }
}

fn blas_from_name(name: &str) -> Result<BlasKind, String> {
    match name {
        "naive" => Ok(BlasKind::Naive),
        "blocked" => Ok(BlasKind::Blocked),
        "strided" => Ok(BlasKind::Strided),
        other => Err(format!("unknown blas kind '{other}'")),
    }
}

/// Lower-case CVE class token used in fault specs.
pub fn cve_class_token(class: CveClass) -> &'static str {
    match class {
        CveClass::Oob => "oob",
        CveClass::Unp => "unp",
        CveClass::Fpe => "fpe",
        CveClass::Io => "io",
        CveClass::Uaf => "uaf",
        CveClass::Acf => "acf",
    }
}

/// Parses the lower-case CVE class token.
pub fn cve_class_from_token(token: &str) -> Result<CveClass, String> {
    match token {
        "oob" => Ok(CveClass::Oob),
        "unp" => Ok(CveClass::Unp),
        "fpe" => Ok(CveClass::Fpe),
        "io" => Ok(CveClass::Io),
        "uaf" => Ok(CveClass::Uaf),
        "acf" => Ok(CveClass::Acf),
        other => Err(format!("unknown cve class '{other}'")),
    }
}

impl fmt::Display for FaultDescriptor {
    /// One-token spec, e.g. `bitflip:exp:2:13`, `frameflip:blocked:zero:0.3`,
    /// `cve:oob:always`, `cve:acf:marker:1337`, `stall:3:hang`,
    /// `stall:0:delay:50`, `chan:2:drop`, `chan:1:trunc`, `net:corrupt:1:99`,
    /// `net:disc:0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultDescriptor::WeightBitFlip(b) => {
                let s = match b.strategy {
                    BitFlipStrategy::ExponentMsb => "exp",
                    BitFlipStrategy::RandomBit => "rand",
                };
                write!(f, "bitflip:{s}:{}:{}", b.count, b.seed)
            }
            FaultDescriptor::BlasFault(ff) => {
                write!(f, "frameflip:{}:", blas_name(ff.target))?;
                match ff.corruption {
                    GemmCorruption::ZeroPrefix { fraction } => write!(f, "zero:{fraction}"),
                    GemmCorruption::BitFlipStride { stride } => write!(f, "stride:{stride}"),
                }
            }
            FaultDescriptor::Cve(a) => {
                write!(f, "cve:{}:", cve_class_token(a.class))?;
                match a.trigger {
                    InputTrigger::Always => write!(f, "always"),
                    InputTrigger::MagicMarker(m) => write!(f, "marker:{m}"),
                }
            }
            FaultDescriptor::Stall(s) => match s.mode {
                StallMode::Hang => write!(f, "stall:{}:hang", s.from_batch),
                StallMode::Delay { delay_ms } => {
                    write!(f, "stall:{}:delay:{delay_ms}", s.from_batch)
                }
            },
            FaultDescriptor::Channel(c) => match c.mode {
                ChannelFaultMode::Drop => write!(f, "chan:{}:drop", c.on_batch),
                ChannelFaultMode::Truncate => write!(f, "chan:{}:trunc", c.on_batch),
            },
            FaultDescriptor::Net(n) => write!(f, "{n}"),
        }
    }
}

impl FromStr for FaultDescriptor {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        let bad = |msg: &str| format!("bad fault spec '{s}': {msg}");
        match parts.as_slice() {
            ["bitflip", strategy, count, seed] => {
                let strategy = match *strategy {
                    "exp" => BitFlipStrategy::ExponentMsb,
                    "rand" => BitFlipStrategy::RandomBit,
                    other => return Err(bad(&format!("unknown strategy '{other}'"))),
                };
                let count = count.parse().map_err(|_| bad("bad count"))?;
                let seed = seed.parse().map_err(|_| bad("bad seed"))?;
                Ok(FaultDescriptor::WeightBitFlip(BitFlipFault { strategy, count, seed }))
            }
            ["frameflip", blas, kind, arg] => {
                let target = blas_from_name(blas).map_err(|e| bad(&e))?;
                let corruption = match *kind {
                    "zero" => GemmCorruption::ZeroPrefix {
                        fraction: arg.parse().map_err(|_| bad("bad fraction"))?,
                    },
                    "stride" => GemmCorruption::BitFlipStride {
                        stride: arg.parse().map_err(|_| bad("bad stride"))?,
                    },
                    other => return Err(bad(&format!("unknown corruption '{other}'"))),
                };
                Ok(FaultDescriptor::BlasFault(FrameFlip { target, corruption }))
            }
            ["cve", class, "always"] => {
                let class = cve_class_from_token(class).map_err(|e| bad(&e))?;
                Ok(FaultDescriptor::Cve(Attack::new(class)))
            }
            ["cve", class, "marker", m] => {
                let class = cve_class_from_token(class).map_err(|e| bad(&e))?;
                let marker = m.parse().map_err(|_| bad("bad marker"))?;
                Ok(FaultDescriptor::Cve(Attack::with_marker(class, marker)))
            }
            ["stall", from, "hang"] => {
                let from_batch = from.parse().map_err(|_| bad("bad batch"))?;
                Ok(FaultDescriptor::Stall(StallFault { from_batch, mode: StallMode::Hang }))
            }
            ["stall", from, "delay", ms] => {
                let from_batch = from.parse().map_err(|_| bad("bad batch"))?;
                let delay_ms = ms.parse().map_err(|_| bad("bad delay"))?;
                Ok(FaultDescriptor::Stall(StallFault {
                    from_batch,
                    mode: StallMode::Delay { delay_ms },
                }))
            }
            ["chan", on, "drop"] => {
                let on_batch = on.parse().map_err(|_| bad("bad batch"))?;
                Ok(FaultDescriptor::Channel(ChannelFault {
                    on_batch,
                    mode: ChannelFaultMode::Drop,
                }))
            }
            ["chan", on, "trunc"] => {
                let on_batch = on.parse().map_err(|_| bad("bad batch"))?;
                Ok(FaultDescriptor::Channel(ChannelFault {
                    on_batch,
                    mode: ChannelFaultMode::Truncate,
                }))
            }
            ["net", ..] => Ok(FaultDescriptor::Net(s.parse()?)),
            _ => Err(bad("unrecognised shape")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip() {
        let samples = [
            "bitflip:exp:2:13",
            "bitflip:rand:4:18446744073709551615",
            "frameflip:blocked:zero:0.3",
            "frameflip:naive:stride:2",
            "cve:oob:always",
            "cve:acf:marker:1337",
            "stall:3:hang",
            "stall:0:delay:50",
            "chan:2:drop",
            "chan:1:trunc",
            "net:delay:2:20",
            "net:stall:1",
            "net:drop:0",
            "net:dup:3",
            "net:trunc:2",
            "net:corrupt:1:7777",
            "net:torn:0",
            "net:disc:1",
        ];
        for s in samples {
            let d: FaultDescriptor = s.parse().unwrap();
            assert_eq!(d.to_string(), s, "round trip failed for {s}");
            let again: FaultDescriptor = d.to_string().parse().unwrap();
            assert_eq!(again, d);
        }
    }

    #[test]
    fn arbitrary_is_deterministic_and_round_trips() {
        for seed in 0..64 {
            let a = FaultDescriptor::from_seed(seed);
            let b = FaultDescriptor::from_seed(seed);
            assert_eq!(a, b);
            let re: FaultDescriptor = a.to_string().parse().unwrap();
            assert_eq!(re, a);
        }
    }

    #[test]
    fn arbitrary_covers_every_family() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..128 {
            seen.insert(FaultDescriptor::arbitrary(&mut rng).family());
        }
        assert!(seen.contains("bitflip"));
        assert!(seen.contains("frameflip"));
        assert!(seen.contains("cve"));
        assert!(seen.contains("stall"));
        assert!(seen.contains("chan"));
        assert!(seen.contains("net"));
    }

    #[test]
    fn class_names_match_table1() {
        for class in CveClass::ALL {
            let d = FaultDescriptor::Cve(Attack::new(class));
            assert_eq!(d.class_name(), class.to_string());
            assert_eq!(cve_class_from_token(cve_class_token(class)).unwrap(), class);
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in [
            "",
            "bitflip:exp:2",
            "frameflip:eigen:zero:0.3",
            "cve:xyz:always",
            "x:y",
            "stall:x:hang",
            "stall:1:freeze",
            "chan:2:corrupt",
            "net:melt:1",
            "net:drop:x",
        ] {
            assert!(s.parse::<FaultDescriptor>().is_err(), "accepted bad spec '{s}'");
        }
    }
}
