//! The FrameFlip analogue: a code-level fault in one BLAS backend.
//!
//! Li et al.'s FrameFlip flips fault-vulnerable bits in OpenBLAS's code
//! pages, silently corrupting *every* inference that routes through the
//! library — but "is ineffective against a variant using a different BLAS
//! implementation (e.g., Eigen or Intel MKL)" (paper §6.5). [`FrameFlip`]
//! models the platform-wide attack: it corrupts GEMM results of variants
//! configured with the targeted [`BlasKind`] and leaves others untouched.

use mvtee_runtime::{Blas, BlasKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the faulted kernel corrupts its output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GemmCorruption {
    /// Zero out a leading fraction of the output panel (instruction
    /// skipped / early loop exit — FrameFlip's dominant observed effect).
    ZeroPrefix {
        /// Fraction of output elements zeroed, in `(0, 1]`.
        fraction: f32,
    },
    /// Flip the exponent MSB of every `stride`-th output element.
    BitFlipStride {
        /// Corruption stride (1 = every element).
        stride: usize,
    },
}

/// A BLAS backend wrapped with a code-fault simulation.
pub struct FaultyBlas {
    inner: Arc<dyn Blas>,
    corruption: GemmCorruption,
    calls: AtomicU64,
}

impl FaultyBlas {
    /// Wraps `inner` with the given corruption.
    pub fn new(inner: Arc<dyn Blas>, corruption: GemmCorruption) -> Self {
        FaultyBlas { inner, corruption, calls: AtomicU64::new(0) }
    }

    /// Number of (corrupted) GEMM calls served.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Blas for FaultyBlas {
    fn name(&self) -> &str {
        // The fault is invisible in the backend's identity — the library
        // still *looks* like the original.
        self.inner.name()
    }

    fn gemm(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        self.inner.gemm(m, n, k, a, b, c);
        self.calls.fetch_add(1, Ordering::Relaxed);
        match self.corruption {
            GemmCorruption::ZeroPrefix { fraction } => {
                let upto = ((c.len() as f32) * fraction.clamp(0.0, 1.0)) as usize;
                for v in &mut c[..upto] {
                    *v = 0.0;
                }
            }
            GemmCorruption::BitFlipStride { stride } => {
                let stride = stride.max(1);
                for v in c.iter_mut().step_by(stride) {
                    *v = f32::from_bits(v.to_bits() ^ (1 << 30));
                }
            }
        }
    }
}

/// A platform-wide FrameFlip attack instance targeting one backend.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameFlip {
    /// The backend whose code pages the attack flipped.
    pub target: BlasKind,
    /// The induced corruption.
    pub corruption: GemmCorruption,
}

impl FrameFlip {
    /// The canonical attack: zero the first 30% of every GEMM output of
    /// the naive backend (the "OpenBLAS" stand-in).
    pub fn against(target: BlasKind) -> Self {
        FrameFlip { target, corruption: GemmCorruption::ZeroPrefix { fraction: 0.3 } }
    }

    /// Does the attack affect a variant configured with `blas`?
    pub fn affects(&self, blas: BlasKind) -> bool {
        blas == self.target
    }

    /// Resolves the BLAS instance a variant with `blas` would actually get
    /// on the attacked platform: the faulted library when targeted, the
    /// healthy one otherwise.
    pub fn resolve(&self, blas: BlasKind) -> Arc<dyn Blas> {
        let healthy = blas.instantiate();
        if self.affects(blas) {
            Arc::new(FaultyBlas::new(healthy, self.corruption))
        } else {
            healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_runtime::{Engine, EngineConfig, EngineKind};
    use mvtee_tensor::{metrics, Tensor};

    #[test]
    fn faulty_blas_corrupts_output() {
        let attack = FrameFlip::against(BlasKind::Naive);
        let faulty = attack.resolve(BlasKind::Naive);
        let healthy = BlasKind::Naive.instantiate();
        let a = vec![1.0f32; 16];
        let b = vec![1.0f32; 16];
        let mut c1 = vec![0.0f32; 16];
        let mut c2 = vec![0.0f32; 16];
        healthy.gemm(4, 4, 4, &a, &b, &mut c1);
        faulty.gemm(4, 4, 4, &a, &b, &mut c2);
        assert_ne!(c1, c2);
        // Prefix zeroed, suffix intact.
        assert_eq!(c2[0], 0.0);
        assert_eq!(c2[15], c1[15]);
    }

    #[test]
    fn untargeted_backend_is_healthy() {
        let attack = FrameFlip::against(BlasKind::Naive);
        assert!(attack.affects(BlasKind::Naive));
        assert!(!attack.affects(BlasKind::Blocked));
        let resolved = attack.resolve(BlasKind::Blocked);
        let mut c1 = vec![0.0f32; 4];
        let mut c2 = vec![0.0f32; 4];
        resolved.gemm(2, 2, 2, &[1.0; 4], &[1.0; 4], &mut c1);
        BlasKind::Blocked.instantiate().gemm(2, 2, 2, &[1.0; 4], &[1.0; 4], &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn name_is_unchanged_by_the_fault() {
        let attack = FrameFlip::against(BlasKind::Strided);
        assert_eq!(attack.resolve(BlasKind::Strided).name(), "strided-blas");
    }

    #[test]
    fn end_to_end_divergence_between_backends() {
        // Two replicated variants that differ only in BLAS backend: the
        // attacked one diverges, the other matches the clean baseline.
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 23).unwrap();
        let input = Tensor::ones(m.input_shape.dims());
        let attack = FrameFlip::against(BlasKind::Blocked);

        let clean = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike))
            .prepare(&m.graph)
            .unwrap()
            .run(std::slice::from_ref(&input))
            .unwrap()
            .remove(0);

        let cfg_attacked = EngineConfig::of_kind(EngineKind::OrtLike); // blocked blas
        let attacked = Engine::with_custom_blas(
            cfg_attacked.clone(),
            attack.resolve(cfg_attacked.blas),
        )
        .prepare(&m.graph)
        .unwrap()
        .run(std::slice::from_ref(&input))
        .unwrap()
        .remove(0);

        let cfg_other = EngineConfig::of_kind(EngineKind::OrtLike).with_blas(BlasKind::Strided);
        let unaffected = Engine::with_custom_blas(cfg_other.clone(), attack.resolve(cfg_other.blas))
            .prepare(&m.graph)
            .unwrap()
            .run(std::slice::from_ref(&input))
            .unwrap()
            .remove(0);

        assert!(
            !metrics::allclose(&clean, &attacked, 1e-3, 1e-4),
            "attack had no observable effect"
        );
        assert!(
            metrics::allclose(&clean, &unaffected, 1e-3, 1e-4),
            "different-BLAS variant should be unaffected: {}",
            metrics::max_abs_diff(&clean, &unaffected)
        );
    }

    #[test]
    fn call_counter_advances() {
        let faulty = FaultyBlas::new(
            BlasKind::Naive.instantiate(),
            GemmCorruption::BitFlipStride { stride: 2 },
        );
        let mut c = vec![0.0f32; 4];
        faulty.gemm(2, 2, 2, &[1.0; 4], &[1.0; 4], &mut c);
        faulty.gemm(2, 2, 2, &[1.0; 4], &[1.0; 4], &mut c);
        assert_eq!(faulty.calls(), 2);
    }
}
