//! Dependency-minimal observability for the MVTEE reproduction.
//!
//! The monitor, the inference runtime and the crypto layer all need the
//! same three primitives: monotone **counters** (divergences detected,
//! GEMM calls, bytes moved), point-in-time **gauges** (queue depths) and
//! latency **histograms** with quantile summaries (checkpoint latency,
//! seal/open cost, op dispatch). This crate provides them over plain
//! `std::sync::atomic` — no external dependencies — plus:
//!
//! * a thread-safe [`Registry`] that names metrics and hands out cheap
//!   cloneable handles,
//! * a process-wide [`global()`] registry that the instrumented crates
//!   record into,
//! * scoped [`Span`] timers that record into a histogram on drop,
//! * a point-in-time [`Snapshot`] with p50/p95/p99 summaries,
//! * a JSONL exporter/importer and a human-readable report table,
//! * a [`trace`] module: trace/span contexts, a bounded flight
//!   recorder, and a Chrome-trace exporter for per-request timelines.
//!
//! # Disabled mode
//!
//! [`Registry::disabled()`] (or [`set_enabled`]`(false)` on the global
//! registry) turns every record operation into a single relaxed atomic
//! load: handles stay valid, call sites stay compiled, nothing is
//! recorded and nothing allocates.
//!
//! ```
//! let registry = mvtee_telemetry::Registry::disabled();
//! let c = registry.counter("requests");
//! c.inc(); // one relaxed load, no store
//! assert_eq!(registry.snapshot().counters["requests"], 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod registry;
mod report;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Span};
pub use registry::{HistogramSummary, Registry, Snapshot};
pub use trace::{FlightDump, Recorder, SpanId, TraceCtx, TraceEvent, TraceId};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry the instrumented crates record into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Registers (or finds) a counter on the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Registers (or finds) a gauge on the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Registers (or finds) an HDR-style latency histogram on the global
/// registry (values in nanoseconds by convention).
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Snapshot of every metric on the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Enables or disables recording on the global registry.
pub fn set_enabled(enabled: bool) {
    global().set_enabled(enabled)
}

/// Zeroes every metric on the global registry (keeps registrations).
pub fn reset() {
    global().reset()
}
