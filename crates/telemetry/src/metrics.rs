//! The metric primitives: counters, gauges, histograms and span timers.
//!
//! All handles are cheap clones over `Arc`'d atomics; recording never
//! takes a lock. Every handle carries the owning registry's enabled
//! flag so a disabled registry costs exactly one relaxed load per
//! record call.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sub-buckets per power of two in the HDR-style layout: values 16..32
/// land one per bucket, and every later octave is split 16 ways, which
/// bounds the relative quantile error at ~3%.
const HDR_SUB_BUCKETS: u64 = 16;
/// Bucket count covering the full `u64` domain in the HDR layout.
const HDR_BUCKETS: usize = (HDR_SUB_BUCKETS as usize) * 61;

/// Monotone event counter.
#[derive(Debug, Clone)]
pub struct Counter {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1)
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed value (queue depths, live-variant counts).
#[derive(Debug, Clone)]
pub struct Gauge {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// How recorded values map onto bucket indices.
#[derive(Debug)]
pub(crate) enum Bucketing {
    /// Log-linear HDR-style layout covering all of `u64`.
    Hdr,
    /// Explicit inclusive upper bounds, ascending; one overflow bucket.
    Fixed(Vec<u64>),
}

impl Bucketing {
    pub(crate) fn bucket_count(&self) -> usize {
        match self {
            Bucketing::Hdr => HDR_BUCKETS,
            Bucketing::Fixed(bounds) => bounds.len() + 1,
        }
    }

    pub(crate) fn index_of(&self, v: u64) -> usize {
        match self {
            Bucketing::Hdr => hdr_index(v),
            Bucketing::Fixed(bounds) => bounds
                .iter()
                .position(|&b| v <= b)
                .unwrap_or(bounds.len()),
        }
    }

    /// A representative value for the bucket (used for quantiles).
    pub(crate) fn representative(&self, index: usize) -> u64 {
        match self {
            Bucketing::Hdr => hdr_representative(index),
            Bucketing::Fixed(bounds) => {
                bounds.get(index).copied().unwrap_or(u64::MAX)
            }
        }
    }
}

/// HDR layout: identity below 16, then 16 sub-buckets per octave.
pub(crate) fn hdr_index(v: u64) -> usize {
    if v < HDR_SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // >= 4
    let sub = (v >> (exp - 4)) & (HDR_SUB_BUCKETS - 1);
    (HDR_SUB_BUCKETS * (exp - 3) + sub) as usize
}

/// Inclusive lower bound of HDR bucket `index` (saturating above the
/// final bucket, whose upper edge sits past `u64::MAX`).
pub(crate) fn hdr_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * HDR_SUB_BUCKETS {
        return index;
    }
    let block = index / HDR_SUB_BUCKETS;
    let sub = index % HDR_SUB_BUCKETS;
    let exp = block + 3;
    let wide = u128::from(HDR_SUB_BUCKETS + sub) << (exp - 4);
    u64::try_from(wide).unwrap_or(u64::MAX)
}

fn hdr_representative(index: usize) -> u64 {
    let lower = hdr_lower_bound(index);
    if (index as u64) < 2 * HDR_SUB_BUCKETS {
        return lower; // exact buckets
    }
    let width = hdr_lower_bound(index + 1).saturating_sub(lower);
    lower + width / 2
}

#[derive(Debug)]
pub(crate) struct HistInner {
    pub(crate) bucketing: Bucketing,
    pub(crate) counts: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistInner {
    pub(crate) fn new(bucketing: Bucketing) -> Self {
        let n = bucketing.bucket_count();
        HistInner {
            bucketing,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.counts[self.bucketing.index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Quantile estimate from the bucket counts, clamped to the observed
    /// min/max so exact extremes are never overshot.
    pub(crate) fn quantile(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let rep = self.bucketing.representative(i);
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return rep.clamp(min, max);
            }
        }
        self.max.load(Ordering::Relaxed)
    }
}

/// Latency histogram with p50/p95/p99 summaries.
///
/// Values are plain `u64`s; the instrumented crates record nanoseconds.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub(crate) enabled: Arc<AtomicBool>,
    pub(crate) inner: Arc<HistInner>,
}

impl Histogram {
    /// Records one value.
    pub fn record(&self, v: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.record(v);
    }

    /// Records a duration as nanoseconds (saturating).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a scoped timer that records into this histogram on drop.
    ///
    /// When the registry is disabled this is a single relaxed load — the
    /// clock is never read.
    pub fn start(&self) -> Span {
        if !self.enabled.load(Ordering::Relaxed) {
            return Span { target: None };
        }
        Span { target: Some((Arc::clone(&self.inner), Instant::now())) }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Quantile estimate in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.quantile(q)
    }
}

/// Scoped timer: measures from [`Histogram::start`] until drop.
#[derive(Debug)]
pub struct Span {
    target: Option<(Arc<HistInner>, Instant)>,
}

impl Span {
    /// Stops the timer early and records; the drop becomes a no-op.
    pub fn finish(mut self) {
        self.record_now();
    }

    /// Abandons the span without recording.
    pub fn cancel(mut self) {
        self.target = None;
    }

    fn record_now(&mut self) {
        if let Some((inner, start)) = self.target.take() {
            inner.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdr_index_is_monotone_and_exact_below_32() {
        for v in 0..32u64 {
            assert_eq!(hdr_index(v), v as usize);
        }
        let mut last = 0;
        for v in [32u64, 33, 63, 64, 100, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = hdr_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            assert!(i < HDR_BUCKETS);
            // The representative stays within ~1/16 of the value.
            let lower = hdr_lower_bound(i);
            assert!(lower <= v, "lower bound {lower} above value {v}");
        }
    }

    #[test]
    fn fixed_buckets_route_by_upper_bound() {
        let b = Bucketing::Fixed(vec![10, 100, 1000]);
        assert_eq!(b.index_of(0), 0);
        assert_eq!(b.index_of(10), 0);
        assert_eq!(b.index_of(11), 1);
        assert_eq!(b.index_of(1000), 2);
        assert_eq!(b.index_of(1001), 3);
        assert_eq!(b.bucket_count(), 4);
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(512))]

        #[test]
        fn hdr_bucket_contains_its_value(v in proptest::arbitrary::any::<u64>()) {
            let i = hdr_index(v);
            proptest::prop_assert!(hdr_lower_bound(i) <= v, "lower bound above value");
            if i + 1 < HDR_BUCKETS {
                let next = hdr_lower_bound(i + 1);
                proptest::prop_assert!(
                    next == u64::MAX || v < next,
                    "value {v} at or past next bucket's lower bound {next}"
                );
            }
        }

        #[test]
        fn hdr_index_is_monotone(a in proptest::arbitrary::any::<u64>(),
                                 b in proptest::arbitrary::any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            proptest::prop_assert!(hdr_index(lo) <= hdr_index(hi));
        }

        #[test]
        fn hdr_representative_within_relative_error(v in 0u64..u64::MAX / 2) {
            let rep = hdr_representative(hdr_index(v));
            let err = rep.abs_diff(v);
            // Exact below 32; 16 sub-buckets per octave above that bounds
            // the error at one bucket width (≤ v/16).
            proptest::prop_assert!(
                err <= v / 16 + u64::from(v >= 32),
                "representative {rep} too far from {v}"
            );
        }
    }

    #[test]
    fn span_records_on_drop() {
        let enabled = Arc::new(AtomicBool::new(true));
        let h = Histogram {
            enabled,
            inner: Arc::new(HistInner::new(Bucketing::Hdr)),
        };
        {
            let _span = h.start();
        }
        assert_eq!(h.count(), 1);
        h.start().cancel();
        assert_eq!(h.count(), 1);
        h.start().finish();
        assert_eq!(h.count(), 2);
    }
}
