//! End-to-end request tracing and the flight recorder.
//!
//! A [`TraceCtx`] names one causal chain (one serve request, one
//! pipeline batch, one recovery attempt) and is threaded through the
//! serving frontend, the pipeline coordinators, the variant hosts, the
//! inference runtime and the secure channels. Each instrumented site
//! opens a [`SpanGuard`] (duration span) or emits an instant event; the
//! process-wide [`Recorder`] keeps the most recent events in a sharded
//! ring buffer.
//!
//! # Cost model
//!
//! Tracing is **off by default**. Every entry point ([`Recorder::span`],
//! [`Recorder::instant`], [`Recorder::complete`], [`Recorder::dump`])
//! checks one relaxed atomic load first and returns an inert guard
//! without touching the clock, allocating, or taking a lock. Call sites
//! that need to format argument strings should gate that work on
//! [`Recorder::is_enabled`]; [`SpanGuard::arg`] itself formats only when
//! the guard is live.
//!
//! # Flight recorder
//!
//! [`Recorder::dump`] snapshots the last [`FLIGHT_DUMP_EVENTS`] events
//! into a bounded list of [`FlightDump`]s. The instrumented crates call
//! it on divergence, variant crash, admission shed and recovery
//! completion, so the causal chain leading into an incident survives
//! even after the ring wraps.
//!
//! # Ambient context
//!
//! Crates that cannot thread a context through their API (the runtime
//! interpreter, the crypto channels) read the per-thread ambient
//! context: coordinators and variant hosts call [`set_current`] when
//! they pick up a batch, and leaf spans parent themselves under
//! [`current`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring shards (threads are spread round-robin across them).
const SHARDS: usize = 8;
/// Default per-shard ring capacity of the global recorder.
const DEFAULT_SHARD_CAPACITY: usize = 4096;
/// Events captured per flight dump (the "last N" window) — sized so the
/// window spans a full request's per-op spans across every variant of a
/// small model, keeping the request root visible at incident time.
pub const FLIGHT_DUMP_EVENTS: usize = 2048;
/// Bounded number of retained flight dumps; older dumps are discarded.
pub const FLIGHT_DUMP_SLOTS: usize = 8;

/// Identifies one causal chain (request, batch or recovery attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A propagated trace context: the trace plus the current parent span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The trace this work belongs to.
    pub trace: TraceId,
    /// The span that parents new child spans.
    pub span: SpanId,
}

/// SplitMix64: deterministic 64-bit mixing for trace-id derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceCtx {
    /// The absent context: no trace, no parent.
    pub const NONE: TraceCtx = TraceCtx { trace: TraceId(0), span: SpanId(0) };

    /// Whether this is the absent context.
    pub fn is_none(self) -> bool {
        self.trace.0 == 0
    }

    fn root(trace: u64) -> TraceCtx {
        // A zero-valued derivation would alias NONE; nudge it.
        let trace = if trace == 0 { 1 } else { trace };
        TraceCtx { trace: TraceId(trace), span: SpanId(trace) }
    }

    /// Deterministic root context for a serve request id.
    pub fn for_request(id: u64) -> TraceCtx {
        Self::root(splitmix64(id ^ 0x0052_4551_5545_5354)) // "REQUEST"
    }

    /// Deterministic root context for a locally submitted pipeline batch.
    pub fn for_batch(batch: u64) -> TraceCtx {
        Self::root(splitmix64(batch ^ 0x0042_4154_4348)) // "BATCH"
    }

    /// Deterministic root context for a recovery attempt, keyed by the
    /// quarantined variant's coordinates and channel epoch.
    pub fn for_recovery(partition: usize, variant: usize, epoch: u64) -> TraceCtx {
        let key = splitmix64(partition as u64)
            ^ splitmix64(variant as u64).rotate_left(17)
            ^ splitmix64(epoch ^ 0x0052_4543_4f56); // "RECOV"
        Self::root(splitmix64(key))
    }

    /// Raw `(trace, span)` pair for wire transport.
    pub fn as_pair(self) -> (u64, u64) {
        (self.trace.0, self.span.0)
    }

    /// Rebuilds a context from its wire pair.
    pub fn from_pair(pair: (u64, u64)) -> TraceCtx {
        TraceCtx { trace: TraceId(pair.0), span: SpanId(pair.1) }
    }
}

/// Whether an event is a duration span or a point-in-time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A closed duration span.
    Span,
    /// An instantaneous event.
    Instant,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Owning trace id.
    pub trace: u64,
    /// This event's span id (recorder-unique).
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Span name, e.g. `core.checkpoint`.
    pub name: String,
    /// Logical track (rendered as a Chrome-trace thread), e.g. `p0`.
    pub track: String,
    /// Start offset in nanoseconds from the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Span or instant.
    pub kind: TraceEventKind,
    /// Key/value annotations.
    pub args: Vec<(String, String)>,
}

/// A snapshot of the recent-event window taken at an incident.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the dump was taken (shed, divergence, crash, recovery...).
    pub reason: String,
    /// The captured events, oldest first.
    pub events: Vec<TraceEvent>,
}

#[derive(Debug, Default)]
struct Shard {
    ring: VecDeque<TraceEvent>,
}

/// Lock-light bounded recorder for trace events.
///
/// Threads are spread round-robin over [`SHARDS`] independent
/// mutex-protected rings, so concurrent recording rarely contends.
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    next_span: AtomicU64,
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    dropped: AtomicU64,
    dumps: Mutex<VecDeque<FlightDump>>,
    events_total: OnceLock<crate::Counter>,
    dropped_total: OnceLock<crate::Counter>,
    dumps_total: OnceLock<crate::Counter>,
}

impl Recorder {
    /// A disabled recorder with `shard_capacity` events per shard.
    pub fn new(shard_capacity: usize) -> Recorder {
        Recorder {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            next_span: AtomicU64::new(1),
            shard_capacity,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            dropped: AtomicU64::new(0),
            dumps: Mutex::new(VecDeque::new()),
            events_total: OnceLock::new(),
            dropped_total: OnceLock::new(),
            dumps_total: OnceLock::new(),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on (one relaxed load).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens a duration span under `ctx`; recorded when the guard drops.
    ///
    /// Disabled recorders hand back an inert guard whose
    /// [`SpanGuard::ctx`] still returns `ctx`, so propagation code works
    /// identically with tracing off.
    pub fn span<'a>(&'a self, ctx: TraceCtx, name: &str, track: &str) -> SpanGuard<'a> {
        if !self.is_enabled() {
            return SpanGuard { rec: self, fallback: ctx, data: None };
        }
        self.open(ctx, name, track, Instant::now(), TraceEventKind::Span)
    }

    /// Emits a point-in-time event under `ctx` (recorded on drop, so
    /// annotations can be chained with [`SpanGuard::arg`]).
    pub fn instant<'a>(&'a self, ctx: TraceCtx, name: &str, track: &str) -> SpanGuard<'a> {
        if !self.is_enabled() {
            return SpanGuard { rec: self, fallback: ctx, data: None };
        }
        self.open(ctx, name, track, Instant::now(), TraceEventKind::Instant)
    }

    /// Opens a span whose start time is the externally measured
    /// `start` (e.g. a request's admission timestamp); the guard closes
    /// it on drop as usual.
    pub fn complete<'a>(
        &'a self,
        ctx: TraceCtx,
        name: &str,
        track: &str,
        start: Instant,
    ) -> SpanGuard<'a> {
        if !self.is_enabled() {
            return SpanGuard { rec: self, fallback: ctx, data: None };
        }
        self.open(ctx, name, track, start, TraceEventKind::Span)
    }

    fn open<'a>(
        &'a self,
        ctx: TraceCtx,
        name: &str,
        track: &str,
        start: Instant,
        kind: TraceEventKind,
    ) -> SpanGuard<'a> {
        let span = self.next_span.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            rec: self,
            fallback: ctx,
            data: Some(Box::new(SpanData {
                trace: ctx.trace.0,
                span,
                parent: ctx.span.0,
                name: name.to_owned(),
                track: track.to_owned(),
                start,
                kind,
                args: Vec::new(),
            })),
        }
    }

    fn record(&self, data: SpanData) {
        let now = Instant::now();
        let start_ns = data
            .start
            .saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let dur_ns = match data.kind {
            TraceEventKind::Span => {
                now.saturating_duration_since(data.start).as_nanos().min(u64::MAX as u128) as u64
            }
            TraceEventKind::Instant => 0,
        };
        let event = TraceEvent {
            trace: data.trace,
            span: data.span,
            parent: data.parent,
            name: data.name,
            track: data.track,
            start_ns,
            dur_ns,
            kind: data.kind,
            args: data.args,
        };
        let shard = &self.shards[shard_index()];
        let mut guard = shard.lock().expect("trace shard lock");
        if guard.ring.len() >= self.shard_capacity {
            guard.ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_total
                .get_or_init(|| crate::counter("trace.dropped_total"))
                .inc();
        }
        guard.ring.push_back(event);
        drop(guard);
        self.events_total
            .get_or_init(|| crate::counter("trace.events_total"))
            .inc();
    }

    /// Number of events evicted from the ring since the last clear.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out every retained event, ordered by start time.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for shard in &self.shards {
            events.extend(shard.lock().expect("trace shard lock").ring.iter().cloned());
        }
        events.sort_by_key(|e| (e.start_ns, e.span));
        events
    }

    /// Takes a flight dump: snapshots the last [`FLIGHT_DUMP_EVENTS`]
    /// events under `reason`. Keeps at most [`FLIGHT_DUMP_SLOTS`] dumps,
    /// discarding the oldest. No-op while disabled.
    pub fn dump(&self, reason: &str) {
        if !self.is_enabled() {
            return;
        }
        let mut events = self.snapshot();
        if events.len() > FLIGHT_DUMP_EVENTS {
            events.drain(..events.len() - FLIGHT_DUMP_EVENTS);
        }
        let mut dumps = self.dumps.lock().expect("trace dumps lock");
        if dumps.len() >= FLIGHT_DUMP_SLOTS {
            dumps.pop_front();
        }
        dumps.push_back(FlightDump { reason: reason.to_owned(), events });
        drop(dumps);
        self.dumps_total
            .get_or_init(|| crate::counter("trace.dumps_total"))
            .inc();
    }

    /// Copies out the retained flight dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().expect("trace dumps lock").iter().cloned().collect()
    }

    /// Discards all retained events and flight dumps.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("trace shard lock").ring.clear();
        }
        self.dumps.lock().expect("trace dumps lock").clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct SpanData {
    trace: u64,
    span: u64,
    parent: u64,
    name: String,
    track: String,
    start: Instant,
    kind: TraceEventKind,
    args: Vec<(String, String)>,
}

/// An open span (or pending instant); records into the recorder on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    fallback: TraceCtx,
    data: Option<Box<SpanData>>,
}

impl SpanGuard<'_> {
    /// The child context for work nested under this span. Inert guards
    /// pass the original context through unchanged.
    pub fn ctx(&self) -> TraceCtx {
        match &self.data {
            Some(d) => TraceCtx { trace: TraceId(d.trace), span: SpanId(d.span) },
            None => self.fallback,
        }
    }

    /// Attaches a key/value annotation. Formats `value` only when the
    /// guard is live, so disabled tracing pays nothing here.
    pub fn arg(mut self, key: &str, value: impl Display) -> Self {
        if let Some(data) = self.data.as_mut() {
            data.args.push((key.to_owned(), value.to_string()));
        }
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            self.rec.record(*data);
        }
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder the instrumented crates record into.
/// Starts disabled.
pub fn recorder() -> &'static Recorder {
    GLOBAL.get_or_init(|| Recorder::new(DEFAULT_SHARD_CAPACITY))
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn shard_index() -> usize {
    THREAD_SHARD.with(|slot| {
        let mut idx = slot.get();
        if idx == usize::MAX {
            idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(idx);
        }
        idx
    })
}

/// Sets this thread's ambient trace context (used by leaf spans in the
/// runtime and crypto layers that cannot thread a context explicitly).
pub fn set_current(ctx: TraceCtx) {
    CURRENT.with(|slot| slot.set(ctx.as_pair()));
}

/// This thread's ambient trace context ([`TraceCtx::NONE`] if unset).
pub fn current() -> TraceCtx {
    CURRENT.with(|slot| TraceCtx::from_pair(slot.get()))
}

/// Registers the `trace.*` counters so they show up (zero-valued) in
/// reports before the first event is recorded.
pub fn register_trace_metrics() {
    for name in ["trace.events_total", "trace.dropped_total", "trace.dumps_total"] {
        crate::counter(name);
    }
}

/// Renders events as Chrome-trace / Perfetto JSON (`chrome://tracing`,
/// <https://ui.perfetto.dev>). Tracks become named threads of one
/// process; durations are `X` events, instants are `i` events.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut tracks: Vec<&str> = events.iter().map(|e| e.track.as_str()).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let tid_of = |track: &str| -> usize {
        tracks.binary_search(&track).map(|i| i + 1).unwrap_or(0)
    };
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (i, track) in tracks.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            i + 1,
            json_escape(track)
        );
    }
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        let ts_us = e.start_ns as f64 / 1_000.0;
        match e.kind {
            TraceEventKind::Span => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":\"mvtee\",\"ts\":{ts_us:.3},\"dur\":{:.3}",
                    tid_of(&e.track),
                    json_escape(&e.name),
                    e.dur_ns as f64 / 1_000.0,
                );
            }
            TraceEventKind::Instant => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":\"mvtee\",\"ts\":{ts_us:.3},\"s\":\"t\"",
                    tid_of(&e.track),
                    json_escape(&e.name),
                );
            }
        }
        let _ = write!(
            out,
            ",\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:x}\",\"parent\":\"{:x}\"",
            e.trace, e.span, e.parent
        );
        for (k, v) in &e.args {
            let _ = write!(out, ",{}:{}", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_contexts_are_deterministic_and_distinct() {
        assert_eq!(TraceCtx::for_request(7), TraceCtx::for_request(7));
        assert_ne!(TraceCtx::for_request(7), TraceCtx::for_request(8));
        assert_ne!(TraceCtx::for_request(7), TraceCtx::for_batch(7));
        assert_ne!(
            TraceCtx::for_recovery(0, 1, 2),
            TraceCtx::for_recovery(1, 0, 2)
        );
        assert!(!TraceCtx::for_request(0).is_none());
    }

    #[test]
    fn wire_pair_round_trips() {
        let ctx = TraceCtx::for_request(99);
        assert_eq!(TraceCtx::from_pair(ctx.as_pair()), ctx);
        assert_eq!(TraceCtx::from_pair(TraceCtx::NONE.as_pair()), TraceCtx::NONE);
    }

    #[test]
    fn spans_nest_and_record() {
        let rec = Recorder::new(64);
        rec.set_enabled(true);
        let root = TraceCtx::for_request(1);
        {
            let outer = rec.span(root, "outer", "t").arg("k", "v");
            let inner_ctx = outer.ctx();
            assert_eq!(inner_ctx.trace, root.trace);
            assert_ne!(inner_ctx.span, root.span);
            let _inner = rec.span(inner_ctx, "inner", "t");
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        let inner = events.iter().find(|e| e.name == "inner").expect("inner");
        assert_eq!(outer.parent, root.span.0);
        assert_eq!(inner.parent, outer.span);
        assert_eq!(outer.args, vec![("k".to_owned(), "v".to_owned())]);
        assert_eq!(inner.trace, root.trace.0);
    }

    #[test]
    fn disabled_recorder_records_nothing_and_passes_ctx_through() {
        let rec = Recorder::new(64);
        let ctx = TraceCtx::for_batch(3);
        {
            let g = rec.span(ctx, "quiet", "t").arg("k", 1);
            assert_eq!(g.ctx(), ctx);
        }
        rec.instant(ctx, "quiet2", "t");
        rec.dump("no-op");
        assert!(rec.snapshot().is_empty());
        assert!(rec.dumps().is_empty());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = Recorder::new(4);
        rec.set_enabled(true);
        let ctx = TraceCtx::for_batch(0);
        for i in 0..40 {
            rec.instant(ctx, "e", "t").arg("i", i);
        }
        // Everything lands on this thread's single shard, so exactly
        // `capacity` events survive.
        assert_eq!(rec.snapshot().len(), 4);
        assert_eq!(rec.dropped(), 36);
    }

    #[test]
    fn flight_dumps_are_bounded() {
        let rec = Recorder::new(16);
        rec.set_enabled(true);
        let ctx = TraceCtx::for_batch(0);
        rec.instant(ctx, "before", "t");
        for i in 0..(FLIGHT_DUMP_SLOTS + 3) {
            rec.dump(&format!("reason-{i}"));
        }
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), FLIGHT_DUMP_SLOTS);
        assert_eq!(dumps[0].reason, "reason-3");
        assert!(dumps[0].events.iter().any(|e| e.name == "before"));
    }

    #[test]
    fn instants_have_zero_duration() {
        let rec = Recorder::new(16);
        rec.set_enabled(true);
        rec.instant(TraceCtx::for_batch(1), "mark", "t");
        let events = rec.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].dur_ns, 0);
        assert_eq!(events[0].kind, TraceEventKind::Instant);
    }

    #[test]
    fn ambient_context_is_per_thread() {
        set_current(TraceCtx::for_request(5));
        assert_eq!(current(), TraceCtx::for_request(5));
        let other = std::thread::spawn(current).join().expect("joins");
        assert_eq!(other, TraceCtx::NONE);
        set_current(TraceCtx::NONE);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let rec = Recorder::new(16);
        rec.set_enabled(true);
        {
            let _s = rec.span(TraceCtx::for_request(1), "serve.request", "serve").arg("id", 1);
        }
        rec.instant(TraceCtx::for_request(1), "serve.shed", "serve");
        let json = chrome_trace(&rec.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"serve.request\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn clear_discards_events_and_dumps() {
        let rec = Recorder::new(16);
        rec.set_enabled(true);
        rec.instant(TraceCtx::for_batch(1), "e", "t");
        rec.dump("incident");
        rec.clear();
        assert!(rec.snapshot().is_empty());
        assert!(rec.dumps().is_empty());
        assert_eq!(rec.dropped(), 0);
    }
}
