//! The named-metric registry and its snapshots.

use crate::metrics::{Bucketing, Counter, Gauge, HistInner, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Shared {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistInner>>>,
}

/// A thread-safe collection of named metrics.
///
/// Handle lookup takes a lock; call sites on hot paths should fetch
/// their handles once (they are cheap `Arc` clones) and record through
/// them. Cloning the registry shares the underlying metrics.
#[derive(Debug, Clone)]
pub struct Registry {
    shared: Arc<Shared>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    fn with_enabled(enabled: bool) -> Self {
        Registry {
            shared: Arc::new(Shared {
                enabled: Arc::new(AtomicBool::new(enabled)),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// An enabled, empty registry.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A registry whose record operations are single-relaxed-load no-ops.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// Turns recording on or off for every handle of this registry.
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or finds) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.shared.counters.lock().expect("registry lock");
        let value = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            enabled: Arc::clone(&self.shared.enabled),
            value: Arc::clone(value),
        }
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.shared.gauges.lock().expect("registry lock");
        let value = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge {
            enabled: Arc::clone(&self.shared.enabled),
            value: Arc::clone(value),
        }
    }

    /// Registers (or finds) the HDR-style histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_inner(name, || Bucketing::Hdr)
    }

    /// Registers (or finds) a fixed-bucket histogram with the given
    /// ascending inclusive upper `bounds` (plus one overflow bucket).
    /// Bounds are used only on first registration.
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && !bounds.is_empty(),
            "histogram bounds must be non-empty and strictly ascending"
        );
        self.histogram_inner(name, || Bucketing::Fixed(bounds.to_vec()))
    }

    fn histogram_inner(&self, name: &str, bucketing: impl FnOnce() -> Bucketing) -> Histogram {
        let mut map = self.shared.histograms.lock().expect("registry lock");
        let inner = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistInner::new(bucketing())));
        Histogram {
            enabled: Arc::clone(&self.shared.enabled),
            inner: Arc::clone(inner),
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .shared
            .counters
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .shared
            .gauges
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .shared
            .histograms
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, h)| (k.clone(), HistogramSummary::of(h)))
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// Zeroes every metric, keeping names and handles registered.
    pub fn reset(&self) {
        for v in self.shared.counters.lock().expect("registry lock").values() {
            v.store(0, Ordering::Relaxed);
        }
        for v in self.shared.gauges.lock().expect("registry lock").values() {
            v.store(0, Ordering::Relaxed);
        }
        for h in self.shared.histograms.lock().expect("registry lock").values() {
            h.reset();
        }
    }
}

/// Summary statistics for one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    fn of(h: &HistInner) -> Self {
        let count = h.count.load(Ordering::Relaxed);
        let sum = h.sum.load(Ordering::Relaxed);
        let min = h.min.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max: h.max.load(Ordering::Relaxed),
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }

    /// Rebuilds a summary from its exported fields (mean recomputed).
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        p50: u64,
        p95: u64,
        p99: u64,
    ) -> Self {
        HistogramSummary {
            count,
            sum,
            min,
            max,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50,
            p95,
            p99,
        }
    }
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}
