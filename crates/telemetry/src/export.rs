//! JSONL export/import for [`Snapshot`]s.
//!
//! One JSON object per line, three shapes:
//!
//! ```text
//! {"kind":"counter","name":"crypto.channel.bytes_out","value":4096}
//! {"kind":"gauge","name":"core.pipeline.p0.queue_depth","value":3}
//! {"kind":"histogram","name":"core.pipeline.p0.checkpoint_latency_ns",
//!  "count":32,"sum":123456,"min":800,"max":9000,"p50":3100,"p95":8200,"p99":9000}
//! ```
//!
//! The importer accepts exactly this schema (any key order) so exported
//! snapshots round-trip; it is not a general JSON parser.

use crate::registry::{HistogramSummary, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

impl Snapshot {
    /// Serialises the snapshot as JSON lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":{},\"value\":{value}}}",
                json_string(name)
            );
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":{},\"value\":{value}}}",
                json_string(name)
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_string(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p95,
                h.p99
            );
        }
        out
    }

    /// Parses a snapshot back from [`Snapshot::to_jsonl`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields = parse_object(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = fields
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing kind", lineno + 1))?;
            let name = fields
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing name", lineno + 1))?
                .to_owned();
            let int = |key: &str| -> Result<i128, String> {
                fields
                    .get(key)
                    .and_then(JsonValue::as_int)
                    .ok_or_else(|| format!("line {}: missing {key}", lineno + 1))
            };
            match kind {
                "counter" => {
                    snap.counters.insert(name, int("value")? as u64);
                }
                "gauge" => {
                    snap.gauges.insert(name, int("value")? as i64);
                }
                "histogram" => {
                    snap.histograms.insert(
                        name,
                        HistogramSummary::from_parts(
                            int("count")? as u64,
                            int("sum")? as u64,
                            int("min")? as u64,
                            int("max")? as u64,
                            int("p50")? as u64,
                            int("p95")? as u64,
                            int("p99")? as u64,
                        ),
                    );
                }
                other => return Err(format!("line {}: unknown kind {other:?}", lineno + 1)),
            }
        }
        Ok(snap)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug)]
enum JsonValue {
    Str(String),
    Int(i128),
}

impl JsonValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            JsonValue::Int(_) => None,
        }
    }

    fn as_int(&self) -> Option<i128> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Str(_) => None,
        }
    }
}

/// Parses one flat `{"key":value,...}` object with string/integer values.
fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = line.chars().peekable();
    let mut fields = BTreeMap::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '-' || c.is_ascii_digit() {
                        num.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Int(num.parse().map_err(|_| format!("bad number {num:?}"))?)
            }
            other => return Err(format!("unexpected value start {other:?}")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn expect(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    want: char,
) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4)
                        .map(|_| chars.next().unwrap_or('\u{0}'))
                        .collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn round_trip_preserves_everything() {
        let r = Registry::new();
        r.counter("a.count").add(42);
        r.gauge("b.depth").set(-7);
        let h = r.histogram("c.latency_ns");
        for v in [100u64, 200, 300, 4000, 50_000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let text = snap.to_jsonl();
        let back = Snapshot::from_jsonl(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn escaped_names_survive() {
        let r = Registry::new();
        r.counter("weird \"name\"\\with\tescapes").add(1);
        let snap = r.snapshot();
        let back = Snapshot::from_jsonl(&snap.to_jsonl()).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert_eq!(Snapshot::from_jsonl(&snap.to_jsonl()).expect("parses"), snap);
    }

    #[test]
    fn rerender_is_byte_identical() {
        // export -> parse -> re-render must be lossless down to the byte,
        // independent of registration order.
        let r = Registry::new();
        r.gauge("z.depth").set(3);
        r.counter("m.count").add(9);
        r.histogram("a.latency_ns").record(1234);
        r.counter("a.count").add(1);
        let text = r.snapshot().to_jsonl();
        let back = Snapshot::from_jsonl(&text).expect("parses");
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn export_order_is_deterministic() {
        // Two registries fed the same metrics in different orders must
        // export identical bytes: kinds grouped, names sorted within.
        let a = Registry::new();
        a.counter("b").inc();
        a.counter("a").inc();
        a.gauge("g2").set(1);
        a.gauge("g1").set(1);
        let b = Registry::new();
        b.gauge("g1").set(1);
        b.gauge("g2").set(1);
        b.counter("a").inc();
        b.counter("b").inc();
        assert_eq!(a.snapshot().to_jsonl(), b.snapshot().to_jsonl());
        assert_eq!(a.snapshot().to_jsonl().lines().count(), 4);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Snapshot::from_jsonl("{\"kind\":\"counter\"}").is_err());
        assert!(Snapshot::from_jsonl("not json").is_err());
        assert!(
            Snapshot::from_jsonl("{\"kind\":\"rate\",\"name\":\"x\",\"value\":1}").is_err()
        );
    }
}
