//! Human-readable report rendering for [`Snapshot`]s.

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Formats a nanosecond quantity with an adaptive unit.
pub fn format_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

impl Snapshot {
    /// Renders the snapshot as an aligned plain-text report.
    ///
    /// Histogram columns are formatted as durations because every
    /// instrumented histogram in this workspace records nanoseconds.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== telemetry report ==");
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
        {
            let _ = writeln!(out, "(no metrics recorded)");
            return out;
        }
        let name_width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(4)
            .max(4);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<name_width$}  {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<name_width$}  {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            let _ = writeln!(
                out,
                "  {:<name_width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                "name", "count", "p50", "p95", "p99", "max", "mean"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<name_width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                    name,
                    h.count,
                    format_nanos(h.p50),
                    format_nanos(h.p95),
                    format_nanos(h.p99),
                    format_nanos(h.max),
                    format_nanos(h.mean as u64),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn adaptive_units() {
        assert_eq!(format_nanos(12), "12 ns");
        assert_eq!(format_nanos(1_500), "1.5 us");
        assert_eq!(format_nanos(2_500_000), "2.50 ms");
        assert_eq!(format_nanos(3_200_000_000), "3.200 s");
    }

    #[test]
    fn report_mentions_every_metric() {
        let r = Registry::new();
        r.counter("events.divergence").add(2);
        r.gauge("queue.depth").set(5);
        r.histogram("checkpoint_ns").record(1_000_000);
        let rendered = r.snapshot().render();
        assert!(rendered.contains("events.divergence"));
        assert!(rendered.contains("queue.depth"));
        assert!(rendered.contains("checkpoint_ns"));
        assert!(rendered.contains("p95"));
    }

    #[test]
    fn empty_report_is_explicit() {
        assert!(Registry::new().snapshot().render().contains("no metrics"));
    }
}
