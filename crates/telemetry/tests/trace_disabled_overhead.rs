//! Proves the trace layer's disabled-mode contract: with tracing off,
//! every entry point (span open, instant, complete, arg annotation,
//! flight dump, ambient-context reads) is a single relaxed atomic load
//! plus trivial `Copy` moves — no clock reads and, asserted here, no
//! allocator traffic. Kept as the only test in this binary so no
//! parallel test can allocate during the measured window.

use mvtee_telemetry::trace::{self, Recorder, TraceCtx};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_trace_paths_do_not_allocate() {
    // Force one-time initialisation (global recorder, thread-locals,
    // thread shard assignment) outside the measured window.
    let global = trace::recorder();
    assert!(!global.is_enabled(), "tracing must start disabled");
    let local = Recorder::new(16);
    let ctx = TraceCtx::for_request(1);
    trace::set_current(ctx);
    let epoch = Instant::now();
    {
        let warm = local.span(ctx, "warm", "t");
        drop(warm);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let g = global.span(ctx, "hot.span", "track").arg("i", i);
        assert_eq!(g.ctx(), ctx); // inert guards pass the ctx through
        drop(g);
        drop(global.instant(ctx, "hot.instant", "track"));
        drop(global.complete(ctx, "hot.complete", "track", epoch));
        global.dump("never");
        drop(local.span(trace::current(), "hot.local", "track"));
        trace::set_current(ctx);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after, before, "disabled trace path allocated");

    // And nothing was recorded anywhere.
    assert!(global.snapshot().is_empty());
    assert!(global.dumps().is_empty());
    assert!(local.snapshot().is_empty());
}
