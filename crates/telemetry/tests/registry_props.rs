//! Behavioural tests for the registry through its public API only:
//! quantile math, concurrency, and the disabled-mode contract.

use mvtee_telemetry::Registry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantile estimates stay within the HDR layout's relative-error
    /// bound of the true (sorted-rank) percentile.
    #[test]
    fn quantiles_track_true_percentiles(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        q_raw in 0u32..=100,
    ) {
        let q = f64::from(q_raw) / 100.0;
        let r = Registry::new();
        let h = r.histogram("q");
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = h.quantile(q);
        prop_assert!(
            est.abs_diff(truth) <= truth / 16 + u64::from(truth >= 32),
            "quantile({q}) = {est}, true percentile {truth}"
        );
    }

    /// Quantiles are monotone in `q` and clamped to the observed range.
    #[test]
    fn quantiles_monotone_and_clamped(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..100),
    ) {
        let r = Registry::new();
        let h = r.histogram("m");
        for &v in &values {
            h.record(v);
        }
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let mut last = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            prop_assert!(est >= last, "quantile({q}) regressed: {est} < {last}");
            prop_assert!((min..=max).contains(&est), "quantile({q}) = {est} outside [{min}, {max}]");
            last = est;
        }
    }

    /// Fixed-bucket histograms clamp the top quantile to the exact max,
    /// and the bottom quantile lands on the min's bucket bound.
    #[test]
    fn fixed_buckets_pin_extremes(
        values in proptest::collection::vec(0u64..5_000, 1..50),
    ) {
        const BOUNDS: [u64; 4] = [10, 100, 1_000, 10_000];
        let r = Registry::new();
        let h = r.histogram_with_bounds("f", &BOUNDS);
        for &v in &values {
            h.record(v);
        }
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        prop_assert_eq!(h.quantile(1.0), max);
        // The bottom quantile reports the min's bucket upper bound,
        // clamped into the observed range.
        let min_bound = *BOUNDS.iter().find(|&&b| min <= b).expect("in range");
        prop_assert_eq!(h.quantile(0.0), min_bound.clamp(min, max));
    }
}

/// Eight threads hammering cloned handles of the same counter and
/// histogram lose no increments.
#[test]
fn concurrent_increments_from_eight_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let r = Registry::new();
    let c = r.counter("hits");
    let h = r.histogram("lat");
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let c = c.clone();
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(t as u64 * PER_THREAD + i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("thread");
    }
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    let snap = r.snapshot();
    assert_eq!(snap.counters["hits"], THREADS as u64 * PER_THREAD);
    assert_eq!(snap.histograms["lat"].count, THREADS as u64 * PER_THREAD);
}

/// A disabled registry records nothing, but every call site still works.
#[test]
fn disabled_registry_records_nothing() {
    let r = Registry::disabled();
    assert!(!r.is_enabled());
    let c = r.counter("c");
    let g = r.gauge("g");
    let h = r.histogram("h");
    c.inc();
    c.add(100);
    g.set(7);
    g.add(-3);
    h.record(42);
    h.record_duration(std::time::Duration::from_millis(5));
    h.start().finish();
    drop(h.start());
    let snap = r.snapshot();
    assert_eq!(snap.counters["c"], 0);
    assert_eq!(snap.gauges["g"], 0);
    assert_eq!(snap.histograms["h"].count, 0);

    // Re-enabling the same registry makes the SAME handles live.
    r.set_enabled(true);
    c.inc();
    h.record(1);
    let snap = r.snapshot();
    assert_eq!(snap.counters["c"], 1);
    assert_eq!(snap.histograms["h"].count, 1);
}

/// Reset zeroes values but keeps registrations and handles valid.
#[test]
fn reset_keeps_registrations() {
    let r = Registry::new();
    let c = r.counter("x");
    c.add(9);
    r.histogram("y").record(5);
    r.reset();
    let snap = r.snapshot();
    assert_eq!(snap.counters["x"], 0);
    assert_eq!(snap.histograms["y"].count, 0);
    c.inc();
    assert_eq!(r.snapshot().counters["x"], 1);
}
