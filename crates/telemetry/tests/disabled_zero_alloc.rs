//! Proves the disabled-mode contract: once handles exist, record calls on
//! a disabled registry never touch the allocator (they are a single
//! relaxed atomic load). Kept as the only test in this binary so no
//! parallel test can allocate during the measured window.

use mvtee_telemetry::Registry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_record_paths_do_not_allocate() {
    let registry = Registry::disabled();
    let counter = registry.counter("c");
    let gauge = registry.gauge("g");
    let histogram = registry.histogram("h");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        counter.inc();
        counter.add(i);
        gauge.set(i as i64);
        gauge.add(-1);
        histogram.record(i);
        histogram.start().finish();
        drop(histogram.start());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after, before, "disabled record path allocated");

    // And nothing was recorded.
    let snap = registry.snapshot();
    assert_eq!(snap.counters["c"], 0);
    assert_eq!(snap.gauges["g"], 0);
    assert_eq!(snap.histograms["h"].count, 0);
}
