//! Byte-identity of the SIMD microkernel path: the 8-lane wide loop and
//! its scalar per-lane fallback must agree bit-for-bit (that is what makes
//! the runtime CPU-feature check invisible to the strategy table), and the
//! `SimdMicrokernel` kernel strategy must emit the same bytes at every
//! thread count — including shapes below `min_parallel_elems`, where the
//! pool runs the kernel sequentially, and unaligned tails shorter than the
//! 8-lane block.

use mvtee_runtime::kernels::{
    conv2d_im2col_strategic, gemm_fc_strategic, matmul_strategic, ConvAttrs,
};
use mvtee_runtime::simd::{dot8, dot8_spec, gemm_bt, LANES};
use mvtee_runtime::{GemmStrategy, KernelCtx, RuntimeConfig, ThreadPool};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A context whose pool genuinely spawns `t` workers and parallelises even
/// proptest-sized shapes (threshold dropped to a single element).
fn eager_ctx(t: usize) -> KernelCtx {
    KernelCtx::new(ThreadPool::new(RuntimeConfig {
        intra_op_threads: t,
        max_parallelism: 8,
        min_parallel_elems: 1,
    }))
}

/// A context with the production threshold: small shapes stay sequential.
fn default_ctx(t: usize) -> KernelCtx {
    KernelCtx::new(ThreadPool::new(RuntimeConfig::with_threads(t)))
}

fn seeded(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn dot8_matches_its_scalar_fallback_bitwise() {
    // Aligned multiples of the lane width, unaligned tails, and sub-lane
    // lengths — whichever organisation the feature check picked, the
    // public entry point must equal the per-lane reference exactly.
    for len in [0, 1, 3, LANES - 1, LANES, LANES + 1, 24, 100, 255, 256, 257, 4093] {
        let a = seeded(len, 0x51AD);
        let b = seeded(len, 0xB07D);
        assert_eq!(
            dot8(&a, &b).to_bits(),
            dot8_spec(&a, &b).to_bits(),
            "dot8 organisations diverged at len {len}"
        );
    }
}

#[test]
fn gemm_bt_is_invariant_to_output_row_splits() {
    // Every output element of the microkernel GEMM is an independent
    // dot8, so computing any row subset in isolation must reproduce the
    // monolithic bytes — the property the pool's chunking relies on.
    let (m, n, k) = (7, 5, 27);
    let a = seeded(m * k, 1);
    let bt = seeded(n * k, 2);
    let mut whole = vec![0.0f32; m * n];
    gemm_bt(m, n, k, &a, &bt, &mut whole);
    for split in 1..m {
        let mut parts = vec![0.0f32; m * n];
        gemm_bt(split, n, k, &a[..split * k], &bt, &mut parts[..split * n]);
        gemm_bt(m - split, n, k, &a[split * k..], &bt, &mut parts[split * n..]);
        let eq = whole.iter().zip(&parts).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(eq, "gemm_bt row split at {split} changed bytes");
    }
}

#[test]
fn simd_gemm_fc_is_bitwise_thread_invariant() {
    // Shapes chosen to hit: aligned k (multiple of 8), unaligned tails,
    // sub-lane k, batch-1 and batched, and a sub-`min_parallel_elems`
    // output (3×2 elements stays sequential under the default threshold).
    let shapes: [(usize, usize, usize); 5] =
        [(1, 64, 32), (3, 7, 2), (4, 33, 9), (1, 5, 128), (2, 256, 17)];
    for (n, k, m) in shapes {
        let mut rng = StdRng::seed_from_u64((n * 31 + k * 7 + m) as u64);
        let x = Tensor::random_uniform(&mut rng, &[n, k], 1.0);
        let w = Tensor::random_uniform(&mut rng, &[m, k], 0.5);
        let b = Tensor::random_uniform(&mut rng, &[m], 0.5);
        let blas = mvtee_runtime::BlasKind::Blocked.instantiate();
        let reference = gemm_fc_strategic(
            &default_ctx(1),
            &x,
            &w,
            Some(&b),
            blas.as_ref(),
            None,
            GemmStrategy::SimdMicrokernel,
        )
        .expect("runs");
        for t in THREADS {
            for ctx in [eager_ctx(t), default_ctx(t)] {
                let out = gemm_fc_strategic(
                    &ctx,
                    &x,
                    &w,
                    Some(&b),
                    blas.as_ref(),
                    None,
                    GemmStrategy::SimdMicrokernel,
                )
                .expect("runs");
                assert_eq!(
                    bits(&reference),
                    bits(&out),
                    "simd gemm_fc n={n} k={k} m={m} drifted at threads={t}"
                );
            }
        }
    }
}

#[test]
fn simd_matmul_is_bitwise_thread_invariant() {
    let shapes: [(usize, usize, usize); 4] = [(2, 9, 5), (1, 8, 8), (5, 40, 3), (3, 13, 21)];
    for (m, k, n) in shapes {
        let mut rng = StdRng::seed_from_u64((m * 131 + k * 17 + n) as u64);
        let a = Tensor::random_uniform(&mut rng, &[m, k], 1.0);
        let b = Tensor::random_uniform(&mut rng, &[k, n], 0.5);
        let blas = mvtee_runtime::BlasKind::Naive.instantiate();
        let reference =
            matmul_strategic(&default_ctx(1), &a, &b, blas.as_ref(), GemmStrategy::SimdMicrokernel)
                .expect("runs");
        for t in THREADS {
            for ctx in [eager_ctx(t), default_ctx(t)] {
                let out =
                    matmul_strategic(&ctx, &a, &b, blas.as_ref(), GemmStrategy::SimdMicrokernel)
                        .expect("runs");
                assert_eq!(
                    bits(&reference),
                    bits(&out),
                    "simd matmul m={m} k={k} n={n} drifted at threads={t}"
                );
            }
        }
    }
}

#[test]
fn simd_im2col_conv_is_bitwise_thread_invariant() {
    // Grouped and ungrouped convs; the 6×6 single-channel case keeps the
    // whole output below the production parallel threshold.
    let cases: [(usize, usize, usize, usize); 3] = [(3, 4, 8, 1), (1, 1, 6, 1), (4, 4, 7, 2)];
    for (c, oc, hw, groups) in cases {
        let mut rng = StdRng::seed_from_u64((c * 7 + oc * 3 + hw + groups) as u64);
        let x = Tensor::random_uniform(&mut rng, &[2, c, hw, hw], 1.0);
        let w = Tensor::random_uniform(&mut rng, &[oc, c / groups, 3, 3], 0.5);
        let b = Tensor::random_uniform(&mut rng, &[oc], 0.5);
        let attrs = ConvAttrs { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups };
        let blas = mvtee_runtime::BlasKind::Strided.instantiate();
        let reference = conv2d_im2col_strategic(
            &default_ctx(1),
            &x,
            &w,
            Some(&b),
            &attrs,
            blas.as_ref(),
            GemmStrategy::SimdMicrokernel,
        )
        .expect("runs");
        for t in THREADS {
            for ctx in [eager_ctx(t), default_ctx(t)] {
                let out = conv2d_im2col_strategic(
                    &ctx,
                    &x,
                    &w,
                    Some(&b),
                    &attrs,
                    blas.as_ref(),
                    GemmStrategy::SimdMicrokernel,
                )
                .expect("runs");
                assert_eq!(
                    bits(&reference),
                    bits(&out),
                    "simd im2col c={c} oc={oc} hw={hw} g={groups} drifted at threads={t}"
                );
            }
        }
    }
}
