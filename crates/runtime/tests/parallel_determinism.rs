//! Bit-exactness of the deterministic intra-op pool: every kernel and
//! every full zoo forward pass must produce **byte-identical** tensors at
//! any `intra_op_threads`, for all three engine families. Chunk
//! boundaries are a pure function of problem size and the configured
//! `max_parallelism`, never of the live thread count — these tests pin
//! that invariant down to the bit level.

use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_runtime::kernels::{conv2d_im2col, conv2d_im2col_with, gemm_fc, gemm_fc_with, softmax, softmax_with, ConvAttrs};
use mvtee_runtime::{
    Accumulation, BlasKind, Engine, EngineConfig, EngineKind, KernelCtx, RuntimeConfig,
    ThreadPool,
};
use mvtee_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// A context whose pool genuinely spawns `t` workers: the parallel-region
/// threshold is dropped to 1 so even proptest-sized shapes cross it.
fn ctx(t: usize) -> KernelCtx {
    KernelCtx::new(ThreadPool::new(RuntimeConfig {
        intra_op_threads: t,
        max_parallelism: 8,
        min_parallel_elems: 1,
    }))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

#[derive(Debug, Clone)]
struct Case {
    dims: Vec<usize>,
    seed: u64,
}

fn gemm_case() -> impl Strategy<Value = Case> {
    (1usize..6, 1usize..24, 1usize..24, any::<u64>())
        .prop_map(|(n, k, m, seed)| Case { dims: vec![n, k, m], seed })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_fc_is_bitwise_thread_invariant(case in gemm_case()) {
        let (n, k, m) = (case.dims[0], case.dims[1], case.dims[2]);
        let mut rng = StdRng::seed_from_u64(case.seed);
        let x = Tensor::random_uniform(&mut rng, &[n, k], 1.0);
        let w = Tensor::random_uniform(&mut rng, &[m, k], 0.5);
        let b = Tensor::random_uniform(&mut rng, &[m], 0.5);
        for blas in BlasKind::ALL {
            let backend = blas.instantiate();
            let reference = gemm_fc(&x, &w, Some(&b), backend.as_ref()).expect("runs");
            for t in THREADS {
                let out = gemm_fc_with(&ctx(t), &x, &w, Some(&b), backend.as_ref(), None)
                    .expect("runs");
                prop_assert_eq!(
                    bits(&reference),
                    bits(&out),
                    "gemm_fc({}) n={} k={} m={} drifted at threads={}",
                    blas, n, k, m, t
                );
            }
        }
    }

    #[test]
    fn conv2d_im2col_is_bitwise_thread_invariant(
        c in 1usize..5, oc in 1usize..5, hw in 4usize..10, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&mut rng, &[2, c, hw, hw], 1.0);
        let w = Tensor::random_uniform(&mut rng, &[oc, c, 3, 3], 0.5);
        let b = Tensor::random_uniform(&mut rng, &[oc], 0.5);
        let attrs = ConvAttrs { kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 1 };
        for blas in BlasKind::ALL {
            let backend = blas.instantiate();
            let reference =
                conv2d_im2col(&x, &w, Some(&b), &attrs, backend.as_ref()).expect("runs");
            for t in THREADS {
                let out = conv2d_im2col_with(&ctx(t), &x, &w, Some(&b), &attrs, backend.as_ref())
                    .expect("runs");
                prop_assert_eq!(
                    bits(&reference),
                    bits(&out),
                    "conv2d_im2col({}) c={} oc={} hw={} drifted at threads={}",
                    blas, c, oc, hw, t
                );
            }
        }
    }

    #[test]
    fn softmax_is_bitwise_thread_invariant(
        outer in 1usize..6, axis_len in 1usize..12, inner in 1usize..6, seed in any::<u64>()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&mut rng, &[outer, axis_len, inner], 2.0);
        for acc in [Accumulation::Sequential, Accumulation::Tree] {
            let reference = softmax(&x, 1, acc).expect("runs");
            for t in THREADS {
                let out = softmax_with(&ctx(t), &x, 1, acc).expect("runs");
                prop_assert_eq!(
                    bits(&reference),
                    bits(&out),
                    "softmax {}x{}x{} ({:?}) drifted at threads={}",
                    outer, axis_len, inner, acc, t
                );
            }
        }
    }
}

#[test]
fn zoo_forward_passes_are_bitwise_thread_invariant() {
    // Full models through real engines (default parallelism thresholds):
    // each family must emit the same bytes at every thread count.
    let families = [EngineKind::Reference, EngineKind::OrtLike, EngineKind::TvmLike];
    for kind in [ModelKind::MnasNet, ModelKind::MobileNetV3, ModelKind::ResNet50] {
        let model = zoo::build(kind, ScaleProfile::Test, 17).expect("builds");
        let n = model.input_shape.num_elements();
        let input = Tensor::from_vec(
            (0..n).map(|i| ((i % 89) as f32 - 44.0) / 44.0).collect(),
            model.input_shape.dims(),
        )
        .expect("static shape");
        for family in families {
            let reference = Engine::new(EngineConfig::of_kind(family))
                .prepare(&model.graph)
                .expect("prepares")
                .run(std::slice::from_ref(&input))
                .expect("runs");
            for t in THREADS {
                let out = Engine::new(EngineConfig::of_kind(family).with_threads(t))
                    .prepare(&model.graph)
                    .expect("prepares")
                    .run(std::slice::from_ref(&input))
                    .expect("runs");
                assert_eq!(
                    reference, out,
                    "{family:?} on {kind:?} drifted at intra_op_threads={t}"
                );
            }
        }
    }
}

#[test]
fn tvm_complex_schedule_is_bitwise_thread_invariant() {
    // The NHWC direct schedule exercises conv2d_nhwc_direct's row split.
    let model = zoo::build(ModelKind::GoogleNet, ScaleProfile::Test, 5).expect("builds");
    let n = model.input_shape.num_elements();
    let input = Tensor::from_vec(
        (0..n).map(|i| ((i % 61) as f32 - 30.0) / 30.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape");
    let reference = Engine::new(EngineConfig::tvm_complex())
        .prepare(&model.graph)
        .expect("prepares")
        .run(std::slice::from_ref(&input))
        .expect("runs");
    for t in THREADS {
        let out = Engine::new(EngineConfig::tvm_complex().with_threads(t))
            .prepare(&model.graph)
            .expect("prepares")
            .run(std::slice::from_ref(&input))
            .expect("runs");
        assert_eq!(reference, out, "tvm_complex drifted at intra_op_threads={t}");
    }
}
