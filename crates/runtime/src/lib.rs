//! Diversified DNN inference runtimes for the MVTEE reproduction.
//!
//! The paper's variants execute on heterogeneous inference stacks — ONNX
//! Runtime with different execution providers, TVM graph executors with
//! different auto-tuned schedules, different BLAS backends (OpenBLAS, Eigen,
//! Intel MKL). This crate rebuilds that diversity surface in Rust:
//!
//! * [`blas`] — three interchangeable GEMM backends with distinct loop
//!   orders, blocking and accumulation behaviour (the OpenBLAS / Eigen /
//!   MKL stand-ins; also the attachment point for FrameFlip-style code
//!   faults),
//! * [`kernels`] — operator kernels (direct and im2col convolutions in
//!   NCHW and NHWC, poolings, normalisations, activations, …),
//! * [`optimize`] — graph optimisation passes (BN folding, identity
//!   elimination) used both by the ORT-like executor and by the
//!   *selective optimisation* diversification of §4.2,
//! * [`engine`] — the [`Engine`]/[`PreparedModel`] abstraction with three
//!   families: [`EngineKind::Reference`] (naive interpreter),
//!   [`EngineKind::OrtLike`] (graph-optimising, im2col + blocked GEMM) and
//!   [`EngineKind::TvmLike`] ("compiled schedules": NHWC layout,
//!   tree-reduction accumulation, tunable kernels).
//!
//! Functionally all engines are equivalent; numerically they differ in
//! floating-point rounding exactly as real heterogeneous stacks do, which is
//! the benign divergence MVTEE's thresholded checks must tolerate.
//!
//! # Example
//!
//! ```
//! use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
//! use mvtee_runtime::{Engine, EngineConfig, EngineKind};
//! use mvtee_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1)?;
//! let engine = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
//! let prepared = engine.prepare(&model.graph)?;
//! let input = Tensor::ones(model.input_shape.dims());
//! let outputs = prepared.run(&[input])?;
//! assert_eq!(outputs.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas;
pub mod cache;
pub mod engine;
mod error;
pub mod kernels;
pub mod optimize;
pub mod pool;
pub mod simd;
pub mod strategy;

pub use blas::{Blas, BlasKind, BlockedBlas, NaiveBlas, StridedBlas};
pub use cache::{
    graph_fingerprint, session_cache, EngineCache, KernelCtx, PackedGemm, ScratchArena,
    SharedModel,
};
pub use engine::{ConvStrategy, Engine, EngineConfig, EngineKind, PreparedModel};
pub use error::RuntimeError;
pub use kernels::Accumulation;
pub use pool::{register_runtime_metrics, RuntimeConfig, ThreadPool};
pub use strategy::{GemmStrategy, KernelStrategy, OpClass, ShapeClass, StrategyEntry, StrategyKey, StrategyTable};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
