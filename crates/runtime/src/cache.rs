//! Per-session engine caching: scratch-buffer arenas, pre-packed GEMM
//! weights, and a prepared-model cache.
//!
//! Three separate allocation sinks in the pre-cache runtime all scale
//! with inference *count* rather than model size:
//!
//! 1. every `gemm_fc` call re-transposed the `[m, k]` weight matrix into
//!    a fresh `[k, m]` buffer,
//! 2. every im2col convolution allocated its patch (`col`) and product
//!    (`prod`) matrices from the global allocator,
//! 3. every variant TEE prepared its own copy of the same compiled
//!    graph, even when its engine configuration was identical to a
//!    sibling's.
//!
//! [`ScratchArena`] recycles the per-call temporaries, [`PackedGemm`]
//! moves the weight transpose to prepare time (keyed by node id inside
//! the interpreter), and [`EngineCache`] memoizes whole prepared models
//! per `(engine config, graph fingerprint)` so replicated variants share
//! one compiled model. None of this changes any computed value: packed
//! and unpacked paths read the same floats in the same order.

use crate::engine::{Engine, EngineConfig, PreparedModel};
use crate::pool::ThreadPool;
use crate::strategy::{StrategyKey, StrategyTable};
use crate::Result;
use mvtee_graph::Graph;
use mvtee_tensor::Tensor;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on buffers the arena retains; beyond this, returned
/// buffers are simply dropped.
const ARENA_MAX_BUFFERS: usize = 16;

/// Buffers smaller than this are not worth recycling.
const ARENA_MIN_ELEMS: usize = 64;

/// A reusable pool of `Vec<f32>` scratch buffers.
///
/// Interior-mutable (`Mutex`) so kernels can draw scratch space through
/// the `&self` [`PreparedModel::run`] path, including from pool worker
/// threads. Buffer contents never influence outputs — [`take`] returns
/// zeroed storage and every kernel fully overwrites what it reads.
///
/// [`take`]: ScratchArena::take
pub struct ScratchArena {
    buffers: Mutex<Vec<Vec<f32>>>,
    reused_bytes: mvtee_telemetry::Counter,
}

impl std::fmt::Debug for ScratchArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let held = self.buffers.lock().map(|b| b.len()).unwrap_or(0);
        f.debug_struct("ScratchArena").field("buffers", &held).finish()
    }
}

impl Default for ScratchArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        crate::pool::register_runtime_metrics();
        ScratchArena {
            buffers: Mutex::new(Vec::new()),
            reused_bytes: mvtee_telemetry::counter("runtime.cache.arena_bytes_reused"),
        }
    }

    /// Takes a zeroed buffer of exactly `len` elements, recycling a
    /// retained allocation when one is large enough.
    pub fn take(&self, len: usize) -> Vec<f32> {
        let recycled = {
            let mut buffers = self.buffers.lock().expect("arena lock");
            buffers
                .iter()
                .position(|b| b.capacity() >= len)
                .map(|i| buffers.swap_remove(i))
        };
        match recycled {
            Some(mut buf) => {
                self.reused_bytes.add((len * std::mem::size_of::<f32>()) as u64);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the arena for reuse.
    pub fn give(&self, buf: Vec<f32>) {
        if buf.capacity() < ARENA_MIN_ELEMS {
            return;
        }
        let mut buffers = self.buffers.lock().expect("arena lock");
        if buffers.len() < ARENA_MAX_BUFFERS {
            buffers.push(buf);
        }
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.buffers.lock().map(|b| b.len()).unwrap_or(0)
    }
}

/// A fully-connected weight matrix packed for the GEMM hot path at
/// prepare time: the `[k, m]` transpose for row-panel products, plus the
/// per-chunk column panels the batch-1 path multiplies independently.
///
/// Panels are laid out with the *same* static chunk list the pool uses
/// at run time, so the packed and unpacked paths visit identical floats
/// in identical order and stay byte-for-byte interchangeable.
#[derive(Debug)]
pub struct PackedGemm {
    /// Input features (`w.dims()[1]`).
    pub k: usize,
    /// Output features (`w.dims()[0]`).
    pub m: usize,
    /// The `[k, m]` transpose of the weight matrix.
    pub wt: Vec<f32>,
    /// Column panels: `panels[c]` is the `[k, e-s]` slab of `wt` columns
    /// for the pool's chunk `c = (s, e)` over the `m` outputs.
    pub panels: Vec<Vec<f32>>,
}

impl PackedGemm {
    /// Packs a rank-2 `[m, k]` weight tensor against `pool`'s chunk list.
    pub fn pack(w: &Tensor, pool: &ThreadPool) -> Self {
        let (m, k) = (w.dims()[0], w.dims()[1]);
        let ws = w.data();
        let mut wt = vec![0.0f32; k * m];
        for o in 0..m {
            for i in 0..k {
                wt[i * m + o] = ws[o * k + i];
            }
        }
        let panels = pool
            .chunk_ranges(m)
            .iter()
            .map(|&(s, e)| {
                let mc = e - s;
                let mut panel = vec![0.0f32; k * mc];
                for i in 0..k {
                    panel[i * mc..(i + 1) * mc].copy_from_slice(&wt[i * m + s..i * m + e]);
                }
                panel
            })
            .collect();
        PackedGemm { k, m, wt, panels }
    }
}

/// The handle to the `runtime.cache.pack_hits` counter (fetched once).
pub(crate) fn pack_hits() -> &'static mvtee_telemetry::Counter {
    static C: OnceLock<mvtee_telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| mvtee_telemetry::counter("runtime.cache.pack_hits"))
}

/// The handle to the `runtime.cache.pack_misses` counter (fetched once).
pub(crate) fn pack_misses() -> &'static mvtee_telemetry::Counter {
    static C: OnceLock<mvtee_telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| mvtee_telemetry::counter("runtime.cache.pack_misses"))
}

/// Everything a kernel needs beyond its operands: the deterministic
/// thread pool and the scratch arena. Cheap to clone (two `Arc`s).
#[derive(Debug, Clone)]
pub struct KernelCtx {
    /// The deterministic intra-op pool.
    pub pool: Arc<ThreadPool>,
    /// The scratch-buffer arena.
    pub arena: Arc<ScratchArena>,
}

impl KernelCtx {
    /// Builds a context from a pool with a fresh arena.
    pub fn new(pool: Arc<ThreadPool>) -> Self {
        KernelCtx { pool, arena: Arc::new(ScratchArena::new()) }
    }

    /// The shared inline context the plain kernel entry points use: a
    /// passthrough pool (single chunk, caller's thread — byte- and
    /// call-shape-identical to the pre-pool kernels) plus a process-wide
    /// arena.
    pub fn sequential() -> &'static KernelCtx {
        static CTX: OnceLock<KernelCtx> = OnceLock::new();
        CTX.get_or_init(|| KernelCtx::new(ThreadPool::passthrough()))
    }
}

/// A content fingerprint of a graph: name, topology, operator attributes
/// and every initializer bit. In-process cache keying only — not a
/// cryptographic commitment (the TEE measurement layer owns that).
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    let mut h = DefaultHasher::new();
    graph.name.hash(&mut h);
    graph.value_count().hash(&mut h);
    for node in graph.nodes() {
        node.name.hash(&mut h);
        format!("{:?}", node.op).hash(&mut h);
        for i in &node.inputs {
            i.0.hash(&mut h);
        }
        for o in &node.outputs {
            o.0.hash(&mut h);
        }
    }
    for v in graph.inputs() {
        v.0.hash(&mut h);
    }
    for v in graph.outputs() {
        v.0.hash(&mut h);
    }
    for (vid, t) in graph.initializers() {
        vid.0.hash(&mut h);
        t.dims().hash(&mut h);
        for &x in t.data() {
            x.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

/// Adapter giving a shared prepared model the owned-`Box` shape the
/// variant host and the fault instrumentation expect.
pub struct SharedModel(pub Arc<dyn PreparedModel>);

impl PreparedModel for SharedModel {
    fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.0.run(inputs)
    }

    fn describe(&self) -> String {
        self.0.describe()
    }
}

/// A per-session prepared-model cache keyed by engine configuration and
/// graph fingerprint.
///
/// Replicated MVX panels prepare the same `(config, graph)` pair once
/// and share the compiled model (prepared models take `&self` and are
/// `Send + Sync`, so sharing is free); diversified panels miss on their
/// differing configs and coexist. Engines carrying a custom BLAS (the
/// fault-injection path) bypass the cache entirely — a corrupted
/// backend must never leak into a healthy variant.
#[derive(Default)]
pub struct EngineCache {
    map: Mutex<HashMap<(EngineConfig, u64), Arc<dyn PreparedModel>>>,
    strategies: Mutex<HashMap<StrategyKey, Arc<StrategyTable>>>,
}

impl std::fmt::Debug for EngineCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCache").field("entries", &self.len()).finish()
    }
}

impl EngineCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        crate::pool::register_runtime_metrics();
        EngineCache::default()
    }

    /// Prepares `graph` on `engine`, returning the cached model when the
    /// same configuration already compiled an identical graph.
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::prepare`] failures.
    pub fn prepare(&self, engine: &Engine, graph: &Graph) -> Result<Arc<dyn PreparedModel>> {
        if engine.has_custom_blas() {
            // Never cache (or serve) models built on an externally
            // supplied backend.
            return Ok(Arc::from(engine.prepare(graph)?));
        }
        let key = (engine.config().clone(), graph_fingerprint(graph));
        if let Some(hit) = self.map.lock().expect("cache lock").get(&key) {
            mvtee_telemetry::counter("runtime.cache.prepare_hits").inc();
            return Ok(Arc::clone(hit));
        }
        mvtee_telemetry::counter("runtime.cache.prepare_misses").inc();
        let prepared: Arc<dyn PreparedModel> = Arc::from(engine.prepare(graph)?);
        let mut map = self.map.lock().expect("cache lock");
        // A racing variant may have inserted meanwhile; both models are
        // behaviourally identical, keep the first.
        Ok(Arc::clone(map.entry(key).or_insert(prepared)))
    }

    /// The kernel-selection table for `config`'s strategy-relevant slice,
    /// creating an empty one on first use. Tables live next to the prepared
    /// models (and their `PackedGemm` weights) so calibration runs once per
    /// (config slice, shape class) per process and every later engine
    /// replays the same choices — byte-identical across runs and threads.
    pub fn strategy_table(&self, config: &EngineConfig) -> Arc<StrategyTable> {
        let key = StrategyKey::of(config);
        let mut tables = self.strategies.lock().expect("cache lock");
        Arc::clone(tables.entry(key).or_insert_with(|| Arc::new(StrategyTable::new(key))))
    }

    /// Number of cached prepared models.
    pub fn len(&self) -> usize {
        self.map.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached model.
    pub fn clear(&self) {
        if let Ok(mut m) = self.map.lock() {
            m.clear();
        }
    }

    /// Whether any engine configuration holds a prepared model for the
    /// graph with this fingerprint (a "warm" model in registry terms).
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.map
            .lock()
            .map(|m| m.keys().any(|(_, fp)| *fp == fingerprint))
            .unwrap_or(false)
    }

    /// Evicts every prepared model compiled from the graph with this
    /// fingerprint, across all engine configurations, returning how many
    /// entries were dropped. The model registry's capacity LRU calls this
    /// so in-memory engines never outlive their sealed bundle.
    pub fn evict(&self, fingerprint: u64) -> usize {
        let Ok(mut m) = self.map.lock() else { return 0 };
        let before = m.len();
        m.retain(|(_, fp), _| *fp != fingerprint);
        before - m.len()
    }
}

/// The process-wide session cache the variant hosts prepare through.
pub fn session_cache() -> &'static EngineCache {
    static CACHE: OnceLock<EngineCache> = OnceLock::new();
    CACHE.get_or_init(EngineCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::pool::RuntimeConfig;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

    #[test]
    fn arena_recycles_buffers() {
        let arena = ScratchArena::new();
        let before = mvtee_telemetry::counter("runtime.cache.arena_bytes_reused").get();
        let mut a = arena.take(1024);
        a[0] = 7.0;
        arena.give(a);
        assert_eq!(arena.retained(), 1);
        let b = arena.take(512); // fits in the retained 1024-cap buffer
        assert_eq!(b.len(), 512);
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer must be zeroed");
        let after = mvtee_telemetry::counter("runtime.cache.arena_bytes_reused").get();
        assert_eq!(after - before, 512 * 4);
    }

    #[test]
    fn arena_drops_tiny_buffers() {
        let arena = ScratchArena::new();
        arena.give(vec![0.0; 8]);
        assert_eq!(arena.retained(), 0);
    }

    #[test]
    fn packed_gemm_panels_match_the_transpose() {
        let w = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[3, 2]).unwrap();
        let pool = ThreadPool::new(RuntimeConfig::default());
        let p = PackedGemm::pack(&w, &pool);
        assert_eq!((p.m, p.k), (3, 2));
        // wt is the [k, m] transpose.
        assert_eq!(p.wt, vec![0.0, 2.0, 4.0, 1.0, 3.0, 5.0]);
        // Panels tile wt's columns exactly.
        assert_eq!(p.panels.len(), pool.chunk_ranges(3).len());
        for (&(s, e), panel) in pool.chunk_ranges(3).iter().zip(&p.panels) {
            for i in 0..p.k {
                assert_eq!(
                    &panel[i * (e - s)..(i + 1) * (e - s)],
                    &p.wt[i * p.m + s..i * p.m + e]
                );
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_weights_and_is_stable() {
        let a = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let b = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let c = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 5).unwrap();
        assert_eq!(graph_fingerprint(&a.graph), graph_fingerprint(&b.graph));
        assert_ne!(graph_fingerprint(&a.graph), graph_fingerprint(&c.graph));
    }

    #[test]
    fn cache_hits_on_identical_config_and_misses_across_configs() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let cache = EngineCache::new();
        let ort = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
        let first = cache.prepare(&ort, &m.graph).unwrap();
        let second = cache.prepare(&ort, &m.graph).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "identical config must share the model");
        assert_eq!(cache.len(), 1);
        let tvm = Engine::new(EngineConfig::of_kind(EngineKind::TvmLike));
        let third = cache.prepare(&tvm, &m.graph).unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn evict_drops_every_config_for_one_graph_only() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let other = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 4).unwrap();
        let cache = EngineCache::new();
        let ort = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
        let tvm = Engine::new(EngineConfig::of_kind(EngineKind::TvmLike));
        cache.prepare(&ort, &m.graph).unwrap();
        cache.prepare(&tvm, &m.graph).unwrap();
        cache.prepare(&ort, &other.graph).unwrap();
        let fp = graph_fingerprint(&m.graph);
        assert!(cache.contains(fp));
        assert_eq!(cache.evict(fp), 2, "both configs of the evicted graph must go");
        assert!(!cache.contains(fp));
        assert!(cache.contains(graph_fingerprint(&other.graph)), "other graphs stay");
        assert_eq!(cache.evict(fp), 0);
    }

    #[test]
    fn custom_blas_engines_bypass_the_cache() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let cache = EngineCache::new();
        let cfg = EngineConfig::of_kind(EngineKind::OrtLike);
        let custom = Engine::with_custom_blas(cfg.clone(), cfg.blas.instantiate());
        let a = cache.prepare(&custom, &m.graph).unwrap();
        let b = cache.prepare(&custom, &m.graph).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "custom-BLAS models must not be shared");
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_and_fresh_models_agree_exactly(){
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let input = Tensor::ones(m.input_shape.dims());
        let engine = Engine::new(EngineConfig::of_kind(EngineKind::TvmLike));
        let fresh = engine.prepare(&m.graph).unwrap();
        let cached = session_cache().prepare(&engine, &m.graph).unwrap();
        let a = fresh.run(std::slice::from_ref(&input)).unwrap();
        let b = cached.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(a, b);
        // The Box adapter serves the same outputs.
        let boxed: Box<dyn PreparedModel> = Box::new(SharedModel(cached));
        assert_eq!(boxed.run(std::slice::from_ref(&input)).unwrap(), a);
        assert!(boxed.describe().contains("tvm-like"));
    }
}
