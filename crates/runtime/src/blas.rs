//! Pluggable GEMM backends — the OpenBLAS / Eigen / Intel MKL stand-ins.
//!
//! The paper's security analysis (Table 1 discussion) notes that the
//! FrameFlip attack "targets fault-vulnerable bits in the OpenBLAS linear
//! algebra backend, but is ineffective against a variant using a different
//! BLAS implementation (e.g., Eigen or Intel MKL)". To reproduce that
//! variant axis, the executors take their GEMM through the [`Blas`] trait:
//!
//! * [`NaiveBlas`] — textbook `i,j,k` loops (the "OpenBLAS" stand-in),
//! * [`BlockedBlas`] — cache-blocked tiles with per-tile accumulation (the
//!   "MKL" stand-in; fastest, different rounding),
//! * [`StridedBlas`] — `k`-outer accumulation into the output panel (the
//!   "Eigen" stand-in).
//!
//! All three compute the same product with different floating-point
//! summation orders, so heterogeneous variants diverge by a few ULPs —
//! exactly the benign noise the monitor's thresholds must absorb. The
//! fault-injection crate wraps any of them to model code-level bit flips
//! that corrupt one backend only.

use std::fmt;
use std::sync::Arc;

/// A single-precision GEMM provider: `c = a · b` for row-major matrices
/// (`a` is `m×k`, `b` is `k×n`, `c` is `m×n`).
pub trait Blas: Send + Sync {
    /// Backend name (appears in variant descriptions and logs).
    fn name(&self) -> &str;

    /// Computes `c = a · b`, overwriting `c`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when slice lengths disagree with
    /// `m`/`n`/`k`; executors always pass consistent buffers.
    fn gemm(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]);
}

/// Selector for the built-in backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BlasKind {
    /// [`NaiveBlas`] — the "OpenBLAS" stand-in.
    Naive,
    /// [`BlockedBlas`] — the "MKL" stand-in.
    Blocked,
    /// [`StridedBlas`] — the "Eigen" stand-in.
    Strided,
}

impl BlasKind {
    /// All built-in backends.
    pub const ALL: [BlasKind; 3] = [BlasKind::Naive, BlasKind::Blocked, BlasKind::Strided];

    /// Instantiates the backend.
    pub fn instantiate(self) -> Arc<dyn Blas> {
        match self {
            BlasKind::Naive => Arc::new(NaiveBlas),
            BlasKind::Blocked => Arc::new(BlockedBlas::default()),
            BlasKind::Strided => Arc::new(StridedBlas),
        }
    }

    /// Relative per-MAC cost weight of the backend's inner loop, used by the
    /// strategy table's deterministic cost model (`strategy.rs`). These are
    /// fixed model constants, not measurements — selection must be a pure
    /// function of (op, shape, config), so nothing host- or wall-clock-
    /// dependent may feed it. The naive triple loop strides the `b` matrix
    /// column-wise on every MAC; the blocked/strided backends tile for
    /// locality, hence the lower weight.
    pub fn cost_weight(self) -> u64 {
        match self {
            BlasKind::Naive => 4,
            BlasKind::Blocked => 3,
            BlasKind::Strided => 3,
        }
    }
}

impl fmt::Display for BlasKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlasKind::Naive => write!(f, "naive-blas"),
            BlasKind::Blocked => write!(f, "blocked-blas"),
            BlasKind::Strided => write!(f, "strided-blas"),
        }
    }
}

/// Textbook triple-loop GEMM, `i → j → k`, sequential accumulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBlas;

impl Blas for NaiveBlas {
    fn name(&self) -> &str {
        "naive-blas"
    }

    fn gemm(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                let mut acc = 0.0f32;
                for (kk, &av) in a_row.iter().enumerate() {
                    acc += av * b[kk * n + j];
                }
                c_row[j] = acc;
            }
        }
    }
}

/// Cache-blocked GEMM with 32×32×32 tiles; accumulates tile-by-tile, which
/// both speeds it up and changes the summation order.
#[derive(Debug, Clone, Copy)]
pub struct BlockedBlas {
    /// Tile edge length.
    pub tile: usize,
}

impl Default for BlockedBlas {
    fn default() -> Self {
        BlockedBlas { tile: 32 }
    }
}

impl Blas for BlockedBlas {
    fn name(&self) -> &str {
        "blocked-blas"
    }

    fn gemm(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        let t = self.tile.max(1);
        c.fill(0.0);
        let mut kb = 0;
        while kb < k {
            let k_end = (kb + t).min(k);
            let mut ib = 0;
            while ib < m {
                let i_end = (ib + t).min(m);
                let mut jb = 0;
                while jb < n {
                    let j_end = (jb + t).min(n);
                    for i in ib..i_end {
                        for kk in kb..k_end {
                            let av = a[i * k + kk];
                            if av == 0.0 {
                                continue;
                            }
                            let b_row = &b[kk * n + jb..kk * n + j_end];
                            let c_row = &mut c[i * n + jb..i * n + j_end];
                            for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                                *cv += av * bv;
                            }
                        }
                    }
                    jb = j_end;
                }
                ib = i_end;
            }
            kb = k_end;
        }
    }
}

/// `k`-outer GEMM: accumulates rank-1 updates into the output, another
/// distinct summation order with good write locality.
#[derive(Debug, Clone, Copy, Default)]
pub struct StridedBlas;

impl Blas for StridedBlas {
    fn name(&self) -> &str {
        "strided-blas"
    }

    fn gemm(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        c.fill(0.0);
        for kk in 0..k {
            let b_row = &b[kk * n..(kk + 1) * n];
            for i in 0..m {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *cv += av * bv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                }
            }
        }
        c.into_iter().map(|x| x as f32).collect()
    }

    fn random_case(m: usize, n: usize, k: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (a, b)
    }

    fn check_backend(blas: &dyn Blas) {
        for &(m, n, k) in
            &[(1usize, 1usize, 1usize), (2, 3, 4), (5, 5, 5), (7, 13, 9), (33, 34, 35), (64, 10, 100)]
        {
            let (a, b) = random_case(m, n, k, (m * 1000 + n * 100 + k) as u64);
            let want = reference(m, n, k, &a, &b);
            let mut c = vec![f32::NAN; m * n];
            blas.gemm(m, n, k, &a, &b, &mut c);
            for (i, (&got, &exp)) in c.iter().zip(want.iter()).enumerate() {
                assert!(
                    (got - exp).abs() <= 1e-4 * (1.0 + exp.abs()),
                    "{} ({m}x{n}x{k}) idx {i}: {got} vs {exp}",
                    blas.name()
                );
            }
        }
    }

    #[test]
    fn naive_matches_reference() {
        check_backend(&NaiveBlas);
    }

    #[test]
    fn blocked_matches_reference() {
        check_backend(&BlockedBlas::default());
        check_backend(&BlockedBlas { tile: 3 });
        check_backend(&BlockedBlas { tile: 1 });
    }

    #[test]
    fn strided_matches_reference() {
        check_backend(&StridedBlas);
    }

    #[test]
    fn backends_disagree_only_in_rounding() {
        // Large enough accumulation for rounding orders to differ...
        let (a, b) = random_case(16, 16, 512, 42);
        let mut c1 = vec![0.0; 256];
        let mut c2 = vec![0.0; 256];
        let mut c3 = vec![0.0; 256];
        NaiveBlas.gemm(16, 16, 512, &a, &b, &mut c1);
        BlockedBlas::default().gemm(16, 16, 512, &a, &b, &mut c2);
        StridedBlas.gemm(16, 16, 512, &a, &b, &mut c3);
        let max_diff = c1
            .iter()
            .zip(c2.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        // ...but never beyond a few ULPs' worth of tolerance.
        assert!(max_diff < 1e-4, "blocked diverged too far: {max_diff}");
        let max_diff3 = c1
            .iter()
            .zip(c3.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff3 < 1e-4, "strided diverged too far: {max_diff3}");
    }

    #[test]
    fn kind_instantiation_names() {
        for kind in BlasKind::ALL {
            let blas = kind.instantiate();
            assert_eq!(blas.name(), kind.to_string());
        }
    }

    #[test]
    fn identity_multiplication() {
        // b = I => c == a.
        let k = 8;
        let ident: Vec<f32> =
            (0..k * k).map(|i| if i / k == i % k { 1.0 } else { 0.0 }).collect();
        let (a, _) = random_case(4, k, k, 3);
        for kind in BlasKind::ALL {
            let mut c = vec![0.0; 4 * k];
            kind.instantiate().gemm(4, k, k, &a, &ident, &mut c);
            assert_eq!(c, a, "{kind}");
        }
    }

    #[test]
    fn zero_dimension_edge() {
        // m=0 or n=0 must not panic.
        for kind in BlasKind::ALL {
            let mut c: Vec<f32> = vec![];
            kind.instantiate().gemm(0, 0, 0, &[], &[], &mut c);
            assert!(c.is_empty());
        }
    }
}
