//! The inference engine abstraction and its three diversified families.
//!
//! | Family | Real-world analogue | Distinguishing implementation |
//! |---|---|---|
//! | [`EngineKind::Reference`] | a framework's eager interpreter | direct NCHW kernels, naive BLAS, no optimisation |
//! | [`EngineKind::OrtLike`] | ONNX Runtime CPU EP | prepare-time graph optimisation (BN folding, identity elimination), im2col + blocked GEMM |
//! | [`EngineKind::TvmLike`] | TVM graph executor with tuned schedules | NHWC or im2col schedules, `k`-outer GEMM, pairwise-tree reductions |
//!
//! An [`Engine`] compiles a graph into a [`PreparedModel`]; prepared models
//! are `Send` so each variant TEE can own one on its own thread.

use crate::blas::{Blas, BlasKind};
use crate::cache::{KernelCtx, PackedGemm};
use crate::kernels::{self, Accumulation, ConvAttrs};
use crate::optimize;
use crate::pool::{RuntimeConfig, ThreadPool};
use crate::strategy::{GemmStrategy, KernelStrategy, OpClass, StrategyTable};
use crate::{Result, RuntimeError};
use mvtee_graph::{Graph, Node, NodeId, Op};
use mvtee_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Executor family selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EngineKind {
    /// Naive reference interpreter.
    Reference,
    /// ONNX-Runtime-like optimising executor.
    OrtLike,
    /// TVM-like compiled-schedule executor.
    TvmLike,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Reference => write!(f, "reference"),
            EngineKind::OrtLike => write!(f, "ort-like"),
            EngineKind::TvmLike => write!(f, "tvm-like"),
        }
    }
}

/// How convolutions are lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ConvStrategy {
    /// Direct NCHW loops.
    Direct,
    /// im2col + GEMM through the configured BLAS backend.
    Im2col,
    /// Direct NHWC loops with layout conversion at the boundary — the
    /// "complex diversified schedule" used by the slow TVM variant in the
    /// paper's asynchronous-execution evaluation (§6.4).
    NhwcDirect,
}

/// Full engine configuration: one point in the diversification space of
/// §4.2's inference-instance level.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct EngineConfig {
    /// Executor family.
    pub kind: EngineKind,
    /// BLAS backend.
    pub blas: BlasKind,
    /// Whether prepare-time graph optimisation runs.
    pub optimize: bool,
    /// Reduction accumulation order.
    pub accumulation: Accumulation,
    /// Convolution lowering.
    pub conv_strategy: ConvStrategy,
    /// Intra-op thread count for the deterministic kernel pool. Any value
    /// produces byte-identical outputs (chunking is a pure function of
    /// problem size, never of this count), so it is freely diversifiable
    /// per variant.
    pub intra_op_threads: usize,
    /// GEMM-family kernel strategy: `Auto` consults the per-shape
    /// [`StrategyTable`](crate::StrategyTable); a fixed value pins every
    /// GEMM-family op to one kernel, making strategy choice a
    /// diversification axis.
    pub kernel_strategy: KernelStrategy,
}

impl EngineConfig {
    /// The idiomatic configuration for each executor family.
    pub fn of_kind(kind: EngineKind) -> Self {
        match kind {
            EngineKind::Reference => EngineConfig {
                kind,
                blas: BlasKind::Naive,
                optimize: false,
                accumulation: Accumulation::Sequential,
                conv_strategy: ConvStrategy::Direct,
                intra_op_threads: 1,
                kernel_strategy: KernelStrategy::Auto,
            },
            EngineKind::OrtLike => EngineConfig {
                kind,
                blas: BlasKind::Blocked,
                optimize: true,
                accumulation: Accumulation::Sequential,
                conv_strategy: ConvStrategy::Im2col,
                intra_op_threads: 1,
                kernel_strategy: KernelStrategy::Auto,
            },
            EngineKind::TvmLike => EngineConfig {
                kind,
                blas: BlasKind::Strided,
                optimize: true,
                accumulation: Accumulation::Tree,
                conv_strategy: ConvStrategy::Im2col,
                intra_op_threads: 1,
                kernel_strategy: KernelStrategy::Auto,
            },
        }
    }

    /// The deliberately heavyweight TVM configuration with a complex
    /// diversified schedule (direct NHWC kernels); used to reproduce the
    /// "lagging variant" of Fig 13.
    pub fn tvm_complex() -> Self {
        EngineConfig {
            conv_strategy: ConvStrategy::NhwcDirect,
            ..Self::of_kind(EngineKind::TvmLike)
        }
    }

    /// Sets the BLAS backend.
    pub fn with_blas(mut self, blas: BlasKind) -> Self {
        self.blas = blas;
        self
    }

    /// Sets the optimisation toggle.
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Sets the intra-op thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.intra_op_threads = threads.max(1);
        self
    }

    /// Sets the GEMM-family kernel strategy override.
    pub fn with_kernel_strategy(mut self, strategy: KernelStrategy) -> Self {
        self.kernel_strategy = strategy;
        self
    }

    /// A short human-readable descriptor (for logs and variant metadata).
    pub fn describe(&self) -> String {
        format!(
            "{}/{}/{}{}{}{}",
            self.kind,
            self.blas,
            match self.conv_strategy {
                ConvStrategy::Direct => "direct",
                ConvStrategy::Im2col => "im2col",
                ConvStrategy::NhwcDirect => "nhwc",
            },
            if self.optimize { "/opt" } else { "" },
            if self.intra_op_threads > 1 {
                format!("/t{}", self.intra_op_threads)
            } else {
                String::new()
            },
            match self.kernel_strategy {
                KernelStrategy::Auto => String::new(),
                pinned => format!("/mk-{}", pinned.token()),
            }
        )
    }
}

/// A compiled, executable model.
///
/// Inputs and outputs are positional, matching the source graph's
/// `inputs()` / `outputs()` order.
pub trait PreparedModel: Send + Sync {
    /// Runs one inference.
    ///
    /// # Errors
    ///
    /// Returns arity/shape errors for bad inputs and kernel errors for
    /// internal failures (including simulated faults).
    fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>>;

    /// Engine description (diagnostics).
    fn describe(&self) -> String;
}

/// A model-compiling engine.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
    blas: Arc<dyn Blas>,
    pool: Arc<ThreadPool>,
    custom_blas: bool,
}

impl fmt::Debug for dyn Blas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Blas({})", self.name())
    }
}

impl Engine {
    /// Creates an engine from a configuration with a built-in BLAS backend.
    pub fn new(config: EngineConfig) -> Self {
        let blas = config.blas.instantiate();
        let pool = ThreadPool::new(RuntimeConfig::with_threads(config.intra_op_threads));
        Engine { config, blas, pool, custom_blas: false }
    }

    /// Creates an engine with a custom BLAS implementation (used by the
    /// fault-injection crate to model code-level faults in one backend).
    ///
    /// Custom backends get a passthrough (single-chunk, inline) pool:
    /// fault models like `FrameFlip` corrupt outputs as a function of the
    /// per-call GEMM shape, so the call shapes must stay exactly those of
    /// the sequential runtime.
    pub fn with_custom_blas(config: EngineConfig, blas: Arc<dyn Blas>) -> Self {
        Engine { config, blas, pool: ThreadPool::passthrough(), custom_blas: true }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Whether this engine wraps a caller-supplied BLAS backend (such
    /// engines bypass the prepared-model cache and weight pre-packing).
    pub fn has_custom_blas(&self) -> bool {
        self.custom_blas
    }

    /// The engine's deterministic intra-op pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Compiles `graph` into an executable model.
    ///
    /// # Errors
    ///
    /// Fails when the graph is invalid or optimisation fails.
    pub fn prepare(&self, graph: &Graph) -> Result<Box<dyn PreparedModel>> {
        graph.validate()?;
        let compiled = if self.config.optimize {
            optimize::standard_pipeline(graph)?
        } else {
            graph.clone()
        };
        let order = compiled.topological_order()?;
        // Count value uses so the interpreter can free dead activations.
        let mut use_counts = vec![0u32; compiled.value_count()];
        for node in compiled.nodes() {
            for &i in &node.inputs {
                use_counts[i.0] += 1;
            }
        }
        for &o in compiled.outputs() {
            use_counts[o.0] += 1;
        }
        // Per-family telemetry handles, fetched once at prepare time so the
        // dispatch loop records without name lookups.
        let op_latency =
            mvtee_telemetry::histogram(&format!("runtime.{}.op_ns", self.config.kind));
        let gemm_calls =
            mvtee_telemetry::counter(&format!("runtime.{}.gemm_calls", self.config.kind));
        // Pre-pack FC weights once per prepare: transpose + column panels
        // keyed by the weight initializer's value id. Skipped for custom
        // BLAS backends, whose call shapes must match the sequential path.
        let mut packed: HashMap<usize, Arc<PackedGemm>> = HashMap::new();
        if !self.custom_blas {
            for node in compiled.nodes() {
                if !matches!(node.op, Op::Gemm) {
                    continue;
                }
                let Some(&wid) = node.inputs.get(1) else { continue };
                let Some(w) = compiled.initializer(wid) else { continue };
                if w.rank() == 2 {
                    packed
                        .entry(wid.0)
                        .or_insert_with(|| Arc::new(PackedGemm::pack(w, &self.pool)));
                }
            }
        }
        // Per-shape kernel selection table, shared through the session
        // cache next to the packed weights. Custom-BLAS engines get none:
        // their fault models corrupt outputs as a function of the per-call
        // GEMM shape, so they stay pinned to the sequential scalar path.
        let strategy = if self.custom_blas {
            None
        } else {
            let table = crate::cache::session_cache().strategy_table(&self.config);
            if self.config.kernel_strategy == KernelStrategy::Auto {
                // Prewarm: calibrate each FC layer's batch-1 shape class
                // now, at the same moment the weights pack, instead of on
                // the first inference a client is waiting on.
                for (m, k) in optimize::gemm_weight_shapes(&compiled) {
                    table.select_gemm(OpClass::GemmFc, 1, m, k);
                }
            }
            Some(table)
        };
        Ok(Box::new(Interpreter {
            graph: compiled,
            order,
            use_counts,
            blas: Arc::clone(&self.blas),
            config: self.config.clone(),
            ctx: KernelCtx::new(Arc::clone(&self.pool)),
            packed,
            strategy,
            op_latency,
            gemm_calls,
        }))
    }
}

struct Interpreter {
    graph: Graph,
    order: Vec<NodeId>,
    use_counts: Vec<u32>,
    blas: Arc<dyn Blas>,
    config: EngineConfig,
    ctx: KernelCtx,
    packed: HashMap<usize, Arc<PackedGemm>>,
    /// `None` for custom-BLAS engines, which are pinned to the scalar path.
    strategy: Option<Arc<StrategyTable>>,
    op_latency: mvtee_telemetry::Histogram,
    gemm_calls: mvtee_telemetry::Counter,
}

impl Interpreter {
    /// Resolves the kernel for one GEMM-family invocation: custom-BLAS
    /// engines are pinned to `Scalar`, a non-`Auto` config override wins
    /// next, otherwise the per-shape table decides.
    fn gemm_strategy(&self, op: OpClass, m: usize, n: usize, k: usize) -> GemmStrategy {
        match (&self.strategy, self.config.kernel_strategy.fixed()) {
            (None, _) => GemmStrategy::Scalar,
            (Some(_), Some(pinned)) => pinned,
            (Some(table), None) => table.select_gemm(op, m, n, k),
        }
    }

    /// Resolves the im2col inner-product kernel and records the conv shape
    /// class in the selection table (conv lowering itself stays the
    /// configured `conv_strategy` — it is its own diversification axis).
    fn conv_strategy_for(&self, x: &Tensor, w: &Tensor, attrs: &ConvAttrs) -> GemmStrategy {
        let (Ok((_, _, h, wd)), Ok((oc, icg, kh, kw))) =
            (x.shape().as_nchw(), w.shape().as_nchw())
        else {
            return GemmStrategy::Scalar;
        };
        let (oh, ow) = kernels::conv_out_dims(h, wd, attrs);
        let pixels = oh * ow;
        let patch = icg * kh * kw;
        let oc_per_group = oc / attrs.groups.max(1);
        if let Some(table) = &self.strategy {
            table.record_conv(self.config.conv_strategy, oc, pixels, patch);
        }
        self.gemm_strategy(OpClass::ConvIm2col, oc_per_group, pixels, patch)
    }

    fn compute(&self, node: &Node, inputs: &[&Tensor]) -> Result<Tensor> {
        let acc = self.config.accumulation;
        match &node.op {
            Op::Conv { kernel, stride, padding, groups } => {
                let attrs = ConvAttrs {
                    kernel: *kernel,
                    stride: *stride,
                    padding: *padding,
                    groups: *groups,
                };
                let bias = inputs.get(2).copied();
                match self.config.conv_strategy {
                    ConvStrategy::Direct => kernels::conv2d_direct(inputs[0], inputs[1], bias, &attrs),
                    ConvStrategy::Im2col => {
                        self.gemm_calls.inc();
                        let strategy = self.conv_strategy_for(inputs[0], inputs[1], &attrs);
                        kernels::conv2d_im2col_strategic(
                            &self.ctx,
                            inputs[0],
                            inputs[1],
                            bias,
                            &attrs,
                            self.blas.as_ref(),
                            strategy,
                        )
                    }
                    ConvStrategy::NhwcDirect => {
                        let nhwc = inputs[0].to_nhwc()?;
                        let out = kernels::conv2d_nhwc_direct_with(
                            &self.ctx, &nhwc, inputs[1], bias, &attrs,
                        )?;
                        Ok(out.from_nhwc()?)
                    }
                }
            }
            Op::Gemm => {
                self.gemm_calls.inc();
                let packed = node
                    .inputs
                    .get(1)
                    .and_then(|wid| self.packed.get(&wid.0))
                    .map(Arc::as_ref);
                let strategy = if inputs[0].rank() == 2 && inputs[1].rank() == 2 {
                    self.gemm_strategy(
                        OpClass::GemmFc,
                        inputs[0].dims()[0],
                        inputs[1].dims()[0],
                        inputs[0].dims()[1],
                    )
                } else {
                    GemmStrategy::Scalar
                };
                kernels::gemm_fc_strategic(
                    &self.ctx,
                    inputs[0],
                    inputs[1],
                    inputs.get(2).copied(),
                    self.blas.as_ref(),
                    packed,
                    strategy,
                )
            }
            Op::MatMul => {
                self.gemm_calls.inc();
                let strategy = if inputs[0].rank() == 2 && inputs[1].rank() == 2 {
                    self.gemm_strategy(
                        OpClass::MatMul,
                        inputs[0].dims()[0],
                        inputs[1].dims()[1],
                        inputs[0].dims()[1],
                    )
                } else {
                    GemmStrategy::Scalar
                };
                kernels::matmul_strategic(&self.ctx, inputs[0], inputs[1], self.blas.as_ref(), strategy)
            }
            Op::BatchNorm { epsilon } => kernels::batch_norm_with(
                &self.ctx, inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], *epsilon,
            ),
            Op::Activation(kind) => Ok(kernels::activation(inputs[0], *kind)),
            Op::Pool { kind, kernel, stride, padding } => {
                kernels::pool2d_with(&self.ctx, inputs[0], *kind, *kernel, *stride, *padding, acc)
            }
            Op::GlobalAvgPool => kernels::global_avg_pool_with(&self.ctx, inputs[0], acc),
            Op::Lrn { size, alpha, beta, bias } => {
                kernels::lrn(inputs[0], *size, *alpha, *beta, *bias)
            }
            Op::Add => Ok(inputs[0].broadcast_with(inputs[1], |a, b| a + b)?),
            Op::Mul => Ok(inputs[0].broadcast_with(inputs[1], |a, b| a * b)?),
            Op::Concat { axis } => kernels::concat(inputs, *axis),
            Op::Softmax { axis } => kernels::softmax_with(&self.ctx, inputs[0], *axis, acc),
            Op::Flatten { axis } => {
                let dims = inputs[0].dims();
                let keep: usize = dims[..(*axis).min(dims.len())].iter().product();
                let flat: usize = dims[(*axis).min(dims.len())..].iter().product();
                Ok(inputs[0].reshape(&[keep.max(1), flat])?)
            }
            Op::Reshape { target } => Ok(inputs[0].reshape(target)?),
            Op::Identity => Ok(inputs[0].clone()),
            Op::LayerNorm { epsilon } => {
                kernels::layer_norm_with(&self.ctx, inputs[0], inputs[1], inputs[2], *epsilon, acc)
            }
        }
    }
}

impl PreparedModel for Interpreter {
    fn run(&self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        let graph_inputs = self.graph.inputs();
        if inputs.len() != graph_inputs.len() {
            return Err(RuntimeError::InputArity {
                expected: graph_inputs.len(),
                actual: inputs.len(),
            });
        }
        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.value_count()];
        let mut remaining = self.use_counts.clone();
        for (i, (&vid, tensor)) in graph_inputs.iter().zip(inputs.iter()).enumerate() {
            if let Some(expected) = &self.graph.value(vid)?.shape {
                if expected != tensor.shape() {
                    return Err(RuntimeError::InputShape {
                        index: i,
                        expected: expected.to_string(),
                        actual: tensor.shape().to_string(),
                    });
                }
            }
            values[vid.0] = Some(tensor.clone());
        }
        for &nid in &self.order {
            let node = self.graph.node(nid)?;
            let mut in_refs: Vec<&Tensor> = Vec::with_capacity(node.inputs.len());
            for &i in &node.inputs {
                let t = values[i.0]
                    .as_ref()
                    .or_else(|| self.graph.initializer(i))
                    .ok_or_else(|| RuntimeError::Kernel {
                        node: node.name.clone(),
                        reason: format!("missing value {}", i.0),
                    })?;
                in_refs.push(t);
            }
            let tracer = mvtee_telemetry::trace::recorder();
            let _op_trace = if tracer.is_enabled() {
                // One span per op under the ambient (variant-run) span,
                // annotated with shape and the intra-op thread count.
                let shape = in_refs
                    .first()
                    .map(|t| format!("{:?}", t.dims()))
                    .unwrap_or_default();
                Some(
                    tracer
                        .span(mvtee_telemetry::trace::current(), "runtime.op", "runtime")
                        .arg("node", &node.name)
                        .arg("shape", shape)
                        .arg("threads", self.config.intra_op_threads),
                )
            } else {
                None
            };
            let out = {
                let _op_span = self.op_latency.start();
                self.compute(node, &in_refs)
            }
                .map_err(|e| match e {
                    RuntimeError::Kernel { reason, .. } => {
                        RuntimeError::Kernel { node: node.name.clone(), reason }
                    }
                    other => other,
                })?;
            // Every op here has exactly one output: move, don't clone.
            debug_assert_eq!(node.outputs.len(), 1);
            values[node.outputs[0].0] = Some(out);
            // Free activations whose consumers have all run.
            for &i in &node.inputs {
                let count = &mut remaining[i.0];
                *count = count.saturating_sub(1);
                if *count == 0 && !graph_inputs.contains(&i) {
                    values[i.0] = None;
                }
            }
        }
        let mut outputs = Vec::with_capacity(self.graph.outputs().len());
        for &o in self.graph.outputs() {
            let t = values[o.0]
                .as_ref()
                .or_else(|| self.graph.initializer(o))
                .ok_or_else(|| RuntimeError::Kernel {
                    node: "<outputs>".into(),
                    reason: format!("output {} never produced", o.0),
                })?;
            outputs.push(t.clone());
        }
        Ok(outputs)
    }

    fn describe(&self) -> String {
        format!("{} on '{}'", self.config.describe(), self.graph.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_tensor::metrics;

    fn test_input(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec(
            (0..n).map(|i| ((i % 101) as f32 - 50.0) / 50.0).collect(),
            dims,
        )
        .unwrap()
    }

    fn engines() -> Vec<Engine> {
        vec![
            Engine::new(EngineConfig::of_kind(EngineKind::Reference)),
            Engine::new(EngineConfig::of_kind(EngineKind::OrtLike)),
            Engine::new(EngineConfig::of_kind(EngineKind::TvmLike)),
            Engine::new(EngineConfig::tvm_complex()),
        ]
    }

    #[test]
    fn engine_families_agree_on_resnet50() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 4).unwrap();
        let input = test_input(m.input_shape.dims());
        let mut outputs = Vec::new();
        for e in engines() {
            let p = e.prepare(&m.graph).unwrap();
            outputs.push(p.run(std::slice::from_ref(&input)).unwrap().remove(0));
        }
        for pair in outputs.windows(2) {
            assert!(
                metrics::allclose(&pair[0], &pair[1], 1e-3, 1e-5),
                "engines diverged: max diff {}",
                metrics::max_abs_diff(&pair[0], &pair[1])
            );
        }
    }

    #[test]
    fn engine_families_agree_on_every_zoo_model() {
        for kind in ModelKind::ALL {
            let m = zoo::build(kind, ScaleProfile::Test, 8).unwrap();
            let input = test_input(m.input_shape.dims());
            let reference = Engine::new(EngineConfig::of_kind(EngineKind::Reference))
                .prepare(&m.graph)
                .unwrap()
                .run(std::slice::from_ref(&input))
                .unwrap()
                .remove(0);
            let ort = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike))
                .prepare(&m.graph)
                .unwrap()
                .run(std::slice::from_ref(&input))
                .unwrap()
                .remove(0);
            assert!(
                metrics::allclose(&reference, &ort, 1e-3, 1e-5),
                "{kind}: max diff {}",
                metrics::max_abs_diff(&reference, &ort)
            );
            // Softmax outputs must be a distribution.
            let s: f32 = ort.data().iter().sum();
            assert!((s - 1.0).abs() < 1e-3, "{kind}: softmax sum {s}");
        }
    }

    #[test]
    fn wrong_input_arity_rejected() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 4).unwrap();
        let p = Engine::new(EngineConfig::of_kind(EngineKind::Reference))
            .prepare(&m.graph)
            .unwrap();
        assert!(matches!(p.run(&[]), Err(RuntimeError::InputArity { expected: 1, actual: 0 })));
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 4).unwrap();
        let p = Engine::new(EngineConfig::of_kind(EngineKind::Reference))
            .prepare(&m.graph)
            .unwrap();
        let bad = Tensor::zeros(&[1, 3, 8, 8]);
        assert!(matches!(p.run(&[bad]), Err(RuntimeError::InputShape { .. })));
    }

    #[test]
    fn deterministic_execution() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let input = test_input(m.input_shape.dims());
        let p = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike)).prepare(&m.graph).unwrap();
        let a = p.run(std::slice::from_ref(&input)).unwrap();
        let b = p.run(std::slice::from_ref(&input)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn optimized_engine_shrinks_graph_cost() {
        // BN folding means the OrtLike engine runs fewer nodes; verify via
        // the description (indirect) and by semantics preserved above. Here
        // just check that prepare succeeds with optimization on and off.
        let m = zoo::build(ModelKind::GoogleNet, ScaleProfile::Test, 4).unwrap();
        let opt = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
        let raw = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike).with_optimize(false));
        assert!(opt.prepare(&m.graph).is_ok());
        assert!(raw.prepare(&m.graph).is_ok());
    }

    #[test]
    fn describe_mentions_family() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 4).unwrap();
        let p = Engine::new(EngineConfig::of_kind(EngineKind::TvmLike)).prepare(&m.graph).unwrap();
        assert!(p.describe().contains("tvm-like"));
        assert!(EngineConfig::tvm_complex().describe().contains("nhwc"));
    }

    #[test]
    fn prepared_model_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn PreparedModel>();
    }
}
