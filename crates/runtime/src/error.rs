use std::fmt;

/// Errors produced during model preparation or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The graph failed validation or a graph operation failed.
    Graph(mvtee_graph::GraphError),
    /// A tensor operation failed.
    Tensor(mvtee_tensor::TensorError),
    /// The caller supplied the wrong number of inputs.
    InputArity {
        /// Expected input count.
        expected: usize,
        /// Supplied input count.
        actual: usize,
    },
    /// An input tensor had an unexpected shape.
    InputShape {
        /// Input position.
        index: usize,
        /// Human-readable expectation.
        expected: String,
        /// Human-readable actual shape.
        actual: String,
    },
    /// An operator hit an unrecoverable numeric or structural problem.
    Kernel {
        /// Node name.
        node: String,
        /// Reason.
        reason: String,
    },
    /// A simulated fault or vulnerability crashed this execution.
    ///
    /// In a real deployment this is the variant process dying (SIGSEGV,
    /// abort, uncaught exception); the monitor observes it as a missing
    /// checkpoint response. The fault-injection crate raises this.
    Crashed {
        /// Description of the simulated crash.
        reason: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
            RuntimeError::Tensor(e) => write!(f, "tensor error: {e}"),
            RuntimeError::InputArity { expected, actual } => {
                write!(f, "expected {expected} inputs, got {actual}")
            }
            RuntimeError::InputShape { index, expected, actual } => {
                write!(f, "input {index} has shape {actual}, expected {expected}")
            }
            RuntimeError::Kernel { node, reason } => {
                write!(f, "kernel failure at {node}: {reason}")
            }
            RuntimeError::Crashed { reason } => write!(f, "variant crashed: {reason}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Graph(e) => Some(e),
            RuntimeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvtee_graph::GraphError> for RuntimeError {
    fn from(e: mvtee_graph::GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}

impl From<mvtee_tensor::TensorError> for RuntimeError {
    fn from(e: mvtee_tensor::TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::Graph(mvtee_graph::GraphError::CyclicGraph);
        assert!(e.to_string().contains("cycle"));
        assert!(std::error::Error::source(&e).is_some());
        let k = RuntimeError::Kernel { node: "conv1".into(), reason: "nan".into() };
        assert!(k.to_string().contains("conv1"));
        assert!(std::error::Error::source(&k).is_none());
    }
}
