//! Graph optimisation passes.
//!
//! The ORT-like executor applies these at prepare time (real inference
//! runtimes optimise aggressively); the *selective optimisation*
//! diversification of §4.2 applies them selectively ("instead of
//! comprehensive optimization, selectively fusing or eliminating operators
//! as a defense"), so the passes live here where both crates can reach them.

use crate::Result;
use mvtee_graph::{Graph, GraphError, Op, ValueId};
use mvtee_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Rebuilds `graph` without the nodes in `removed`, substituting values per
/// `subst` (old value -> replacement value) in node inputs and graph
/// outputs. Unreferenced initializers are dropped.
fn rebuild(
    graph: &Graph,
    removed: &HashSet<mvtee_graph::NodeId>,
    subst: &HashMap<ValueId, ValueId>,
    weight_override: &HashMap<ValueId, Tensor>,
) -> Result<Graph> {
    let resolve = |mut v: ValueId| {
        // Follow substitution chains (identity of identity, ...).
        let mut hops = 0;
        while let Some(&next) = subst.get(&v) {
            v = next;
            hops += 1;
            if hops > subst.len() {
                break; // defensive: cycles cannot happen by construction
            }
        }
        v
    };
    let mut out = Graph::new(graph.name.clone());
    let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();
    let map_value = |g: &mut Graph, vm: &mut HashMap<ValueId, ValueId>, v: ValueId| {
        if let Some(&m) = vm.get(&v) {
            return Ok::<ValueId, GraphError>(m);
        }
        let info = graph.value(v)?;
        let nv = g.add_value(info.name.clone());
        if let Some(shape) = info.shape.clone() {
            g.value_mut(nv)?.shape = Some(shape);
        }
        vm.insert(v, nv);
        Ok(nv)
    };
    for &inp in graph.inputs() {
        let m = map_value(&mut out, &mut value_map, inp)?;
        out.mark_input(m);
    }
    for node in graph.nodes() {
        if removed.contains(&node.id) {
            continue;
        }
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &i in &node.inputs {
            let r = resolve(i);
            let m = map_value(&mut out, &mut value_map, r)?;
            if out.initializer(m).is_none() {
                if let Some(t) = weight_override.get(&r).or_else(|| graph.initializer(r)) {
                    out.set_initializer(m, t.clone());
                }
            }
            inputs.push(m);
        }
        let mut outputs = Vec::with_capacity(node.outputs.len());
        for &o in &node.outputs {
            outputs.push(map_value(&mut out, &mut value_map, o)?);
        }
        out.add_node(node.name.clone(), node.op.clone(), inputs, outputs)?;
    }
    let mut new_outputs = Vec::with_capacity(graph.outputs().len());
    for &o in graph.outputs() {
        let r = resolve(o);
        new_outputs.push(map_value(&mut out, &mut value_map, r)?);
    }
    out.set_outputs(new_outputs);
    out.validate()?;
    Ok(out)
}

/// Removes `Identity` nodes, rewiring their consumers to the identity's
/// input.
///
/// # Errors
///
/// Propagates graph rebuilding failures.
pub fn eliminate_identities(graph: &Graph) -> Result<Graph> {
    let mut removed = HashSet::new();
    let mut subst = HashMap::new();
    for node in graph.nodes() {
        if matches!(node.op, Op::Identity) {
            removed.insert(node.id);
            subst.insert(node.outputs[0], node.inputs[0]);
        }
    }
    if removed.is_empty() {
        return Ok(graph.clone());
    }
    rebuild(graph, &removed, &subst, &HashMap::new())
}

/// Folds `BatchNorm` into a preceding `Conv` when the conv's output feeds
/// only that BN: the classic inference-time fusion.
///
/// `conv(x, w, b)` followed by `bn(·, γ, β, μ, σ²)` becomes
/// `conv(x, w·a, b·a + (β − μ·a))` with `a = γ / sqrt(σ² + ε)` per output
/// channel.
///
/// # Errors
///
/// Propagates graph rebuilding failures.
pub fn fold_batch_norm(graph: &Graph) -> Result<Graph> {
    let producers = graph.producers();
    let consumers = graph.consumers();
    let mut removed = HashSet::new();
    let mut subst: HashMap<ValueId, ValueId> = HashMap::new();
    let mut weight_override: HashMap<ValueId, Tensor> = HashMap::new();

    for node in graph.nodes() {
        let Op::BatchNorm { epsilon } = node.op else { continue };
        let bn_in = node.inputs[0];
        let Some(&conv_id) = producers.get(&bn_in) else { continue };
        let conv = match graph.node(conv_id) {
            Ok(n) => n,
            Err(_) => continue,
        };
        if !matches!(conv.op, Op::Conv { .. }) {
            continue;
        }
        // The conv output must feed only this BN.
        let conv_out = conv.outputs[0];
        let only_consumer = consumers
            .get(&conv_out)
            .map(|cs| cs.len() == 1 && cs[0] == node.id)
            .unwrap_or(false);
        if !only_consumer || graph.outputs().contains(&conv_out) {
            continue;
        }
        // All five BN params and the conv weight must be initializers.
        let w_id = conv.inputs[1];
        let Some(w) = weight_override.get(&w_id).cloned().or_else(|| graph.initializer(w_id).cloned()) else {
            continue;
        };
        let params: Option<Vec<&Tensor>> =
            node.inputs[1..5].iter().map(|v| graph.initializer(*v)).collect();
        let Some(params) = params else { continue };
        let (scale, beta, mean, var) = (params[0], params[1], params[2], params[3]);
        let oc = w.dims()[0];
        if scale.len() != oc {
            continue;
        }
        let bias_id = conv.inputs.get(2).copied();
        let old_bias = bias_id.and_then(|b| graph.initializer(b).cloned());

        let mut new_w = w.clone();
        let per_out = new_w.len() / oc;
        let mut new_bias = vec![0.0f32; oc];
        for (o, nb) in new_bias.iter_mut().enumerate() {
            let a = scale.data()[o] / (var.data()[o] + epsilon).sqrt();
            let shift = beta.data()[o] - mean.data()[o] * a;
            for v in &mut new_w.data_mut()[o * per_out..(o + 1) * per_out] {
                *v *= a;
            }
            let ob = old_bias.as_ref().map(|t| t.data()[o]).unwrap_or(0.0);
            *nb = ob * a + shift;
        }
        weight_override.insert(w_id, new_w);
        if let Some(bid) = bias_id {
            weight_override
                .insert(bid, Tensor::from_vec(new_bias, &[oc]).expect("bias shape"));
        }
        // Remove the BN node; the conv's output replaces the BN's output.
        removed.insert(node.id);
        subst.insert(node.outputs[0], conv_out);
    }
    if removed.is_empty() {
        return Ok(graph.clone());
    }
    rebuild(graph, &removed, &subst, &weight_override)
}

/// The standard optimisation pipeline applied by the ORT-like executor.
///
/// # Errors
///
/// Propagates pass failures.
pub fn standard_pipeline(graph: &Graph) -> Result<Graph> {
    let g = eliminate_identities(graph)?;
    fold_batch_norm(&g)
}

/// The `[m, k]` dims of every rank-2 `Gemm` weight initializer, in node
/// order with duplicates (shared weights) removed.
///
/// `Engine::prepare` feeds these to the strategy table so the batch-1
/// shape classes of every FC layer calibrate at prepare time — the same
/// moment `PackedGemm` packs the weights — rather than on the first
/// inference a client is waiting on.
pub fn gemm_weight_shapes(graph: &Graph) -> Vec<(usize, usize)> {
    let mut seen = HashSet::new();
    let mut shapes = Vec::new();
    for node in graph.nodes() {
        if !matches!(node.op, Op::Gemm) {
            continue;
        }
        let Some(&wid) = node.inputs.get(1) else { continue };
        let Some(w) = graph.initializer(wid) else { continue };
        if w.rank() == 2 && seen.insert(wid.0) {
            shapes.push((w.dims()[0], w.dims()[1]));
        }
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::op::ActivationKind;
    use mvtee_graph::GraphBuilder;
    use mvtee_tensor::metrics;

    fn run_reference(graph: &Graph, input: &Tensor) -> Tensor {
        use crate::engine::{Engine, EngineConfig, EngineKind};
        let engine = Engine::new(EngineConfig::of_kind(EngineKind::Reference));
        let prepared = engine.prepare(graph).unwrap();
        prepared.run(std::slice::from_ref(input)).unwrap().remove(0)
    }

    fn conv_bn_graph() -> Graph {
        let mut b = GraphBuilder::new("cb", 11);
        let x = b.input(&[1, 3, 8, 8]);
        let c = b.conv(x, 6, (3, 3), (1, 1), (1, 1), 1).unwrap();
        let bn = b.batch_norm(c).unwrap();
        let r = b.activation(bn, ActivationKind::Relu).unwrap();
        b.finish(vec![r]).unwrap()
    }

    #[test]
    fn bn_folding_removes_bn_and_preserves_output() {
        let g = conv_bn_graph();
        let folded = fold_batch_norm(&g).unwrap();
        assert_eq!(folded.op_histogram().get("BatchNorm"), None);
        assert_eq!(folded.node_count(), g.node_count() - 1);

        let input = Tensor::from_vec(
            (0..192).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[1, 3, 8, 8],
        )
        .unwrap();
        let y1 = run_reference(&g, &input);
        let y2 = run_reference(&folded, &input);
        assert!(
            metrics::allclose(&y1, &y2, 1e-4, 1e-5),
            "max diff {}",
            metrics::max_abs_diff(&y1, &y2)
        );
    }

    #[test]
    fn bn_folding_skips_shared_conv_output() {
        // conv output feeds both BN and a residual add: folding must skip.
        let mut b = GraphBuilder::new("shared", 3);
        let x = b.input(&[1, 4, 4, 4]);
        let c = b.conv(x, 4, (3, 3), (1, 1), (1, 1), 1).unwrap();
        let bn = b.batch_norm(c).unwrap();
        let sum = b.add(bn, c).unwrap();
        let g = b.finish(vec![sum]).unwrap();
        let folded = fold_batch_norm(&g).unwrap();
        assert_eq!(folded.op_histogram().get("BatchNorm"), Some(&1));
    }

    #[test]
    fn identity_elimination() {
        let mut g = Graph::new("ids");
        let x = g.add_value("x");
        let a = g.add_value("a");
        let b = g.add_value("b");
        let y = g.add_value("y");
        g.mark_input(x);
        g.add_node("i1", Op::Identity, vec![x], vec![a]).unwrap();
        g.add_node("i2", Op::Identity, vec![a], vec![b]).unwrap();
        g.add_node("relu", Op::Activation(ActivationKind::Relu), vec![b], vec![y]).unwrap();
        g.mark_output(y);
        let opt = eliminate_identities(&g).unwrap();
        opt.validate().unwrap();
        assert_eq!(opt.node_count(), 1);
        assert_eq!(opt.op_histogram().get("Identity"), None);
    }

    #[test]
    fn identity_elimination_preserves_graph_output() {
        // An identity directly producing the graph output.
        let mut g = Graph::new("idout");
        let x = g.add_value("x");
        let y = g.add_value("y");
        let z = g.add_value("z");
        g.mark_input(x);
        g.add_node("relu", Op::Activation(ActivationKind::Relu), vec![x], vec![y]).unwrap();
        g.add_node("id", Op::Identity, vec![y], vec![z]).unwrap();
        g.mark_output(z);
        let opt = eliminate_identities(&g).unwrap();
        opt.validate().unwrap();
        assert_eq!(opt.node_count(), 1);
        assert_eq!(opt.outputs().len(), 1);
        let input = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        let y1 = run_reference(&g, &input);
        let y2 = run_reference(&opt, &input);
        assert_eq!(y1, y2);
    }

    #[test]
    fn pipeline_on_zoo_model_preserves_semantics() {
        use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
        let m = zoo::build(ModelKind::MobileNetV3, ScaleProfile::Test, 5).unwrap();
        let opt = standard_pipeline(&m.graph).unwrap();
        assert!(opt.node_count() < m.graph.node_count());
        let input = Tensor::from_vec(
            (0..3 * 32 * 32).map(|i| ((i % 37) as f32 - 18.0) / 18.0).collect(),
            &[1, 3, 32, 32],
        )
        .unwrap();
        let y1 = run_reference(&m.graph, &input);
        let y2 = run_reference(&opt, &input);
        assert!(
            metrics::allclose(&y1, &y2, 1e-3, 1e-5),
            "max diff {}",
            metrics::max_abs_diff(&y1, &y2)
        );
    }

    #[test]
    fn noop_passes_return_clones() {
        let mut b = GraphBuilder::new("plain", 2);
        let x = b.input(&[1, 3, 4, 4]);
        let c = b.conv(x, 4, (1, 1), (1, 1), (0, 0), 1).unwrap();
        let g = b.finish(vec![c]).unwrap();
        let e = eliminate_identities(&g).unwrap();
        assert_eq!(e.node_count(), g.node_count());
        let f = fold_batch_norm(&g).unwrap();
        assert_eq!(f.node_count(), g.node_count());
    }
}
