//! Wide-register SIMD microkernels for the GEMM / im2col / conv inner loops.
//!
//! The workspace forbids `unsafe`, so these kernels do not call
//! `std::arch` intrinsics directly. Instead the inner loop is written as an
//! unrolled **8-lane virtual register**: a `[f32; 8]` accumulator block where
//! lane `l` sums exactly the products whose flat index is `≡ l (mod 8)`, in
//! ascending order. Written as chunks-of-8 ([`dot8_wide`]) the loop is a
//! textbook vectorisation target — LLVM lowers it to packed `mulps`/`addps`
//! (AVX2 `vfmadd` is *not* emitted because the baseline target lacks FMA
//! codegen, which keeps the arithmetic identical to the per-lane form).
//! Written lane-at-a-time ([`dot8_lanes`]) the same sums run as 8 independent
//! scalar loops. Both organisations perform the identical per-lane additions
//! in the identical order, then combine the 8 partials with the same **fixed
//! accumulation tree**, so their results are bit-equal by construction — the
//! scalar fallback *preserves the accumulation order* of the wide path.
//!
//! A runtime CPU-feature check ([`wide_registers_available`], via the safe
//! `is_x86_feature_detected!` macro) picks the chunked organisation when
//! the host has AVX2 wide registers and the per-lane organisation otherwise.
//! Because the two are bit-identical, kernel *selection* stays a pure
//! function of (op, shape, config) — the feature check only affects speed,
//! never bytes, which is what lets the strategy table replay across hosts.

use std::sync::OnceLock;

/// Number of virtual lanes in the microkernel accumulator block.
pub const LANES: usize = 8;

/// Whether the host exposes wide (256-bit) registers worth the chunked loop
/// organisation. Checked once per process via the safe feature-detection
/// macro; `false` on non-x86_64 targets.
pub fn wide_registers_available() -> bool {
    static WIDE: OnceLock<bool> = OnceLock::new();
    *WIDE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Combines the 8 lane partials with a fixed tree:
/// `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))`.
///
/// The tree shape is a constant of the kernel, never a function of input
/// length or thread count.
#[inline]
fn combine8(acc: [f32; LANES]) -> f32 {
    let s01 = acc[0] + acc[1];
    let s23 = acc[2] + acc[3];
    let s45 = acc[4] + acc[5];
    let s67 = acc[6] + acc[7];
    (s01 + s23) + (s45 + s67)
}

/// Chunks-of-8 organisation: one `[f32; 8]` accumulator updated per 8-element
/// block. This is the loop LLVM auto-vectorises onto wide registers.
#[inline]
fn dot8_wide(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let main = n - n % LANES;
    let mut acc = [0.0f32; LANES];
    let mut i = 0;
    while i < main {
        // Unrolled 8-lane block; lane l accumulates index i + l.
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
        acc[4] += a[i + 4] * b[i + 4];
        acc[5] += a[i + 5] * b[i + 5];
        acc[6] += a[i + 6] * b[i + 6];
        acc[7] += a[i + 7] * b[i + 7];
        i += LANES;
    }
    let mut total = combine8(acc);
    // Sequential tail for the `n % 8` remainder, after the tree combine.
    for j in main..n {
        total += a[j] * b[j];
    }
    total
}

/// Per-lane scalar organisation: 8 independent strided sums. Performs the
/// exact per-lane additions of [`dot8_wide`] in the exact order, so the two
/// are bit-equal; this is the fallback for hosts without wide registers.
#[inline]
fn dot8_lanes(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let main = n - n % LANES;
    let mut acc = [0.0f32; LANES];
    for (l, lane) in acc.iter_mut().enumerate() {
        let mut i = l;
        while i < main {
            *lane += a[i] * b[i];
            i += LANES;
        }
    }
    let mut total = combine8(acc);
    for j in main..n {
        total += a[j] * b[j];
    }
    total
}

/// 8-lane dot product with a fixed accumulation tree.
///
/// Dispatches on the cached CPU-feature check; both organisations are
/// bit-identical, so the dispatch affects latency only.
#[inline]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    if wide_registers_available() {
        dot8_wide(a, b)
    } else {
        dot8_lanes(a, b)
    }
}

/// Reference form of the microkernel sum: the per-lane scalar organisation,
/// exposed so tests can pin `dot8` against it bit-for-bit regardless of what
/// the feature check selected.
pub fn dot8_spec(a: &[f32], b: &[f32]) -> f32 {
    dot8_lanes(a, b)
}

/// Microkernel GEMM over a transposed right-hand side: `c[i, j] = a_i · btᵀ_j`
/// where `a` is `[m, k]` row-major and `bt` is `[n, k]` row-major (i.e. `bᵀ`).
///
/// Both operand rows are contiguous, which is what lets every output element
/// run through the 8-lane inner loop. Each `c` element is independent, so any
/// row split of `c` (the pool's chunking) leaves the bytes unchanged.
pub fn gemm_bt(m: usize, n: usize, k: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, out) in crow.iter_mut().enumerate() {
            *out = dot8(ar, &bt[j * k..(j + 1) * k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(len: usize, salt: u32) -> Vec<f32> {
        let mut state = 0x9e37_79b9u32 ^ salt;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn wide_and_lane_organisations_are_bit_equal() {
        // Aligned, unaligned-tail and sub-lane lengths.
        for len in [0, 1, 5, 7, 8, 9, 15, 16, 63, 64, 65, 257, 1024] {
            let a = seeded(len, 1);
            let b = seeded(len, 2);
            assert_eq!(
                dot8_wide(&a, &b).to_bits(),
                dot8_lanes(&a, &b).to_bits(),
                "len {len}"
            );
            assert_eq!(dot8(&a, &b).to_bits(), dot8_spec(&a, &b).to_bits(), "len {len}");
        }
    }

    #[test]
    fn dot8_matches_sequential_within_tolerance() {
        let a = seeded(300, 3);
        let b = seeded(300, 4);
        let seq: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = dot8(&a, &b);
        assert!((seq - got).abs() <= 1e-4 * seq.abs().max(1.0), "{seq} vs {got}");
    }

    #[test]
    fn gemm_bt_known_values() {
        // a = [[1,2],[3,4]], b = [[5,6],[7,8]] => bt = [[5,7],[6,8]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let bt = [5.0, 7.0, 6.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm_bt(2, 2, 2, &a, &bt, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }
}
