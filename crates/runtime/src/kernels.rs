//! Operator kernels shared by the executor families.
//!
//! Each executor family picks different kernel strategies (direct vs im2col
//! convolution, NCHW vs NHWC layout, sequential vs pairwise-tree
//! accumulation), reproducing the implementation heterogeneity of real
//! inference stacks.

use crate::blas::Blas;
use crate::{Result, RuntimeError};
use mvtee_graph::op::{ActivationKind, PoolKind};
use mvtee_tensor::Tensor;

/// Floating-point accumulation strategy for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Accumulation {
    /// Left-to-right summation (ORT-like and reference kernels).
    Sequential,
    /// Pairwise/tree summation (TVM-like schedules).
    Tree,
}

/// Sums a slice with the chosen accumulation order.
pub fn reduce_sum(values: &[f32], acc: Accumulation) -> f32 {
    match acc {
        Accumulation::Sequential => values.iter().sum(),
        Accumulation::Tree => tree_sum(values),
    }
}

fn tree_sum(values: &[f32]) -> f32 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let mid = n / 2;
            tree_sum(&values[..mid]) + tree_sum(&values[mid..])
        }
    }
}

/// Convolution attributes, extracted from [`mvtee_graph::Op::Conv`].
#[derive(Debug, Clone, Copy)]
pub struct ConvAttrs {
    /// Kernel `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Padding `(ph, pw)`.
    pub padding: (usize, usize),
    /// Group count.
    pub groups: usize,
}

fn conv_out_dims(h: usize, w: usize, a: &ConvAttrs) -> (usize, usize) {
    let oh = (h + 2 * a.padding.0 - a.kernel.0) / a.stride.0 + 1;
    let ow = (w + 2 * a.padding.1 - a.kernel.1) / a.stride.1 + 1;
    (oh, ow)
}

/// Direct NCHW convolution (the reference kernel).
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_direct(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, a: &ConvAttrs) -> Result<Tensor> {
    let (n, c, h, wd) = x.shape().as_nchw()?;
    let (oc, icg, kh, kw) = w.shape().as_nchw()?;
    if (kh, kw) != a.kernel || c % a.groups != 0 || oc % a.groups != 0 || icg != c / a.groups {
        return Err(RuntimeError::Kernel {
            node: "conv".into(),
            reason: format!("shape mismatch: x={:?} w={:?} attrs={a:?}", x.dims(), w.dims()),
        });
    }
    let (oh, ow) = conv_out_dims(h, wd, a);
    let oc_per_group = oc / a.groups;
    let xs = x.data();
    let ws = w.data();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for b_i in 0..n {
        for g in 0..a.groups {
            for ocg in 0..oc_per_group {
                let o = g * oc_per_group + ocg;
                let bias_v = bias.map(|t| t.data()[o]).unwrap_or(0.0);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ic in 0..icg {
                            let c_in = g * icg + ic;
                            for ky in 0..kh {
                                let iy = (oy * a.stride.0 + ky) as isize - a.padding.0 as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix =
                                        (ox * a.stride.1 + kx) as isize - a.padding.1 as isize;
                                    if ix < 0 || ix as usize >= wd {
                                        continue;
                                    }
                                    let xi = ((b_i * c + c_in) * h + iy as usize) * wd
                                        + ix as usize;
                                    let wi = ((o * icg + ic) * kh + ky) * kw + kx;
                                    acc += xs[xi] * ws[wi];
                                }
                            }
                        }
                        out[((b_i * oc + o) * oh + oy) * ow + ox] = acc + bias_v;
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, oc, oh, ow])?)
}

/// im2col + GEMM convolution (the ORT/TVM-style lowered kernel).
///
/// Builds the `[ic/g · kh · kw, oh · ow]` patch matrix per batch and group,
/// then multiplies with the `[oc/g, ic/g · kh · kw]` filter matrix through
/// the supplied [`Blas`] backend.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_im2col(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &ConvAttrs,
    blas: &dyn Blas,
) -> Result<Tensor> {
    let (n, c, h, wd) = x.shape().as_nchw()?;
    let (oc, icg, kh, kw) = w.shape().as_nchw()?;
    if (kh, kw) != a.kernel || c % a.groups != 0 || oc % a.groups != 0 || icg != c / a.groups {
        return Err(RuntimeError::Kernel {
            node: "conv-im2col".into(),
            reason: format!("shape mismatch: x={:?} w={:?} attrs={a:?}", x.dims(), w.dims()),
        });
    }
    let (oh, ow) = conv_out_dims(h, wd, a);
    let oc_per_group = oc / a.groups;
    let patch = icg * kh * kw;
    let cols = oh * ow;
    let xs = x.data();
    let ws = w.data();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    let mut col = vec![0.0f32; patch * cols];
    let mut prod = vec![0.0f32; oc_per_group * cols];
    for b_i in 0..n {
        for g in 0..a.groups {
            // im2col for this batch/group.
            col.fill(0.0);
            for ic in 0..icg {
                let c_in = g * icg + ic;
                for ky in 0..kh {
                    for kx in 0..kw {
                        let row = (ic * kh + ky) * kw + kx;
                        for oy in 0..oh {
                            let iy = (oy * a.stride.0 + ky) as isize - a.padding.0 as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            let x_base = ((b_i * c + c_in) * h + iy as usize) * wd;
                            let col_base = row * cols + oy * ow;
                            for ox in 0..ow {
                                let ix = (ox * a.stride.1 + kx) as isize - a.padding.1 as isize;
                                if ix < 0 || ix as usize >= wd {
                                    continue;
                                }
                                col[col_base + ox] = xs[x_base + ix as usize];
                            }
                        }
                    }
                }
            }
            // filters[oc/g, patch] · col[patch, cols]
            let w_base = g * oc_per_group * patch;
            blas.gemm(
                oc_per_group,
                cols,
                patch,
                &ws[w_base..w_base + oc_per_group * patch],
                &col,
                &mut prod,
            );
            for ocg in 0..oc_per_group {
                let o = g * oc_per_group + ocg;
                let bias_v = bias.map(|t| t.data()[o]).unwrap_or(0.0);
                let dst = &mut out[((b_i * oc + o) * oh) * ow..((b_i * oc + o) * oh + oh) * ow];
                let src = &prod[ocg * cols..(ocg + 1) * cols];
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d = s + bias_v;
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, oc, oh, ow])?)
}

/// Direct NHWC convolution: input and output are `[n, h, w, c]`-ordered
/// (the TVM-like executor's internal layout). The filter stays in OIHW.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_nhwc_direct(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &ConvAttrs,
) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(RuntimeError::Kernel {
            node: "conv-nhwc".into(),
            reason: format!("expected rank-4 NHWC input, got {:?}", x.dims()),
        });
    }
    let d = x.dims();
    let (n, h, wd, c) = (d[0], d[1], d[2], d[3]);
    let (oc, icg, kh, kw) = w.shape().as_nchw()?;
    if (kh, kw) != a.kernel || c % a.groups != 0 || oc % a.groups != 0 || icg != c / a.groups {
        return Err(RuntimeError::Kernel {
            node: "conv-nhwc".into(),
            reason: format!("shape mismatch: x={:?} w={:?} attrs={a:?}", x.dims(), w.dims()),
        });
    }
    let (oh, ow) = conv_out_dims(h, wd, a);
    let oc_per_group = oc / a.groups;
    let xs = x.data();
    let ws = w.data();
    let mut out = vec![0.0f32; n * oh * ow * oc];
    for b_i in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                for g in 0..a.groups {
                    for ocg in 0..oc_per_group {
                        let o = g * oc_per_group + ocg;
                        let mut acc = bias.map(|t| t.data()[o]).unwrap_or(0.0);
                        for ky in 0..kh {
                            let iy = (oy * a.stride.0 + ky) as isize - a.padding.0 as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * a.stride.1 + kx) as isize - a.padding.1 as isize;
                                if ix < 0 || ix as usize >= wd {
                                    continue;
                                }
                                let x_base =
                                    ((b_i * h + iy as usize) * wd + ix as usize) * c + g * icg;
                                let w_base = ((o * icg) * kh + ky) * kw + kx;
                                for ic in 0..icg {
                                    acc += xs[x_base + ic] * ws[w_base + ic * kh * kw];
                                }
                            }
                        }
                        out[((b_i * oh + oy) * ow + ox) * oc + o] = acc;
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, oh, ow, oc])?)
}

/// Spatial pooling over NCHW input.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on rank problems.
pub fn pool2d(
    x: &Tensor,
    kind: PoolKind,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    acc: Accumulation,
) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let oh = (h + 2 * padding.0 - kernel.0) / stride.0 + 1;
    let ow = (w + 2 * padding.1 - kernel.1) / stride.1 + 1;
    let xs = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut window: Vec<f32> = Vec::with_capacity(kernel.0 * kernel.1);
    for b_i in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    window.clear();
                    for ky in 0..kernel.0 {
                        let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..kernel.1 {
                            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            window
                                .push(xs[((b_i * c + ch) * h + iy as usize) * w + ix as usize]);
                        }
                    }
                    let v = match kind {
                        PoolKind::Max => {
                            window.iter().copied().fold(f32::NEG_INFINITY, f32::max)
                        }
                        PoolKind::Average => {
                            if window.is_empty() {
                                0.0
                            } else {
                                reduce_sum(&window, acc) / window.len() as f32
                            }
                        }
                    };
                    out[((b_i * c + ch) * oh + oy) * ow + ox] = v;
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, c, oh, ow])?)
}

/// Global average pooling to `[n, c, 1, 1]`.
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn global_avg_pool(x: &Tensor, acc: Accumulation) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let plane = h * w;
    let xs = x.data();
    let mut out = vec![0.0f32; n * c];
    for b_i in 0..n {
        for ch in 0..c {
            let base = (b_i * c + ch) * plane;
            out[b_i * c + ch] = reduce_sum(&xs[base..base + plane], acc) / plane as f32;
        }
    }
    Ok(Tensor::from_vec(out, &[n, c, 1, 1])?)
}

/// Inference batch normalisation.
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn batch_norm(
    x: &Tensor,
    scale: &Tensor,
    bias: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    epsilon: f32,
) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let plane = h * w;
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    for ch in 0..c {
        let inv_std = 1.0 / (var.data()[ch] + epsilon).sqrt();
        let a = scale.data()[ch] * inv_std;
        let b = bias.data()[ch] - mean.data()[ch] * a;
        for b_i in 0..n {
            let base = (b_i * c + ch) * plane;
            for i in 0..plane {
                out[base + i] = xs[base + i] * a + b;
            }
        }
    }
    Ok(Tensor::from_vec(out, x.dims())?)
}

/// Layer normalisation over the last axis (transformer-family models).
///
/// `y = (x - mean) / sqrt(var + eps) * gamma + beta`, statistics computed
/// per last-axis lane with the configured accumulation order.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on rank-0 input or mismatched params.
pub fn layer_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    epsilon: f32,
    acc: Accumulation,
) -> Result<Tensor> {
    let dims = x.dims();
    let Some(&d) = dims.last() else {
        return Err(RuntimeError::Kernel {
            node: "layernorm".into(),
            reason: "rank-0 input".into(),
        });
    };
    if gamma.dims() != [d] || beta.dims() != [d] {
        return Err(RuntimeError::Kernel {
            node: "layernorm".into(),
            reason: format!(
                "param shapes {:?}/{:?} must be [{d}]",
                gamma.dims(),
                beta.dims()
            ),
        });
    }
    let lanes = x.len() / d.max(1);
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    let mut centered = vec![0.0f32; d];
    for lane in 0..lanes {
        let base = lane * d;
        let slice = &xs[base..base + d];
        let mean = reduce_sum(slice, acc) / d as f32;
        for (c, &v) in centered.iter_mut().zip(slice.iter()) {
            *c = (v - mean) * (v - mean);
        }
        let var = reduce_sum(&centered, acc) / d as f32;
        let inv_std = 1.0 / (var + epsilon).sqrt();
        for i in 0..d {
            out[base + i] =
                (slice[i] - mean) * inv_std * gamma.data()[i] + beta.data()[i];
        }
    }
    Ok(Tensor::from_vec(out, dims)?)
}

/// Local response normalisation across channels (ONNX `LRN`).
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn lrn(x: &Tensor, size: usize, alpha: f32, beta: f32, bias: f32) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let plane = h * w;
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    let half = size / 2;
    for b_i in 0..n {
        for ch in 0..c {
            let lo = ch.saturating_sub(half);
            let hi = (ch + half).min(c - 1);
            for i in 0..plane {
                let mut sq = 0.0f32;
                for cc in lo..=hi {
                    let v = xs[(b_i * c + cc) * plane + i];
                    sq += v * v;
                }
                let denom = (bias + alpha * sq / size as f32).powf(beta);
                out[(b_i * c + ch) * plane + i] = xs[(b_i * c + ch) * plane + i] / denom;
            }
        }
    }
    Ok(Tensor::from_vec(out, x.dims())?)
}

/// Element-wise activation.
pub fn activation(x: &Tensor, kind: ActivationKind) -> Tensor {
    x.map(|v| kind.apply(v))
}

/// Fully connected layer `y = x · wᵀ + b` through a BLAS backend.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn gemm_fc(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, blas: &dyn Blas) -> Result<Tensor> {
    if x.rank() != 2 || w.rank() != 2 || x.dims()[1] != w.dims()[1] {
        return Err(RuntimeError::Kernel {
            node: "gemm".into(),
            reason: format!("shape mismatch: x={:?} w={:?}", x.dims(), w.dims()),
        });
    }
    let (n, k) = (x.dims()[0], x.dims()[1]);
    let m = w.dims()[0];
    // Transpose w to [k, m] for row-major GEMM.
    let ws = w.data();
    let mut wt = vec![0.0f32; k * m];
    for o in 0..m {
        for i in 0..k {
            wt[i * m + o] = ws[o * k + i];
        }
    }
    let mut out = vec![0.0f32; n * m];
    blas.gemm(n, m, k, x.data(), &wt, &mut out);
    if let Some(b) = bias {
        for row in out.chunks_mut(m) {
            for (v, &bv) in row.iter_mut().zip(b.data().iter()) {
                *v += bv;
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, m])?)
}

/// Plain matrix multiplication of rank-2 tensors.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn matmul(a: &Tensor, b: &Tensor, blas: &dyn Blas) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.dims()[1] != b.dims()[0] {
        return Err(RuntimeError::Kernel {
            node: "matmul".into(),
            reason: format!("shape mismatch: a={:?} b={:?}", a.dims(), b.dims()),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    blas.gemm(m, n, k, a.data(), b.data(), &mut out);
    Ok(Tensor::from_vec(out, &[m, n])?)
}

/// Softmax along `axis` with max-subtraction for stability.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] when `axis` is out of range.
pub fn softmax(x: &Tensor, axis: usize, acc: Accumulation) -> Result<Tensor> {
    let dims = x.dims();
    if axis >= dims.len() {
        return Err(RuntimeError::Kernel {
            node: "softmax".into(),
            reason: format!("axis {axis} out of range for {:?}", dims),
        });
    }
    let axis_len = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let outer: usize = dims[..axis].iter().product();
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    let mut lane = vec![0.0f32; axis_len];
    for o in 0..outer {
        for i in 0..inner {
            for (j, l) in lane.iter_mut().enumerate() {
                *l = xs[(o * axis_len + j) * inner + i];
            }
            let max = lane.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            for l in lane.iter_mut() {
                *l = (*l - max).exp();
            }
            let denom = reduce_sum(&lane, acc);
            for (j, &l) in lane.iter().enumerate() {
                out[(o * axis_len + j) * inner + i] = l / denom;
            }
        }
    }
    Ok(Tensor::from_vec(out, dims)?)
}

/// Concatenation along `axis`.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on mismatched shapes.
pub fn concat(inputs: &[&Tensor], axis: usize) -> Result<Tensor> {
    if inputs.is_empty() {
        return Err(RuntimeError::Kernel { node: "concat".into(), reason: "no inputs".into() });
    }
    let first = inputs[0].dims();
    if axis >= first.len() {
        return Err(RuntimeError::Kernel {
            node: "concat".into(),
            reason: format!("axis {axis} out of range"),
        });
    }
    let mut out_dims = first.to_vec();
    out_dims[axis] = inputs.iter().map(|t| t.dims()[axis]).sum();
    for t in inputs {
        if t.rank() != first.len() {
            return Err(RuntimeError::Kernel {
                node: "concat".into(),
                reason: "rank mismatch".into(),
            });
        }
        for (d, (&a, &b)) in first.iter().zip(t.dims()).enumerate() {
            if d != axis && a != b {
                return Err(RuntimeError::Kernel {
                    node: "concat".into(),
                    reason: format!("dim {d} mismatch: {a} vs {b}"),
                });
            }
        }
    }
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let total: usize = out_dims.iter().product();
    let mut out = Vec::with_capacity(total);
    for o in 0..outer {
        for t in inputs {
            let ax = t.dims()[axis];
            let base = o * ax * inner;
            out.extend_from_slice(&t.data()[base..base + ax * inner]);
        }
    }
    Ok(Tensor::from_vec(out, &out_dims)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{BlasKind, NaiveBlas};
    use mvtee_tensor::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attrs(k: usize, s: usize, p: usize, g: usize) -> ConvAttrs {
        ConvAttrs { kernel: (k, k), stride: (s, s), padding: (p, p), groups: g }
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity weights reproduces the input channels.
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d_direct(&x, &w, None, &attrs(1, 1, 0, 1)).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 all-ones kernel, no pad: output = sum of all = 10.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d_direct(&x, &w, None, &attrs(2, 1, 0, 1)).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 10.0);
    }

    #[test]
    fn conv_padding_and_stride() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d_direct(&x, &w, None, &attrs(3, 2, 1, 1)).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        // Top-left window covers 2x2 ones (corner), center windows more.
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 4.0);
        assert_eq!(y.get(&[0, 0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn conv_bias_applied() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![5.0, -1.0], &[2]).unwrap();
        let y = conv2d_direct(&x, &w, Some(&b), &attrs(1, 1, 0, 1)).unwrap();
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 5.0);
        assert_eq!(y.get(&[0, 1, 1, 1]).unwrap(), -1.0);
    }

    #[allow(clippy::too_many_arguments)]
    fn random_conv_case(
        seed: u64,
        n: usize,
        c: usize,
        h: usize,
        oc: usize,
        k: usize,
        s: usize,
        p: usize,
        g: usize,
    ) -> (Tensor, Tensor, Tensor, ConvAttrs) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&mut rng, &[n, c, h, h], 1.0);
        let w = Tensor::random_uniform(&mut rng, &[oc, c / g, k, k], 0.5);
        let b = Tensor::random_uniform(&mut rng, &[oc], 0.5);
        (x, w, b, attrs(k, s, p, g))
    }

    #[test]
    fn im2col_matches_direct() {
        for (seed, g) in [(1u64, 1usize), (2, 2), (3, 4)] {
            let (x, w, b, a) = random_conv_case(seed, 2, 4, 9, 8, 3, 2, 1, g);
            let direct = conv2d_direct(&x, &w, Some(&b), &a).unwrap();
            for kind in BlasKind::ALL {
                let blas = kind.instantiate();
                let im2col = conv2d_im2col(&x, &w, Some(&b), &a, blas.as_ref()).unwrap();
                assert!(
                    metrics::allclose(&direct, &im2col, 1e-4, 1e-5),
                    "groups {g} blas {kind}: max diff {}",
                    metrics::max_abs_diff(&direct, &im2col)
                );
            }
        }
    }

    #[test]
    fn nhwc_matches_nchw() {
        let (x, w, b, a) = random_conv_case(7, 1, 6, 8, 4, 3, 1, 1, 1);
        let direct = conv2d_direct(&x, &w, Some(&b), &a).unwrap();
        let x_nhwc = x.to_nhwc().unwrap();
        let y_nhwc = conv2d_nhwc_direct(&x_nhwc, &w, Some(&b), &a).unwrap();
        let back = y_nhwc.from_nhwc().unwrap();
        assert!(metrics::allclose(&direct, &back, 1e-4, 1e-5));
    }

    #[test]
    fn depthwise_conv() {
        let (x, w, b, a) = random_conv_case(9, 1, 6, 8, 6, 3, 1, 1, 6);
        let direct = conv2d_direct(&x, &w, Some(&b), &a).unwrap();
        let x_nhwc = x.to_nhwc().unwrap();
        let nhwc = conv2d_nhwc_direct(&x_nhwc, &w, Some(&b), &a).unwrap().from_nhwc().unwrap();
        assert!(metrics::allclose(&direct, &nhwc, 1e-4, 1e-5));
    }

    #[test]
    fn max_pool_values() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = pool2d(&x, PoolKind::Max, (2, 2), (2, 2), (0, 0), Accumulation::Sequential)
            .unwrap();
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_excludes_padding() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = pool2d(&x, PoolKind::Average, (3, 3), (1, 1), (1, 1), Accumulation::Sequential)
            .unwrap();
        // Every window only averages real elements => all ones.
        for &v in y.data() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gap_matches_mean() {
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = global_avg_pool(&x, Accumulation::Sequential).unwrap();
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let t = global_avg_pool(&x, Accumulation::Tree).unwrap();
        assert!(metrics::allclose(&y, &t, 1e-6, 1e-7));
    }

    #[test]
    fn batch_norm_standardises() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let one = Tensor::ones(&[1]);
        let zero = Tensor::zeros(&[1]);
        let mean = Tensor::from_vec(vec![2.5], &[1]).unwrap();
        let var = Tensor::from_vec(vec![1.25], &[1]).unwrap();
        let y = batch_norm(&x, &one, &zero, &mean, &var, 0.0).unwrap();
        let m: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-6);
        let v: f32 = y.data().iter().map(|x| x * x).sum::<f32>() / 4.0;
        assert!((v - 1.0).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_standardises_lanes() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4])
            .unwrap();
        let gamma = Tensor::ones(&[4]);
        let beta = Tensor::zeros(&[4]);
        let y = layer_norm(&x, &gamma, &beta, 0.0, Accumulation::Sequential).unwrap();
        for lane in y.data().chunks(4) {
            let mean: f32 = lane.iter().sum::<f32>() / 4.0;
            let var: f32 = lane.iter().map(|v| v * v).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "lane mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "lane var {var}");
        }
    }

    #[test]
    fn layer_norm_applies_affine_params() {
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]).unwrap();
        let gamma = Tensor::from_vec(vec![2.0, 2.0], &[2]).unwrap();
        let beta = Tensor::from_vec(vec![10.0, 10.0], &[2]).unwrap();
        let y = layer_norm(&x, &gamma, &beta, 0.0, Accumulation::Sequential).unwrap();
        assert!((y.data()[0] - 8.0).abs() < 1e-5);
        assert!((y.data()[1] - 12.0).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_accumulation_orders_agree() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::random_uniform(&mut rng, &[8, 64], 5.0);
        let gamma = Tensor::ones(&[64]);
        let beta = Tensor::zeros(&[64]);
        let a = layer_norm(&x, &gamma, &beta, 1e-5, Accumulation::Sequential).unwrap();
        let b = layer_norm(&x, &gamma, &beta, 1e-5, Accumulation::Tree).unwrap();
        assert!(metrics::allclose(&a, &b, 1e-4, 1e-5));
    }

    #[test]
    fn layer_norm_rejects_bad_params() {
        let x = Tensor::zeros(&[2, 4]);
        let bad = Tensor::zeros(&[3]);
        let good = Tensor::zeros(&[4]);
        assert!(layer_norm(&x, &bad, &good, 1e-5, Accumulation::Sequential).is_err());
        // Rank-0 input has no last axis to normalise over.
        let one = Tensor::ones(&[1]);
        assert!(
            layer_norm(&Tensor::scalar(1.0), &one, &one, 1e-5, Accumulation::Sequential)
                .is_err()
        );
    }

    #[test]
    fn lrn_reduces_magnitude() {
        let x = Tensor::full(&[1, 4, 2, 2], 2.0);
        let y = lrn(&x, 3, 1e-2, 0.75, 1.0).unwrap();
        for &v in y.data() {
            assert!(v < 2.0 && v > 0.0);
        }
    }

    #[test]
    fn gemm_fc_known() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        // w: [3 out, 2 in]
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 10.0, 100.0], &[3]).unwrap();
        let y = gemm_fc(&x, &w, Some(&b), &NaiveBlas).unwrap();
        assert_eq!(y.data(), &[1.0, 12.0, 103.0]);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let y = matmul(&a, &b, &NaiveBlas).unwrap();
        assert_eq!(y.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 400.0, 500.0, 600.0], &[2, 3]).unwrap();
        for acc in [Accumulation::Sequential, Accumulation::Tree] {
            let y = softmax(&x, 1, acc).unwrap();
            for row in y.data().chunks(3) {
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
                assert!(row.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0], &[1, 1]).unwrap();
        let y = concat(&[&a, &b], 1).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_channel_blocks() {
        let a = Tensor::full(&[1, 1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2, 2], 2.0);
        let y = concat(&[&a, &b], 1).unwrap();
        assert_eq!(y.dims(), &[1, 3, 2, 2]);
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(y.get(&[0, 1, 0, 0]).unwrap(), 2.0);
        assert_eq!(y.get(&[0, 2, 1, 1]).unwrap(), 2.0);
    }

    #[test]
    fn tree_sum_equals_sequential_for_exact_values() {
        let vals: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(reduce_sum(&vals, Accumulation::Tree), reduce_sum(&vals, Accumulation::Sequential));
        assert_eq!(reduce_sum(&[], Accumulation::Tree), 0.0);
        assert_eq!(reduce_sum(&[7.0], Accumulation::Tree), 7.0);
    }

    #[test]
    fn kernels_reject_bad_shapes() {
        let x = Tensor::zeros(&[2, 2]);
        let w = Tensor::zeros(&[1, 1, 1, 1]);
        assert!(conv2d_direct(&x, &w, None, &attrs(1, 1, 0, 1)).is_err());
        assert!(softmax(&x, 5, Accumulation::Sequential).is_err());
        assert!(concat(&[], 0).is_err());
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b, &NaiveBlas).is_err());
    }
}
