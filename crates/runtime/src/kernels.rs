//! Operator kernels shared by the executor families.
//!
//! Each executor family picks different kernel strategies (direct vs im2col
//! convolution, NCHW vs NHWC layout, sequential vs pairwise-tree
//! accumulation), reproducing the implementation heterogeneity of real
//! inference stacks.

use crate::blas::Blas;
use crate::cache::{pack_hits, pack_misses, KernelCtx, PackedGemm};
use crate::simd;
use crate::strategy::GemmStrategy;
use crate::{Result, RuntimeError};
use mvtee_graph::op::{ActivationKind, PoolKind};
use mvtee_tensor::Tensor;

/// Floating-point accumulation strategy for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Accumulation {
    /// Left-to-right summation (ORT-like and reference kernels).
    Sequential,
    /// Pairwise/tree summation (TVM-like schedules).
    Tree,
}

/// Sums a slice with the chosen accumulation order.
pub fn reduce_sum(values: &[f32], acc: Accumulation) -> f32 {
    match acc {
        Accumulation::Sequential => values.iter().sum(),
        Accumulation::Tree => tree_sum(values),
    }
}

/// Fixed-shape pairwise summation: the recursion splits at `n / 2`
/// regardless of how the values were produced, so the reduction tree —
/// and therefore the rounding — is a pure function of the slice length.
/// The deterministic pool leans on this to combine per-chunk partials.
pub fn tree_sum(values: &[f32]) -> f32 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let mid = n / 2;
            tree_sum(&values[..mid]) + tree_sum(&values[mid..])
        }
    }
}

/// Convolution attributes, extracted from [`mvtee_graph::Op::Conv`].
#[derive(Debug, Clone, Copy)]
pub struct ConvAttrs {
    /// Kernel `(kh, kw)`.
    pub kernel: (usize, usize),
    /// Stride `(sh, sw)`.
    pub stride: (usize, usize),
    /// Padding `(ph, pw)`.
    pub padding: (usize, usize),
    /// Group count.
    pub groups: usize,
}

pub(crate) fn conv_out_dims(h: usize, w: usize, a: &ConvAttrs) -> (usize, usize) {
    let oh = (h + 2 * a.padding.0 - a.kernel.0) / a.stride.0 + 1;
    let ow = (w + 2 * a.padding.1 - a.kernel.1) / a.stride.1 + 1;
    (oh, ow)
}

/// Direct NCHW convolution (the reference kernel).
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_direct(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, a: &ConvAttrs) -> Result<Tensor> {
    let (n, c, h, wd) = x.shape().as_nchw()?;
    let (oc, icg, kh, kw) = w.shape().as_nchw()?;
    if (kh, kw) != a.kernel || c % a.groups != 0 || oc % a.groups != 0 || icg != c / a.groups {
        return Err(RuntimeError::Kernel {
            node: "conv".into(),
            reason: format!("shape mismatch: x={:?} w={:?} attrs={a:?}", x.dims(), w.dims()),
        });
    }
    let (oh, ow) = conv_out_dims(h, wd, a);
    let oc_per_group = oc / a.groups;
    let xs = x.data();
    let ws = w.data();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    for b_i in 0..n {
        for g in 0..a.groups {
            for ocg in 0..oc_per_group {
                let o = g * oc_per_group + ocg;
                let bias_v = bias.map(|t| t.data()[o]).unwrap_or(0.0);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ic in 0..icg {
                            let c_in = g * icg + ic;
                            for ky in 0..kh {
                                let iy = (oy * a.stride.0 + ky) as isize - a.padding.0 as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix =
                                        (ox * a.stride.1 + kx) as isize - a.padding.1 as isize;
                                    if ix < 0 || ix as usize >= wd {
                                        continue;
                                    }
                                    let xi = ((b_i * c + c_in) * h + iy as usize) * wd
                                        + ix as usize;
                                    let wi = ((o * icg + ic) * kh + ky) * kw + kx;
                                    acc += xs[xi] * ws[wi];
                                }
                            }
                        }
                        out[((b_i * oc + o) * oh + oy) * ow + ox] = acc + bias_v;
                    }
                }
            }
        }
    }
    Ok(Tensor::from_vec(out, &[n, oc, oh, ow])?)
}

/// im2col + GEMM convolution (the ORT/TVM-style lowered kernel).
///
/// Builds the `[ic/g · kh · kw, oh · ow]` patch matrix per batch and group,
/// then multiplies with the `[oc/g, ic/g · kh · kw]` filter matrix through
/// the supplied [`Blas`] backend.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_im2col(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &ConvAttrs,
    blas: &dyn Blas,
) -> Result<Tensor> {
    conv2d_im2col_with(KernelCtx::sequential(), x, w, bias, a, blas)
}

/// [`conv2d_im2col`] drawing scratch space from `ctx`'s arena and
/// splitting the im2col fill, the filter GEMM (over output channels)
/// and the bias epilogue over `ctx`'s deterministic pool.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_im2col_with(
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &ConvAttrs,
    blas: &dyn Blas,
) -> Result<Tensor> {
    conv2d_im2col_strategic(ctx, x, w, bias, a, blas, GemmStrategy::Scalar)
}

/// [`conv2d_im2col_with`] under an explicit kernel strategy for the inner
/// product. `Scalar` / `PanelPacked` fill the `[patch, cols]` column buffer
/// and run the row-panel BLAS GEMM; `SimdMicrokernel` fills the buffer
/// **transposed** (`[cols, patch]`, same arena bytes) so both the filter row
/// and the patch column are contiguous, then runs one fixed-tree
/// [`simd::dot8`] per output element.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_im2col_strategic(
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &ConvAttrs,
    blas: &dyn Blas,
    strategy: GemmStrategy,
) -> Result<Tensor> {
    let (n, c, h, wd) = x.shape().as_nchw()?;
    let (oc, icg, kh, kw) = w.shape().as_nchw()?;
    if (kh, kw) != a.kernel || c % a.groups != 0 || oc % a.groups != 0 || icg != c / a.groups {
        return Err(RuntimeError::Kernel {
            node: "conv-im2col".into(),
            reason: format!("shape mismatch: x={:?} w={:?} attrs={a:?}", x.dims(), w.dims()),
        });
    }
    let (oh, ow) = conv_out_dims(h, wd, a);
    let oc_per_group = oc / a.groups;
    let patch = icg * kh * kw;
    let cols = oh * ow;
    let xs = x.data();
    let ws = w.data();
    let mut out = vec![0.0f32; n * oc * oh * ow];
    let mut col = ctx.arena.take(patch * cols);
    let mut prod = ctx.arena.take(oc_per_group * cols);
    // One im2col row block per input channel: `kh·kw` patch rows.
    let ic_rows = kh * kw * cols;
    for b_i in 0..n {
        for g in 0..a.groups {
            let w_base = g * oc_per_group * patch;
            match strategy {
                GemmStrategy::SimdMicrokernel => {
                    // Transposed im2col: one contiguous [patch] row per
                    // output pixel, chunked over pixels.
                    ctx.pool.for_each_chunk(cols, patch, &mut col, |_, p0, _p1, block| {
                        block.fill(0.0);
                        for (local, prow) in block.chunks_mut(patch).enumerate() {
                            let pix = p0 + local;
                            let (oy, ox) = (pix / ow, pix % ow);
                            for ic in 0..icg {
                                let c_in = g * icg + ic;
                                for ky in 0..kh {
                                    let iy = (oy * a.stride.0 + ky) as isize
                                        - a.padding.0 as isize;
                                    if iy < 0 || iy as usize >= h {
                                        continue;
                                    }
                                    let x_base = ((b_i * c + c_in) * h + iy as usize) * wd;
                                    for kx in 0..kw {
                                        let ix = (ox * a.stride.1 + kx) as isize
                                            - a.padding.1 as isize;
                                        if ix < 0 || ix as usize >= wd {
                                            continue;
                                        }
                                        prow[(ic * kh + ky) * kw + kx] =
                                            xs[x_base + ix as usize];
                                    }
                                }
                            }
                        }
                    });
                    // One dot8 per (output channel, pixel) over two
                    // contiguous rows, chunked over output channels.
                    let colt_ref = &col;
                    ctx.pool.for_each_chunk(
                        oc_per_group,
                        cols,
                        &mut prod,
                        |_, o0, o1, block| {
                            for o in o0..o1 {
                                let wr = &ws[w_base + o * patch..w_base + (o + 1) * patch];
                                let dst = &mut block[(o - o0) * cols..(o - o0 + 1) * cols];
                                for (p, v) in dst.iter_mut().enumerate() {
                                    *v = simd::dot8(
                                        wr,
                                        &colt_ref[p * patch..(p + 1) * patch],
                                    );
                                }
                            }
                        },
                    );
                }
                GemmStrategy::Scalar | GemmStrategy::PanelPacked => {
                    // im2col for this batch/group — input channels are
                    // disjoint row blocks of the patch matrix, so they
                    // chunk freely.
                    ctx.pool.for_each_chunk(icg, ic_rows, &mut col, |_, ic0, _, block| {
                        block.fill(0.0);
                        for (local, rows) in block.chunks_mut(ic_rows).enumerate() {
                            let c_in = g * icg + ic0 + local;
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let row = ky * kw + kx;
                                    for oy in 0..oh {
                                        let iy = (oy * a.stride.0 + ky) as isize
                                            - a.padding.0 as isize;
                                        if iy < 0 || iy as usize >= h {
                                            continue;
                                        }
                                        let x_base =
                                            ((b_i * c + c_in) * h + iy as usize) * wd;
                                        let row_base = row * cols + oy * ow;
                                        for ox in 0..ow {
                                            let ix = (ox * a.stride.1 + kx) as isize
                                                - a.padding.1 as isize;
                                            if ix < 0 || ix as usize >= wd {
                                                continue;
                                            }
                                            rows[row_base + ox] = xs[x_base + ix as usize];
                                        }
                                    }
                                }
                            }
                        }
                    });
                    // filters[oc/g, patch] · col[patch, cols], row-panelled
                    // over output channels.
                    ctx.pool.par_gemm(
                        blas,
                        oc_per_group,
                        cols,
                        patch,
                        &ws[w_base..w_base + oc_per_group * patch],
                        &col,
                        &mut prod,
                    );
                }
            }
            // Bias epilogue, again parallel over output channels (the
            // group's channels are contiguous in the output).
            let out_base = (b_i * oc + g * oc_per_group) * cols;
            let prod_ref = &prod;
            ctx.pool.for_each_chunk(
                oc_per_group,
                cols,
                &mut out[out_base..out_base + oc_per_group * cols],
                |_, o0, o1, block| {
                    for ocg in o0..o1 {
                        let o = g * oc_per_group + ocg;
                        let bias_v = bias.map(|t| t.data()[o]).unwrap_or(0.0);
                        let src = &prod_ref[ocg * cols..(ocg + 1) * cols];
                        let dst = &mut block[(ocg - o0) * cols..(ocg - o0 + 1) * cols];
                        for (d, &s) in dst.iter_mut().zip(src.iter()) {
                            *d = s + bias_v;
                        }
                    }
                },
            );
        }
    }
    ctx.arena.give(col);
    ctx.arena.give(prod);
    Ok(Tensor::from_vec(out, &[n, oc, oh, ow])?)
}

/// Direct NHWC convolution: input and output are `[n, h, w, c]`-ordered
/// (the TVM-like executor's internal layout). The filter stays in OIHW.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_nhwc_direct(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &ConvAttrs,
) -> Result<Tensor> {
    conv2d_nhwc_direct_with(KernelCtx::sequential(), x, w, bias, a)
}

/// [`conv2d_nhwc_direct`] with the `(batch, output-row)` loop split over
/// `ctx`'s deterministic pool. Every output element is a lane-local
/// accumulation, so chunking the rows cannot change any value.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape inconsistencies.
pub fn conv2d_nhwc_direct_with(
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &ConvAttrs,
) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(RuntimeError::Kernel {
            node: "conv-nhwc".into(),
            reason: format!("expected rank-4 NHWC input, got {:?}", x.dims()),
        });
    }
    let d = x.dims();
    let (n, h, wd, c) = (d[0], d[1], d[2], d[3]);
    let (oc, icg, kh, kw) = w.shape().as_nchw()?;
    if (kh, kw) != a.kernel || c % a.groups != 0 || oc % a.groups != 0 || icg != c / a.groups {
        return Err(RuntimeError::Kernel {
            node: "conv-nhwc".into(),
            reason: format!("shape mismatch: x={:?} w={:?} attrs={a:?}", x.dims(), w.dims()),
        });
    }
    let (oh, ow) = conv_out_dims(h, wd, a);
    let oc_per_group = oc / a.groups;
    let xs = x.data();
    let ws = w.data();
    let mut out = vec![0.0f32; n * oh * ow * oc];
    ctx.pool.for_each_chunk(n * oh, ow * oc, &mut out, |_, r0, r1, block| {
        for r in r0..r1 {
            let b_i = r / oh;
            let oy = r % oh;
            let row_base = (r - r0) * ow * oc;
            for ox in 0..ow {
                for g in 0..a.groups {
                    for ocg in 0..oc_per_group {
                        let o = g * oc_per_group + ocg;
                        let mut acc = bias.map(|t| t.data()[o]).unwrap_or(0.0);
                        for ky in 0..kh {
                            let iy = (oy * a.stride.0 + ky) as isize - a.padding.0 as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * a.stride.1 + kx) as isize - a.padding.1 as isize;
                                if ix < 0 || ix as usize >= wd {
                                    continue;
                                }
                                let x_base =
                                    ((b_i * h + iy as usize) * wd + ix as usize) * c + g * icg;
                                let w_base = ((o * icg) * kh + ky) * kw + kx;
                                for ic in 0..icg {
                                    acc += xs[x_base + ic] * ws[w_base + ic * kh * kw];
                                }
                            }
                        }
                        block[row_base + ox * oc + o] = acc;
                    }
                }
            }
        }
    });
    Ok(Tensor::from_vec(out, &[n, oh, ow, oc])?)
}

/// Spatial pooling over NCHW input.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on rank problems.
pub fn pool2d(
    x: &Tensor,
    kind: PoolKind,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    acc: Accumulation,
) -> Result<Tensor> {
    pool2d_with(KernelCtx::sequential(), x, kind, kernel, stride, padding, acc)
}

/// [`pool2d`] with the `(batch, channel)` plane loop split over `ctx`'s
/// deterministic pool. Each window reduction stays whole inside its
/// plane, so chunking cannot change any value.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on rank problems.
pub fn pool2d_with(
    ctx: &KernelCtx,
    x: &Tensor,
    kind: PoolKind,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    acc: Accumulation,
) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let oh = (h + 2 * padding.0 - kernel.0) / stride.0 + 1;
    let ow = (w + 2 * padding.1 - kernel.1) / stride.1 + 1;
    let xs = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    ctx.pool.for_each_chunk(n * c, oh * ow, &mut out, |_, p0, p1, block| {
        let mut window: Vec<f32> = Vec::with_capacity(kernel.0 * kernel.1);
        for p in p0..p1 {
            let plane_base = (p - p0) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    window.clear();
                    for ky in 0..kernel.0 {
                        let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..kernel.1 {
                            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            window.push(xs[(p * h + iy as usize) * w + ix as usize]);
                        }
                    }
                    let v = match kind {
                        PoolKind::Max => {
                            window.iter().copied().fold(f32::NEG_INFINITY, f32::max)
                        }
                        PoolKind::Average => {
                            if window.is_empty() {
                                0.0
                            } else {
                                reduce_sum(&window, acc) / window.len() as f32
                            }
                        }
                    };
                    block[plane_base + oy * ow + ox] = v;
                }
            }
        }
    });
    Ok(Tensor::from_vec(out, &[n, c, oh, ow])?)
}

/// Global average pooling to `[n, c, 1, 1]`.
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn global_avg_pool(x: &Tensor, acc: Accumulation) -> Result<Tensor> {
    global_avg_pool_with(KernelCtx::sequential(), x, acc)
}

/// [`global_avg_pool`] reducing each large plane through
/// [`ThreadPool::reduce_slice`]: per-chunk partials in the caller's
/// accumulation order, combined by the fixed-shape [`tree_sum`]. The
/// split is a pure function of the plane size, so every thread count
/// (including 1) computes identical bytes.
///
/// [`ThreadPool::reduce_slice`]: crate::pool::ThreadPool::reduce_slice
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn global_avg_pool_with(ctx: &KernelCtx, x: &Tensor, acc: Accumulation) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let plane = h * w;
    let xs = x.data();
    let mut out = vec![0.0f32; n * c];
    for (p, slot) in out.iter_mut().enumerate() {
        let base = p * plane;
        *slot = ctx.pool.reduce_slice(&xs[base..base + plane], acc) / plane as f32;
    }
    Ok(Tensor::from_vec(out, &[n, c, 1, 1])?)
}

/// Inference batch normalisation.
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn batch_norm(
    x: &Tensor,
    scale: &Tensor,
    bias: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    epsilon: f32,
) -> Result<Tensor> {
    batch_norm_with(KernelCtx::sequential(), x, scale, bias, mean, var, epsilon)
}

/// [`batch_norm`] with the `(batch, channel)` plane loop split over
/// `ctx`'s deterministic pool. The transform is element-wise per plane,
/// so iteration order is irrelevant to the result.
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn batch_norm_with(
    ctx: &KernelCtx,
    x: &Tensor,
    scale: &Tensor,
    bias: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    epsilon: f32,
) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let plane = h * w;
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    ctx.pool.for_each_chunk(n * c, plane, &mut out, |_, p0, p1, block| {
        for p in p0..p1 {
            let ch = p % c;
            let inv_std = 1.0 / (var.data()[ch] + epsilon).sqrt();
            let a = scale.data()[ch] * inv_std;
            let b = bias.data()[ch] - mean.data()[ch] * a;
            let src = &xs[p * plane..(p + 1) * plane];
            let dst = &mut block[(p - p0) * plane..(p - p0 + 1) * plane];
            for (d, &v) in dst.iter_mut().zip(src.iter()) {
                *d = v * a + b;
            }
        }
    });
    Ok(Tensor::from_vec(out, x.dims())?)
}

/// Layer normalisation over the last axis (transformer-family models).
///
/// `y = (x - mean) / sqrt(var + eps) * gamma + beta`, statistics computed
/// per last-axis lane with the configured accumulation order.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on rank-0 input or mismatched params.
pub fn layer_norm(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    epsilon: f32,
    acc: Accumulation,
) -> Result<Tensor> {
    layer_norm_with(KernelCtx::sequential(), x, gamma, beta, epsilon, acc)
}

/// [`layer_norm`] splitting the lane loop over `ctx`'s pool with the
/// per-lane `centered` scratch drawn from the arena once per chunk.
/// Each lane's statistics are computed whole inside a single chunk in
/// the caller's accumulation order, so results are bit-identical to
/// the sequential kernel at every thread count.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on rank-0 input or mismatched params.
pub fn layer_norm_with(
    ctx: &KernelCtx,
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    epsilon: f32,
    acc: Accumulation,
) -> Result<Tensor> {
    let dims = x.dims();
    let Some(&d) = dims.last() else {
        return Err(RuntimeError::Kernel {
            node: "layernorm".into(),
            reason: "rank-0 input".into(),
        });
    };
    if gamma.dims() != [d] || beta.dims() != [d] {
        return Err(RuntimeError::Kernel {
            node: "layernorm".into(),
            reason: format!(
                "param shapes {:?}/{:?} must be [{d}]",
                gamma.dims(),
                beta.dims()
            ),
        });
    }
    let lanes = x.len() / d.max(1);
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    ctx.pool.for_each_chunk(lanes, d, &mut out, |_, l0, l1, block| {
        let mut centered = ctx.arena.take(d);
        for lane in l0..l1 {
            let base = lane * d;
            let slice = &xs[base..base + d];
            let mean = reduce_sum(slice, acc) / d as f32;
            for (c, &v) in centered.iter_mut().zip(slice.iter()) {
                *c = (v - mean) * (v - mean);
            }
            let var = reduce_sum(&centered, acc) / d as f32;
            let inv_std = 1.0 / (var + epsilon).sqrt();
            let dst = &mut block[(lane - l0) * d..(lane - l0 + 1) * d];
            for i in 0..d {
                dst[i] = (slice[i] - mean) * inv_std * gamma.data()[i] + beta.data()[i];
            }
        }
        ctx.arena.give(centered);
    });
    Ok(Tensor::from_vec(out, dims)?)
}

/// Local response normalisation across channels (ONNX `LRN`).
///
/// # Errors
///
/// Returns rank errors for non-rank-4 input.
pub fn lrn(x: &Tensor, size: usize, alpha: f32, beta: f32, bias: f32) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    let plane = h * w;
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    let half = size / 2;
    for b_i in 0..n {
        for ch in 0..c {
            let lo = ch.saturating_sub(half);
            let hi = (ch + half).min(c - 1);
            for i in 0..plane {
                let mut sq = 0.0f32;
                for cc in lo..=hi {
                    let v = xs[(b_i * c + cc) * plane + i];
                    sq += v * v;
                }
                let denom = (bias + alpha * sq / size as f32).powf(beta);
                out[(b_i * c + ch) * plane + i] = xs[(b_i * c + ch) * plane + i] / denom;
            }
        }
    }
    Ok(Tensor::from_vec(out, x.dims())?)
}

/// Element-wise activation.
pub fn activation(x: &Tensor, kind: ActivationKind) -> Tensor {
    x.map(|v| kind.apply(v))
}

/// Fully connected layer `y = x · wᵀ + b` through a BLAS backend.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn gemm_fc(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, blas: &dyn Blas) -> Result<Tensor> {
    gemm_fc_with(KernelCtx::sequential(), x, w, bias, blas, None)
}

/// [`gemm_fc`] with an optional pre-packed weight and parallel GEMM.
///
/// When `packed` matches the weight shape the per-call `[k, m]`
/// transpose is skipped entirely (pack-cache hit). Batch-1 inputs —
/// the common inference case where row-parallelism degenerates — are
/// multiplied against the pre-split column panels instead, one panel
/// per deterministic output chunk; batched inputs use row-panel
/// parallel GEMM over the packed transpose. Both splits preserve the
/// per-element ascending-`k` accumulation order of every BLAS
/// backend, so outputs stay byte-identical to the sequential kernel.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn gemm_fc_with(
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    blas: &dyn Blas,
    packed: Option<&PackedGemm>,
) -> Result<Tensor> {
    gemm_fc_strategic(ctx, x, w, bias, blas, packed, GemmStrategy::PanelPacked)
}

/// [`gemm_fc_with`] under an explicit kernel strategy.
///
/// * `Scalar` — row-panel BLAS `par_gemm` over the `[k, m]` transpose
///   (prepacked when available, else derived once through the arena).
/// * `PanelPacked` — `Scalar` plus the batch-1 pre-split column-panel fast
///   path; byte-identical to `Scalar` (both re-tile the same ascending-`k`
///   BLAS accumulation).
/// * `SimdMicrokernel` — `w` is `[m, k]` row-major, i.e. its rows already
///   *are* the contiguous columns the 8-lane dot product needs, so this
///   path runs with **no transpose or pack at all**, one fixed-tree
///   [`simd::dot8`] per output element.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn gemm_fc_strategic(
    ctx: &KernelCtx,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    blas: &dyn Blas,
    packed: Option<&PackedGemm>,
    strategy: GemmStrategy,
) -> Result<Tensor> {
    if x.rank() != 2 || w.rank() != 2 || x.dims()[1] != w.dims()[1] {
        return Err(RuntimeError::Kernel {
            node: "gemm".into(),
            reason: format!("shape mismatch: x={:?} w={:?}", x.dims(), w.dims()),
        });
    }
    let (n, k) = (x.dims()[0], x.dims()[1]);
    let m = w.dims()[0];
    let mut out = vec![0.0f32; n * m];
    match strategy {
        GemmStrategy::SimdMicrokernel => {
            let xd = x.data();
            let ws = w.data();
            if n == 1 {
                // Batch-1: parallelise over output features instead of the
                // degenerate row dimension. Each element is an independent
                // dot product, so the split never moves an addition.
                ctx.pool.for_each_chunk(m, 1, &mut out, |_, o0, o1, chunk| {
                    for (local, o) in (o0..o1).enumerate() {
                        chunk[local] = simd::dot8(xd, &ws[o * k..(o + 1) * k]);
                    }
                });
            } else {
                ctx.pool.for_each_chunk(n, m, &mut out, |_, r0, r1, block| {
                    for r in r0..r1 {
                        let xr = &xd[r * k..(r + 1) * k];
                        let row = &mut block[(r - r0) * m..(r - r0 + 1) * m];
                        for (o, v) in row.iter_mut().enumerate() {
                            *v = simd::dot8(xr, &ws[o * k..(o + 1) * k]);
                        }
                    }
                });
            }
        }
        GemmStrategy::Scalar | GemmStrategy::PanelPacked => {
            match packed.filter(|p| p.k == k && p.m == m) {
                Some(p) => {
                    pack_hits().inc();
                    if strategy == GemmStrategy::PanelPacked
                        && n == 1
                        && p.panels.len() > 1
                        && p.panels.len() == ctx.pool.chunk_ranges(m).len()
                    {
                        // Batch-1: row-parallelism degenerates, so split the
                        // single output row into the pre-packed column panels.
                        let xd = x.data();
                        ctx.pool.for_each_chunk(m, 1, &mut out, |cidx, j0, j1, chunk| {
                            blas.gemm(1, j1 - j0, k, xd, &p.panels[cidx], chunk);
                        });
                    } else {
                        ctx.pool.par_gemm(blas, n, m, k, x.data(), &p.wt, &mut out);
                    }
                }
                None => {
                    pack_misses().inc();
                    // One-shot pack: transpose w to [k, m] for row-major
                    // GEMM, through the arena so repeated identical shapes
                    // within one forward recycle the buffer.
                    let ws = w.data();
                    let mut wt = ctx.arena.take(k * m);
                    for o in 0..m {
                        for i in 0..k {
                            wt[i * m + o] = ws[o * k + i];
                        }
                    }
                    ctx.pool.par_gemm(blas, n, m, k, x.data(), &wt, &mut out);
                    ctx.arena.give(wt);
                }
            }
        }
    }
    if let Some(b) = bias {
        let bd = b.data();
        ctx.pool.for_each_chunk(n, m, &mut out, |_, r0, r1, block| {
            for row in block[..(r1 - r0) * m].chunks_mut(m) {
                for (v, &bv) in row.iter_mut().zip(bd.iter()) {
                    *v += bv;
                }
            }
        });
    }
    Ok(Tensor::from_vec(out, &[n, m])?)
}

/// Plain matrix multiplication of rank-2 tensors.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn matmul(a: &Tensor, b: &Tensor, blas: &dyn Blas) -> Result<Tensor> {
    matmul_with(KernelCtx::sequential(), a, b, blas)
}

/// [`matmul`] through the deterministic row-panel parallel GEMM.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn matmul_with(ctx: &KernelCtx, a: &Tensor, b: &Tensor, blas: &dyn Blas) -> Result<Tensor> {
    matmul_strategic(ctx, a, b, blas, GemmStrategy::Scalar)
}

/// [`matmul_with`] under an explicit kernel strategy. `Scalar` and
/// `PanelPacked` run the row-panel BLAS path (no prepacked weight exists
/// for a dynamic right-hand side); `SimdMicrokernel` derives a one-shot
/// `[n, k]` transpose of `b` through the arena, then runs one fixed-tree
/// [`simd::dot8`] per output element over the two contiguous rows.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on shape problems.
pub fn matmul_strategic(
    ctx: &KernelCtx,
    a: &Tensor,
    b: &Tensor,
    blas: &dyn Blas,
    strategy: GemmStrategy,
) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.dims()[1] != b.dims()[0] {
        return Err(RuntimeError::Kernel {
            node: "matmul".into(),
            reason: format!("shape mismatch: a={:?} b={:?}", a.dims(), b.dims()),
        });
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = vec![0.0f32; m * n];
    match strategy {
        GemmStrategy::SimdMicrokernel => {
            // One-shot pack of b to [n, k] (bᵀ) through the arena, so a
            // repeated shape within one forward recycles the buffer.
            let bd = b.data();
            let mut bt = ctx.arena.take(n * k);
            for j in 0..n {
                for i in 0..k {
                    bt[j * k + i] = bd[i * n + j];
                }
            }
            let ad = a.data();
            let bt_ref = &bt;
            ctx.pool.for_each_chunk(m, n, &mut out, |_, r0, r1, block| {
                for r in r0..r1 {
                    let ar = &ad[r * k..(r + 1) * k];
                    let row = &mut block[(r - r0) * n..(r - r0 + 1) * n];
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = simd::dot8(ar, &bt_ref[j * k..(j + 1) * k]);
                    }
                }
            });
            ctx.arena.give(bt);
        }
        GemmStrategy::Scalar | GemmStrategy::PanelPacked => {
            ctx.pool.par_gemm(blas, m, n, k, a.data(), b.data(), &mut out);
        }
    }
    Ok(Tensor::from_vec(out, &[m, n])?)
}

/// Softmax along `axis` with max-subtraction for stability.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] when `axis` is out of range.
pub fn softmax(x: &Tensor, axis: usize, acc: Accumulation) -> Result<Tensor> {
    softmax_with(KernelCtx::sequential(), x, axis, acc)
}

/// [`softmax`] splitting the outer loop over `ctx`'s pool, with the
/// per-lane gather buffer drawn from the arena once per chunk. Every
/// softmax lane (max, exp, sum, divide) is computed whole inside one
/// chunk, so the reduction order — and therefore the bytes — match
/// the sequential kernel at every thread count.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] when `axis` is out of range.
pub fn softmax_with(ctx: &KernelCtx, x: &Tensor, axis: usize, acc: Accumulation) -> Result<Tensor> {
    let dims = x.dims();
    if axis >= dims.len() {
        return Err(RuntimeError::Kernel {
            node: "softmax".into(),
            reason: format!("axis {axis} out of range for {:?}", dims),
        });
    }
    let axis_len = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    let outer: usize = dims[..axis].iter().product();
    let xs = x.data();
    let mut out = vec![0.0f32; xs.len()];
    let stride = axis_len * inner;
    ctx.pool.for_each_chunk(outer, stride, &mut out, |_, o0, o1, block| {
        let mut lane = ctx.arena.take(axis_len);
        for o in o0..o1 {
            let dst = &mut block[(o - o0) * stride..(o - o0 + 1) * stride];
            for i in 0..inner {
                for (j, l) in lane.iter_mut().enumerate() {
                    *l = xs[(o * axis_len + j) * inner + i];
                }
                let max = lane.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                for l in lane.iter_mut() {
                    *l = (*l - max).exp();
                }
                let denom = reduce_sum(&lane, acc);
                for (j, &l) in lane.iter().enumerate() {
                    dst[j * inner + i] = l / denom;
                }
            }
        }
        ctx.arena.give(lane);
    });
    Ok(Tensor::from_vec(out, dims)?)
}

/// Concatenation along `axis`.
///
/// # Errors
///
/// Returns [`RuntimeError::Kernel`] on mismatched shapes.
pub fn concat(inputs: &[&Tensor], axis: usize) -> Result<Tensor> {
    if inputs.is_empty() {
        return Err(RuntimeError::Kernel { node: "concat".into(), reason: "no inputs".into() });
    }
    let first = inputs[0].dims();
    if axis >= first.len() {
        return Err(RuntimeError::Kernel {
            node: "concat".into(),
            reason: format!("axis {axis} out of range"),
        });
    }
    let mut out_dims = first.to_vec();
    out_dims[axis] = inputs.iter().map(|t| t.dims()[axis]).sum();
    for t in inputs {
        if t.rank() != first.len() {
            return Err(RuntimeError::Kernel {
                node: "concat".into(),
                reason: "rank mismatch".into(),
            });
        }
        for (d, (&a, &b)) in first.iter().zip(t.dims()).enumerate() {
            if d != axis && a != b {
                return Err(RuntimeError::Kernel {
                    node: "concat".into(),
                    reason: format!("dim {d} mismatch: {a} vs {b}"),
                });
            }
        }
    }
    let outer: usize = first[..axis].iter().product();
    let inner: usize = first[axis + 1..].iter().product();
    let total: usize = out_dims.iter().product();
    let mut out = Vec::with_capacity(total);
    for o in 0..outer {
        for t in inputs {
            let ax = t.dims()[axis];
            let base = o * ax * inner;
            out.extend_from_slice(&t.data()[base..base + ax * inner]);
        }
    }
    Ok(Tensor::from_vec(out, &out_dims)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{BlasKind, NaiveBlas};
    use mvtee_tensor::metrics;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attrs(k: usize, s: usize, p: usize, g: usize) -> ConvAttrs {
        ConvAttrs { kernel: (k, k), stride: (s, s), padding: (p, p), groups: g }
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1 conv with identity weights reproduces the input channels.
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let y = conv2d_direct(&x, &w, None, &attrs(1, 1, 0, 1)).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_known_values() {
        // 2x2 input, 2x2 all-ones kernel, no pad: output = sum of all = 10.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d_direct(&x, &w, None, &attrs(2, 1, 0, 1)).unwrap();
        assert_eq!(y.dims(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 10.0);
    }

    #[test]
    fn conv_padding_and_stride() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d_direct(&x, &w, None, &attrs(3, 2, 1, 1)).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        // Top-left window covers 2x2 ones (corner), center windows more.
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 4.0);
        assert_eq!(y.get(&[0, 0, 1, 1]).unwrap(), 9.0);
    }

    #[test]
    fn conv_bias_applied() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![5.0, -1.0], &[2]).unwrap();
        let y = conv2d_direct(&x, &w, Some(&b), &attrs(1, 1, 0, 1)).unwrap();
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 5.0);
        assert_eq!(y.get(&[0, 1, 1, 1]).unwrap(), -1.0);
    }

    #[allow(clippy::too_many_arguments)]
    fn random_conv_case(
        seed: u64,
        n: usize,
        c: usize,
        h: usize,
        oc: usize,
        k: usize,
        s: usize,
        p: usize,
        g: usize,
    ) -> (Tensor, Tensor, Tensor, ConvAttrs) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&mut rng, &[n, c, h, h], 1.0);
        let w = Tensor::random_uniform(&mut rng, &[oc, c / g, k, k], 0.5);
        let b = Tensor::random_uniform(&mut rng, &[oc], 0.5);
        (x, w, b, attrs(k, s, p, g))
    }

    #[test]
    fn im2col_matches_direct() {
        for (seed, g) in [(1u64, 1usize), (2, 2), (3, 4)] {
            let (x, w, b, a) = random_conv_case(seed, 2, 4, 9, 8, 3, 2, 1, g);
            let direct = conv2d_direct(&x, &w, Some(&b), &a).unwrap();
            for kind in BlasKind::ALL {
                let blas = kind.instantiate();
                let im2col = conv2d_im2col(&x, &w, Some(&b), &a, blas.as_ref()).unwrap();
                assert!(
                    metrics::allclose(&direct, &im2col, 1e-4, 1e-5),
                    "groups {g} blas {kind}: max diff {}",
                    metrics::max_abs_diff(&direct, &im2col)
                );
            }
        }
    }

    #[test]
    fn nhwc_matches_nchw() {
        let (x, w, b, a) = random_conv_case(7, 1, 6, 8, 4, 3, 1, 1, 1);
        let direct = conv2d_direct(&x, &w, Some(&b), &a).unwrap();
        let x_nhwc = x.to_nhwc().unwrap();
        let y_nhwc = conv2d_nhwc_direct(&x_nhwc, &w, Some(&b), &a).unwrap();
        let back = y_nhwc.from_nhwc().unwrap();
        assert!(metrics::allclose(&direct, &back, 1e-4, 1e-5));
    }

    #[test]
    fn depthwise_conv() {
        let (x, w, b, a) = random_conv_case(9, 1, 6, 8, 6, 3, 1, 1, 6);
        let direct = conv2d_direct(&x, &w, Some(&b), &a).unwrap();
        let x_nhwc = x.to_nhwc().unwrap();
        let nhwc = conv2d_nhwc_direct(&x_nhwc, &w, Some(&b), &a).unwrap().from_nhwc().unwrap();
        assert!(metrics::allclose(&direct, &nhwc, 1e-4, 1e-5));
    }

    #[test]
    fn max_pool_values() {
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = pool2d(&x, PoolKind::Max, (2, 2), (2, 2), (0, 0), Accumulation::Sequential)
            .unwrap();
        assert_eq!(y.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_excludes_padding() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = pool2d(&x, PoolKind::Average, (3, 3), (1, 1), (1, 1), Accumulation::Sequential)
            .unwrap();
        // Every window only averages real elements => all ones.
        for &v in y.data() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gap_matches_mean() {
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = global_avg_pool(&x, Accumulation::Sequential).unwrap();
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let t = global_avg_pool(&x, Accumulation::Tree).unwrap();
        assert!(metrics::allclose(&y, &t, 1e-6, 1e-7));
    }

    #[test]
    fn batch_norm_standardises() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let one = Tensor::ones(&[1]);
        let zero = Tensor::zeros(&[1]);
        let mean = Tensor::from_vec(vec![2.5], &[1]).unwrap();
        let var = Tensor::from_vec(vec![1.25], &[1]).unwrap();
        let y = batch_norm(&x, &one, &zero, &mean, &var, 0.0).unwrap();
        let m: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-6);
        let v: f32 = y.data().iter().map(|x| x * x).sum::<f32>() / 4.0;
        assert!((v - 1.0).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_standardises_lanes() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4])
            .unwrap();
        let gamma = Tensor::ones(&[4]);
        let beta = Tensor::zeros(&[4]);
        let y = layer_norm(&x, &gamma, &beta, 0.0, Accumulation::Sequential).unwrap();
        for lane in y.data().chunks(4) {
            let mean: f32 = lane.iter().sum::<f32>() / 4.0;
            let var: f32 = lane.iter().map(|v| v * v).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "lane mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "lane var {var}");
        }
    }

    #[test]
    fn layer_norm_applies_affine_params() {
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]).unwrap();
        let gamma = Tensor::from_vec(vec![2.0, 2.0], &[2]).unwrap();
        let beta = Tensor::from_vec(vec![10.0, 10.0], &[2]).unwrap();
        let y = layer_norm(&x, &gamma, &beta, 0.0, Accumulation::Sequential).unwrap();
        assert!((y.data()[0] - 8.0).abs() < 1e-5);
        assert!((y.data()[1] - 12.0).abs() < 1e-5);
    }

    #[test]
    fn layer_norm_accumulation_orders_agree() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::random_uniform(&mut rng, &[8, 64], 5.0);
        let gamma = Tensor::ones(&[64]);
        let beta = Tensor::zeros(&[64]);
        let a = layer_norm(&x, &gamma, &beta, 1e-5, Accumulation::Sequential).unwrap();
        let b = layer_norm(&x, &gamma, &beta, 1e-5, Accumulation::Tree).unwrap();
        assert!(metrics::allclose(&a, &b, 1e-4, 1e-5));
    }

    #[test]
    fn layer_norm_rejects_bad_params() {
        let x = Tensor::zeros(&[2, 4]);
        let bad = Tensor::zeros(&[3]);
        let good = Tensor::zeros(&[4]);
        assert!(layer_norm(&x, &bad, &good, 1e-5, Accumulation::Sequential).is_err());
        // Rank-0 input has no last axis to normalise over.
        let one = Tensor::ones(&[1]);
        assert!(
            layer_norm(&Tensor::scalar(1.0), &one, &one, 1e-5, Accumulation::Sequential)
                .is_err()
        );
    }

    #[test]
    fn lrn_reduces_magnitude() {
        let x = Tensor::full(&[1, 4, 2, 2], 2.0);
        let y = lrn(&x, 3, 1e-2, 0.75, 1.0).unwrap();
        for &v in y.data() {
            assert!(v < 2.0 && v > 0.0);
        }
    }

    #[test]
    fn gemm_fc_known() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        // w: [3 out, 2 in]
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 10.0, 100.0], &[3]).unwrap();
        let y = gemm_fc(&x, &w, Some(&b), &NaiveBlas).unwrap();
        assert_eq!(y.data(), &[1.0, 12.0, 103.0]);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let y = matmul(&a, &b, &NaiveBlas).unwrap();
        assert_eq!(y.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 400.0, 500.0, 600.0], &[2, 3]).unwrap();
        for acc in [Accumulation::Sequential, Accumulation::Tree] {
            let y = softmax(&x, 1, acc).unwrap();
            for row in y.data().chunks(3) {
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
                assert!(row.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0], &[1, 1]).unwrap();
        let y = concat(&[&a, &b], 1).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_channel_blocks() {
        let a = Tensor::full(&[1, 1, 2, 2], 1.0);
        let b = Tensor::full(&[1, 2, 2, 2], 2.0);
        let y = concat(&[&a, &b], 1).unwrap();
        assert_eq!(y.dims(), &[1, 3, 2, 2]);
        assert_eq!(y.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(y.get(&[0, 1, 0, 0]).unwrap(), 2.0);
        assert_eq!(y.get(&[0, 2, 1, 1]).unwrap(), 2.0);
    }

    #[test]
    fn tree_sum_equals_sequential_for_exact_values() {
        let vals: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(reduce_sum(&vals, Accumulation::Tree), reduce_sum(&vals, Accumulation::Sequential));
        assert_eq!(reduce_sum(&[], Accumulation::Tree), 0.0);
        assert_eq!(reduce_sum(&[7.0], Accumulation::Tree), 7.0);
    }

    #[test]
    fn kernels_reject_bad_shapes() {
        let x = Tensor::zeros(&[2, 2]);
        let w = Tensor::zeros(&[1, 1, 1, 1]);
        assert!(conv2d_direct(&x, &w, None, &attrs(1, 1, 0, 1)).is_err());
        assert!(softmax(&x, 5, Accumulation::Sequential).is_err());
        assert!(concat(&[], 0).is_err());
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b, &NaiveBlas).is_err());
    }
}
