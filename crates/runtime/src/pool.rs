//! Deterministic intra-op parallelism.
//!
//! The paper's baselines (ONNX Runtime, TVM) saturate their TEE's cores
//! with intra-op thread pools. An MVX system cannot simply copy that:
//! parallel reductions whose grouping depends on the *live* thread count
//! produce different float rounding per variant, and the checkpoint layer
//! would have to relax its metrics to absorb the noise — exactly the
//! drift Volckaert et al. identify as the hard part of multi-variant
//! execution of parallel programs.
//!
//! [`ThreadPool`] sidesteps the problem by construction:
//!
//! * **Static chunking** — work is split into chunks whose boundaries are
//!   a pure function of the problem size and the configured
//!   [`RuntimeConfig::max_parallelism`], never of the live thread count.
//!   `threads = 1, 2, 4, 8` all execute the *same* chunk list.
//! * **Independent outputs** — every parallel region partitions disjoint
//!   output rows/lanes; per-lane reductions stay whole inside one chunk,
//!   so no accumulation order ever crosses a chunk boundary.
//! * **Fixed-shape combination** — when a single long reduction *is*
//!   split ([`ThreadPool::reduce_slice`]), the per-chunk partials are
//!   combined with the existing fixed-shape [`tree_sum`], again a pure
//!   function of the chunk list.
//!
//! The result: byte-identical tensors at every thread count, so variants
//! may legitimately diversify their `intra_op_threads` and still agree
//! bit-exactly at checkpoints.
//!
//! Chunks are distributed over workers through a crossbeam channel; the
//! assignment of chunk → worker is racy, but workers only ever write the
//! disjoint output slice carried by the chunk itself, so scheduling
//! nondeterminism is invisible in the output.

use crate::kernels::{reduce_sum, tree_sum, Accumulation};
use crate::Blas;
use mvtee_telemetry::Counter;
use std::sync::Arc;

/// Tuning knobs for the deterministic intra-op pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuntimeConfig {
    /// Worker threads a parallel region may spawn. `1` (the default)
    /// executes every chunk inline on the caller.
    pub intra_op_threads: usize,
    /// Fixed chunk-count ceiling: every parallel region splits its work
    /// into `min(items, max_parallelism)` chunks *regardless of thread
    /// count* — this constant (not `intra_op_threads`) is what makes
    /// outputs thread-count invariant. Raising it changes chunk shapes
    /// and therefore (for split reductions) rounding; treat it as part
    /// of the numeric contract.
    pub max_parallelism: usize,
    /// Regions with fewer output elements than this run inline (same
    /// chunk list, caller's thread) — spawn cost would dominate.
    pub min_parallel_elems: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { intra_op_threads: 1, max_parallelism: 8, min_parallel_elems: 4096 }
    }
}

impl RuntimeConfig {
    /// A configuration with `n` worker threads and default chunking.
    pub fn with_threads(n: usize) -> Self {
        RuntimeConfig { intra_op_threads: n.max(1), ..Self::default() }
    }
}

/// The deterministic intra-op thread pool.
///
/// Stateless between regions: each parallel region spawns scoped workers
/// that drain a pre-split chunk queue and exit. (The vendored crossbeam
/// provides channels only, and the workspace forbids `unsafe`, so a
/// persistent pool borrowing caller slices is not expressible — scoped
/// spawning keeps the borrows safe and the design allocation-light.)
pub struct ThreadPool {
    cfg: RuntimeConfig,
    /// Passthrough pools run every region as one inline chunk — used for
    /// engines with externally supplied (possibly fault-instrumented)
    /// BLAS backends, whose corruption patterns depend on exact call
    /// shapes and must not be re-tiled.
    passthrough: bool,
    tasks: Counter,
    parallel_regions: Counter,
    sequential_regions: Counter,
    chunks: Counter,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("cfg", &self.cfg)
            .field("passthrough", &self.passthrough)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with the given configuration.
    pub fn new(cfg: RuntimeConfig) -> Arc<Self> {
        register_runtime_metrics();
        Arc::new(ThreadPool {
            cfg: RuntimeConfig {
                intra_op_threads: cfg.intra_op_threads.max(1),
                max_parallelism: cfg.max_parallelism.max(1),
                ..cfg
            },
            passthrough: false,
            tasks: mvtee_telemetry::counter("runtime.pool.tasks"),
            parallel_regions: mvtee_telemetry::counter("runtime.pool.parallel_regions"),
            sequential_regions: mvtee_telemetry::counter("runtime.pool.sequential_regions"),
            chunks: mvtee_telemetry::counter("runtime.pool.chunks"),
        })
    }

    /// A single-chunk, inline pool: every region executes exactly as one
    /// sequential call, byte- and call-shape-identical to the pre-pool
    /// kernels. Used by the plain kernel entry points and by engines
    /// with custom BLAS backends.
    pub fn passthrough() -> Arc<Self> {
        register_runtime_metrics();
        Arc::new(ThreadPool {
            cfg: RuntimeConfig::default(),
            passthrough: true,
            tasks: mvtee_telemetry::counter("runtime.pool.tasks"),
            parallel_regions: mvtee_telemetry::counter("runtime.pool.parallel_regions"),
            sequential_regions: mvtee_telemetry::counter("runtime.pool.sequential_regions"),
            chunks: mvtee_telemetry::counter("runtime.pool.chunks"),
        })
    }

    /// The pool's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The static chunk list for `items` work items: boundaries depend
    /// only on `items` and `max_parallelism` (or a single chunk for
    /// passthrough pools) — never on the thread count.
    pub fn chunk_ranges(&self, items: usize) -> Vec<(usize, usize)> {
        if items == 0 {
            return Vec::new();
        }
        if self.passthrough {
            return vec![(0, items)];
        }
        let n_chunks = self.cfg.max_parallelism.min(items);
        let base = items / n_chunks;
        let rem = items % n_chunks;
        let mut ranges = Vec::with_capacity(n_chunks);
        let mut start = 0;
        for c in 0..n_chunks {
            let len = base + usize::from(c < rem);
            ranges.push((start, start + len));
            start += len;
        }
        ranges
    }

    /// Splits `out` (laid out as `items × stride` f32s) into the static
    /// chunk list and runs `f(chunk_index, start_item, end_item, slice)`
    /// on every chunk — in parallel when the pool has workers and the
    /// region is large enough, inline (same chunks, in order) otherwise.
    ///
    /// Because the chunk list is thread-count invariant and each chunk
    /// owns a disjoint output slice, the bytes written are identical for
    /// every `intra_op_threads` setting.
    pub fn for_each_chunk<F>(&self, items: usize, stride: usize, out: &mut [f32], f: F)
    where
        F: Fn(usize, usize, usize, &mut [f32]) + Sync,
    {
        debug_assert_eq!(out.len(), items * stride);
        if items == 0 {
            return;
        }
        let ranges = self.chunk_ranges(items);
        let workers = self.cfg.intra_op_threads.min(ranges.len());
        if workers <= 1 || items * stride < self.cfg.min_parallel_elems {
            self.sequential_regions.inc();
            let mut rest = out;
            for (c, &(s, e)) in ranges.iter().enumerate() {
                let (head, tail) = rest.split_at_mut((e - s) * stride);
                f(c, s, e, head);
                rest = tail;
            }
            return;
        }
        self.parallel_regions.inc();
        self.chunks.add(ranges.len() as u64);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, usize, usize, &mut [f32])>();
        {
            let mut rest = out;
            for (c, &(s, e)) in ranges.iter().enumerate() {
                let (head, tail) = rest.split_at_mut((e - s) * stride);
                tx.send((c, s, e, head)).expect("chunk queue send cannot fail");
                rest = tail;
            }
        }
        drop(tx);
        let f = &f;
        let tasks = &self.tasks;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                scope.spawn(move || {
                    while let Ok((c, s, e, slice)) = rx.recv() {
                        f(c, s, e, slice);
                        tasks.inc();
                    }
                });
            }
        });
    }

    /// Runs `f(chunk_index, start, end)` over the static chunk list and
    /// returns the per-chunk results in chunk order (the order is fixed
    /// by the chunk list, not by completion time).
    pub fn map_chunks<T, F>(&self, items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize, usize) -> T + Sync,
    {
        let ranges = self.chunk_ranges(items);
        let workers = self.cfg.intra_op_threads.min(ranges.len());
        if workers <= 1 {
            self.sequential_regions.inc();
            return ranges.iter().enumerate().map(|(c, &(s, e))| f(c, s, e)).collect();
        }
        self.parallel_regions.inc();
        self.chunks.add(ranges.len() as u64);
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, usize, usize)>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, T)>();
        for (c, &(s, e)) in ranges.iter().enumerate() {
            tx.send((c, s, e)).expect("chunk queue send cannot fail");
        }
        drop(tx);
        let f = &f;
        let tasks = &self.tasks;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((c, s, e)) = rx.recv() {
                        let v = f(c, s, e);
                        tasks.inc();
                        let _ = res_tx.send((c, v));
                    }
                });
            }
        });
        drop(res_tx);
        let mut slots: Vec<Option<T>> = (0..ranges.len()).map(|_| None).collect();
        while let Ok((c, v)) = res_rx.recv() {
            slots[c] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk produces exactly one result"))
            .collect()
    }

    /// Row-panel-parallel GEMM: `c[m×n] = a[m×k] · b[k×n]` with the row
    /// dimension split over the static chunk list; each panel is an
    /// independent `blas.gemm` call on its own output rows.
    ///
    /// All built-in backends accumulate each output element in ascending
    /// `k` order regardless of row tiling, so the panelled product is
    /// byte-identical to the monolithic call.
    #[allow(clippy::too_many_arguments)] // mirrors the 7-operand BLAS GEMM signature
    pub fn par_gemm(
        &self,
        blas: &dyn Blas,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        self.for_each_chunk(m, n, c, |_, r0, r1, panel| {
            blas.gemm(r1 - r0, n, k, &a[r0 * k..r1 * k], b, panel);
        });
    }

    /// Sums a long slice deterministically: per-chunk partials (each
    /// reduced with the caller's accumulation order) combined by the
    /// fixed-shape [`tree_sum`]. The split point — and therefore the
    /// rounding — depends only on the slice length, never on threads.
    pub fn reduce_slice(&self, values: &[f32], acc: Accumulation) -> f32 {
        if values.len() < self.cfg.min_parallel_elems {
            return reduce_sum(values, acc);
        }
        let partials = self.map_chunks(values.len(), |_, s, e| reduce_sum(&values[s..e], acc));
        tree_sum(&partials)
    }
}

/// Eagerly registers every `runtime.pool.*` and `runtime.cache.*` metric
/// on the global registry so the rendered telemetry report always shows
/// them — "the pool never went parallel" must read as an explicit zero,
/// not an absent row.
pub fn register_runtime_metrics() {
    for name in [
        "runtime.pool.tasks",
        "runtime.pool.parallel_regions",
        "runtime.pool.sequential_regions",
        "runtime.pool.chunks",
        "runtime.cache.prepare_hits",
        "runtime.cache.prepare_misses",
        "runtime.cache.pack_hits",
        "runtime.cache.pack_misses",
        "runtime.cache.arena_bytes_reused",
        "runtime.cache.strategy_table.hits",
        "runtime.cache.strategy_table.misses",
        "runtime.cache.strategy_table.calibrations",
    ] {
        mvtee_telemetry::counter(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlasKind;

    #[test]
    fn chunk_ranges_cover_and_are_thread_invariant() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(RuntimeConfig::with_threads(threads));
            for items in [1usize, 7, 8, 9, 100, 1023] {
                let ranges = pool.chunk_ranges(items);
                assert!(ranges.len() <= 8);
                assert_eq!(ranges.first().map(|r| r.0), Some(0));
                assert_eq!(ranges.last().map(|r| r.1), Some(items));
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gap in chunk list for {items}");
                }
                // Identical to the single-thread pool's list.
                let seq = ThreadPool::new(RuntimeConfig::with_threads(1));
                assert_eq!(ranges, seq.chunk_ranges(items));
            }
        }
        assert!(ThreadPool::new(RuntimeConfig::default()).chunk_ranges(0).is_empty());
    }

    #[test]
    fn passthrough_is_a_single_chunk() {
        let pool = ThreadPool::passthrough();
        assert_eq!(pool.chunk_ranges(100), vec![(0, 100)]);
    }

    #[test]
    fn for_each_chunk_writes_disjoint_slices() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(RuntimeConfig {
                intra_op_threads: threads,
                min_parallel_elems: 1, // force the parallel path
                ..RuntimeConfig::default()
            });
            let items = 37;
            let stride = 3;
            let mut out = vec![0.0f32; items * stride];
            pool.for_each_chunk(items, stride, &mut out, |_, s, _, slice| {
                for (i, v) in slice.iter_mut().enumerate() {
                    *v = (s * stride + i) as f32;
                }
            });
            let expect: Vec<f32> = (0..items * stride).map(|i| i as f32).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_results_are_in_chunk_order() {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(RuntimeConfig {
                intra_op_threads: threads,
                ..RuntimeConfig::default()
            });
            let got = pool.map_chunks(100, |c, s, e| (c, s, e));
            assert_eq!(got.len(), 8);
            for (i, &(c, s, e)) in got.iter().enumerate() {
                assert_eq!(c, i);
                assert!(s < e);
            }
        }
    }

    #[test]
    fn par_gemm_matches_monolithic_call_bitwise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let (m, n, k) = (23, 17, 31);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for kind in BlasKind::ALL {
            let blas = kind.instantiate();
            let mut mono = vec![0.0f32; m * n];
            blas.gemm(m, n, k, &a, &b, &mut mono);
            for threads in [1usize, 2, 4, 8] {
                let pool = ThreadPool::new(RuntimeConfig {
                    intra_op_threads: threads,
                    min_parallel_elems: 1,
                    ..RuntimeConfig::default()
                });
                let mut panelled = vec![0.0f32; m * n];
                pool.par_gemm(blas.as_ref(), m, n, k, &a, &b, &mut panelled);
                let same = mono
                    .iter()
                    .zip(panelled.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "{kind} threads={threads}: panelled GEMM drifted");
            }
        }
    }

    #[test]
    fn reduce_slice_is_thread_invariant() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<f32> = (0..10_000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for acc in [Accumulation::Sequential, Accumulation::Tree] {
            let reference = ThreadPool::new(RuntimeConfig::with_threads(1))
                .reduce_slice(&values, acc);
            for threads in [2usize, 4, 8] {
                let pool = ThreadPool::new(RuntimeConfig::with_threads(threads));
                let got = pool.reduce_slice(&values, acc);
                assert_eq!(reference.to_bits(), got.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn pool_metrics_are_registered() {
        let _ = ThreadPool::new(RuntimeConfig::default());
        let snap = mvtee_telemetry::snapshot();
        for name in [
            "runtime.pool.tasks",
            "runtime.pool.parallel_regions",
            "runtime.pool.sequential_regions",
            "runtime.pool.chunks",
            "runtime.cache.arena_bytes_reused",
        ] {
            assert!(snap.counters.contains_key(name), "{name} not registered");
        }
    }
}
