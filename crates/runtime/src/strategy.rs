//! Deterministic per-shape kernel autotuning.
//!
//! A [`StrategyTable`] picks the kernel implementation for an op invocation
//! as a **pure function of (op family, shape class, engine config)**. The
//! choice is made once per shape class by a seeded calibration pass and then
//! replayed, so the same `EngineConfig` produces byte-identical outputs
//! across runs and across thread counts — two properties a wall-clock
//! autotuner (burn-style) cannot give. Concretely:
//!
//! * The table key excludes `intra_op_threads` ([`StrategyKey`]): a panel
//!   mixing 1- and 8-thread replicas of one config must select identical
//!   kernels, or the pool's byte-determinism guarantee (DESIGN.md §5a) dies.
//! * Calibration *runs* every candidate kernel on seeded data at the class's
//!   representative shape and disqualifies any candidate that disagrees with
//!   the scalar reference beyond the relaxed differential tolerance — but it
//!   *scores* the survivors with a deterministic cost model
//!   ([`BlasKind::cost_weight`] MAC weights + pack/tail terms), never with
//!   wall-clock. Timing is host- and run-dependent; feeding it back into
//!   selection would make the table unreplayable. Measured wall-clock
//!   speedups are recorded honestly in `BENCH_runtime.json` instead.
//! * GEMM-family classes (`gemm-fc`, `matmul`, the im2col inner product) are
//!   tuned over [`GemmStrategy`] candidates. Conv lowering (direct /
//!   im2col / NHWC-direct) is itself a diversification axis whose fixed
//!   choice panels depend on — e.g. the deliberately slow NHWC lagging
//!   variant of Fig. 13 must stay slow — so conv classes are *recorded*
//!   under the configured [`ConvStrategy`](crate::ConvStrategy) rather than
//!   re-tuned, and the selection table reports which kernel ran per shape.
//!
//! [`KernelStrategy`] is the config-level override: `Auto` consults the
//! table; a fixed value pins every GEMM-family op to one kernel, which is
//! what makes strategy choice a diversification axis (different variants of
//! a panel pinned to different kernels).

use crate::blas::BlasKind;
use crate::engine::{ConvStrategy, EngineConfig, EngineKind};
use crate::kernels::Accumulation;
use crate::simd;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Config-level kernel-strategy override (the diversification axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum KernelStrategy {
    /// Consult the per-shape [`StrategyTable`] (the default).
    Auto,
    /// Pin every GEMM-family op to the plain BLAS row-panel kernel.
    Scalar,
    /// Pin to the prepacked column-panel kernel (degrades to `Scalar`,
    /// byte-identically, where no prepacked weight exists).
    PanelPacked,
    /// Pin to the 8-lane SIMD microkernel.
    SimdMicrokernel,
}

impl KernelStrategy {
    /// All values, `Auto` first.
    pub const ALL: [KernelStrategy; 4] = [
        KernelStrategy::Auto,
        KernelStrategy::Scalar,
        KernelStrategy::PanelPacked,
        KernelStrategy::SimdMicrokernel,
    ];

    /// The pinned per-call strategy, or `None` for `Auto`.
    pub fn fixed(self) -> Option<GemmStrategy> {
        match self {
            KernelStrategy::Auto => None,
            KernelStrategy::Scalar => Some(GemmStrategy::Scalar),
            KernelStrategy::PanelPacked => Some(GemmStrategy::PanelPacked),
            KernelStrategy::SimdMicrokernel => Some(GemmStrategy::SimdMicrokernel),
        }
    }

    /// Stable token used in `describe()` strings and campaign spec lines.
    pub fn token(self) -> &'static str {
        match self {
            KernelStrategy::Auto => "auto",
            KernelStrategy::Scalar => "scalar",
            KernelStrategy::PanelPacked => "panel",
            KernelStrategy::SimdMicrokernel => "simd",
        }
    }

    /// Inverse of [`token`](Self::token).
    pub fn from_token(tok: &str) -> Option<KernelStrategy> {
        KernelStrategy::ALL.into_iter().find(|k| k.token() == tok)
    }
}

impl fmt::Display for KernelStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Resolved per-invocation GEMM-family kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GemmStrategy {
    /// Plain BLAS row-panel `par_gemm` (the PR 4 baseline path).
    Scalar,
    /// Prepacked column-panel BLAS path (batch-1 fast path).
    PanelPacked,
    /// 8-lane fixed-tree SIMD microkernel over contiguous operand rows.
    SimdMicrokernel,
}

impl GemmStrategy {
    /// Stable report token.
    pub fn token(self) -> &'static str {
        match self {
            GemmStrategy::Scalar => "scalar",
            GemmStrategy::PanelPacked => "panel-packed",
            GemmStrategy::SimdMicrokernel => "simd-microkernel",
        }
    }
}

impl fmt::Display for GemmStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Op families the table keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// `Gemm` node: `y = x·wᵀ + b`, weight usually prepacked at prepare time.
    GemmFc,
    /// `MatMul` node: plain `[m,k]·[k,n]`.
    MatMul,
    /// The inner product of im2col convolution.
    ConvIm2col,
    /// A convolution invocation (recorded under the configured lowering).
    Conv,
}

impl OpClass {
    fn token(self) -> &'static str {
        match self {
            OpClass::GemmFc => "gemm-fc",
            OpClass::MatMul => "matmul",
            OpClass::ConvIm2col => "conv-im2col",
            OpClass::Conv => "conv",
        }
    }
}

/// Power-of-two bucketed shape class. Bucketing keeps the table small and
/// the calibration cost bounded while staying a pure function of the shape:
/// `bucket(x) = ⌈log2(max(x,1))⌉`, so a class covers `(2^(b-1), 2^b]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeClass {
    /// Op family.
    pub op: OpClass,
    /// `⌈log2⌉` bucket of the output-row count `m`.
    pub m: u8,
    /// `⌈log2⌉` bucket of the output-column count `n`.
    pub n: u8,
    /// `⌈log2⌉` bucket of the reduction depth `k`.
    pub k: u8,
}

fn bucket(x: usize) -> u8 {
    let below = (x.max(1) - 1) as u64;
    if below == 0 {
        0
    } else {
        (64 - below.leading_zeros()) as u8
    }
}

/// Representative dimension of a bucket (its upper bound).
fn rep(b: u8) -> u64 {
    1u64 << b.min(48)
}

impl ShapeClass {
    /// Classifies a GEMM-family invocation of logical shape `[m,k]·[k,n]`.
    pub fn gemm(op: OpClass, m: usize, n: usize, k: usize) -> ShapeClass {
        ShapeClass { op, m: bucket(m), n: bucket(n), k: bucket(k) }
    }

    /// Classifies a conv invocation by (output channels, output pixels,
    /// patch length) — the dims of its implied GEMM.
    pub fn conv(oc: usize, pixels: usize, patch: usize) -> ShapeClass {
        ShapeClass { op: OpClass::Conv, m: bucket(oc), n: bucket(pixels), k: bucket(patch) }
    }

    fn describe(&self) -> String {
        format!(
            "{} m<={} n<={} k<={}",
            self.op.token(),
            rep(self.m),
            rep(self.n),
            rep(self.k)
        )
    }
}

/// The slice of [`EngineConfig`] a strategy choice may depend on.
///
/// `intra_op_threads` is deliberately **excluded**: the thread count only
/// decides how many workers drain the chunk queue, and letting it steer
/// kernel selection would break the cross-thread byte-identity the MVX
/// layer's exact checkpoint metric depends on. `kernel_strategy` is also
/// absent because a non-`Auto` override bypasses the table entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyKey {
    /// Engine family.
    pub kind: EngineKind,
    /// BLAS backend (feeds the cost model's MAC weight).
    pub blas: BlasKind,
    /// Whether graph optimisation passes run at prepare time.
    pub optimize: bool,
    /// Reduction accumulation order.
    pub accumulation: Accumulation,
    /// Configured conv lowering (recorded per conv shape class).
    pub conv_strategy: ConvStrategy,
}

impl StrategyKey {
    /// Projects a config onto the strategy-relevant slice.
    pub fn of(cfg: &EngineConfig) -> StrategyKey {
        StrategyKey {
            kind: cfg.kind,
            blas: cfg.blas,
            optimize: cfg.optimize,
            accumulation: cfg.accumulation,
            conv_strategy: cfg.conv_strategy,
        }
    }
}

/// One resolved table entry, as surfaced in `BENCH_runtime.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyEntry {
    /// Op-family token (`gemm-fc`, `matmul`, `conv-im2col`, `conv`).
    pub op: String,
    /// Human-readable shape-class bounds.
    pub class: String,
    /// Chosen kernel token.
    pub choice: String,
    /// Deterministic cost-model score of the chosen kernel.
    pub cost_units: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Selected {
    Gemm(GemmStrategy),
    Conv(ConvStrategy),
}

impl Selected {
    fn token(self) -> &'static str {
        match self {
            Selected::Gemm(g) => g.token(),
            Selected::Conv(ConvStrategy::Direct) => "direct",
            Selected::Conv(ConvStrategy::Im2col) => "im2col",
            Selected::Conv(ConvStrategy::NhwcDirect) => "nhwc-direct",
        }
    }
}

/// Per-config kernel selection table. Shared process-wide through the
/// session [`EngineCache`](crate::EngineCache), next to the prepacked
/// weights, so calibration runs once per (config slice, shape class) and
/// every later engine instance replays the same choices.
pub struct StrategyTable {
    key: StrategyKey,
    entries: Mutex<BTreeMap<ShapeClass, (Selected, u64)>>,
}

impl fmt::Debug for StrategyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyTable").field("key", &self.key).finish()
    }
}

/// Calibration-input cap per dimension: agreement is verified on seeded data
/// at `min(rep, CAL_DIM_CAP)` per dim so calibrating a 4096-deep class stays
/// cheap. The *cost model* still sees the uncapped representative dims.
const CAL_DIM_CAP: u64 = 64;

/// Relative tolerance a candidate must meet against the scalar reference
/// during calibration — the same order as the relaxed differential metric.
const CAL_REL_TOL: f32 = 1e-3;

impl StrategyTable {
    /// Creates an empty table for one config slice.
    pub fn new(key: StrategyKey) -> StrategyTable {
        StrategyTable { key, entries: Mutex::new(BTreeMap::new()) }
    }

    /// The config slice this table is keyed by.
    pub fn key(&self) -> StrategyKey {
        self.key
    }

    /// Selects the kernel for a GEMM-family invocation. First hit on a shape
    /// class runs the seeded calibration pass; every later call replays the
    /// stored choice.
    pub fn select_gemm(&self, op: OpClass, m: usize, n: usize, k: usize) -> GemmStrategy {
        let class = ShapeClass::gemm(op, m, n, k);
        let mut entries = self.entries.lock().expect("strategy table poisoned");
        if let Some(&(Selected::Gemm(g), _)) = entries.get(&class) {
            strategy_hits().inc();
            return g;
        }
        strategy_misses().inc();
        let (choice, cost) = calibrate_gemm(self.key, class);
        entries.insert(class, (Selected::Gemm(choice), cost));
        choice
    }

    /// Records a conv invocation under the configured lowering, so the
    /// selection table reports which kernel ran per conv shape class.
    pub fn record_conv(&self, strategy: ConvStrategy, oc: usize, pixels: usize, patch: usize) {
        let class = ShapeClass::conv(oc, pixels, patch);
        let mut entries = self.entries.lock().expect("strategy table poisoned");
        if entries.contains_key(&class) {
            strategy_hits().inc();
            return;
        }
        strategy_misses().inc();
        let cost = conv_cost(strategy, class);
        entries.insert(class, (Selected::Conv(strategy), cost));
    }

    /// Number of resolved shape classes.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("strategy table poisoned").len()
    }

    /// Whether no shape class has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolved entries in deterministic (class-ordered) form.
    pub fn entries(&self) -> Vec<StrategyEntry> {
        self.entries
            .lock()
            .expect("strategy table poisoned")
            .iter()
            .map(|(class, (sel, cost))| StrategyEntry {
                op: class.op.token().to_string(),
                class: class.describe(),
                choice: sel.token().to_string(),
                cost_units: *cost,
            })
            .collect()
    }

    /// Deterministic byte rendering of the whole table. Two tables built
    /// from the same (config slice, shape set) must render identically —
    /// the purity gate the proptests pin.
    pub fn render_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "strategy-table kind={} blas={} opt={} acc={:?} conv={:?}\n",
            self.key.kind, self.key.blas, self.key.optimize, self.key.accumulation,
            self.key.conv_strategy
        );
        for e in self.entries() {
            out.push_str(&format!("{} -> {} cost={}\n", e.class, e.choice, e.cost_units));
        }
        out.into_bytes()
    }
}

/// Deterministic cost-model score (abstract work units — MACs weighted by
/// the backend's locality, plus pack and lane-tail terms). Fixed constants,
/// never measurements; see the module docs for why.
fn gemm_cost(strategy: GemmStrategy, key: StrategyKey, class: ShapeClass) -> u64 {
    let (m, n, k) = (rep(class.m), rep(class.n), rep(class.k));
    let macs = m.saturating_mul(n).saturating_mul(k);
    let w = key.blas.cost_weight();
    match strategy {
        GemmStrategy::Scalar => macs.saturating_mul(w),
        GemmStrategy::PanelPacked => {
            if class.op != OpClass::GemmFc {
                // No prepacked weight exists outside gemm-fc; the kernel
                // degrades to Scalar, so cost ties + 1 keeps Scalar first.
                macs.saturating_mul(w).saturating_add(1)
            } else if class.m == 0 {
                // Batch-1: the prepacked column panels parallelise the m
                // dimension that row splitting cannot.
                macs.saturating_mul(w).saturating_mul(3) / 4
            } else {
                macs.saturating_mul(w)
            }
        }
        GemmStrategy::SimdMicrokernel => {
            // 8-lane inner loop amortises to ~2 units/MAC once the depth
            // clears a couple of lane widths; below that the sequential
            // tail dominates and the microkernel loses to the BLAS loop.
            let per_mac: u64 = if rep(class.k) < (simd::LANES as u64) * 2 { 6 } else { 2 };
            let pack = match class.op {
                // gemm-fc feeds w rows directly (already [m,k]); im2col
                // fills the column buffer transposed at no extra traffic.
                OpClass::GemmFc | OpClass::ConvIm2col => 0,
                // matmul needs a one-shot arena transpose of b.
                OpClass::MatMul => n.saturating_mul(k).saturating_mul(2),
                OpClass::Conv => 0,
            };
            macs.saturating_mul(per_mac).saturating_add(pack)
        }
    }
}

fn conv_cost(strategy: ConvStrategy, class: ShapeClass) -> u64 {
    let macs = rep(class.m).saturating_mul(rep(class.n)).saturating_mul(rep(class.k));
    match strategy {
        ConvStrategy::Im2col => macs.saturating_mul(3),
        ConvStrategy::Direct => macs.saturating_mul(4),
        ConvStrategy::NhwcDirect => macs.saturating_mul(5),
    }
}

/// Deterministic xorshift fill for calibration operands, seeded from the
/// (key, class) pair so the pass is a pure function of its inputs.
fn seeded_fill(len: usize, mut state: u64) -> Vec<f32> {
    state |= 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn class_seed(key: StrategyKey, class: ShapeClass) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    class.hash(&mut h);
    h.finish() ^ 0x5EED_CA11_B8A7_E000
}

/// The seeded calibration pass: runs each candidate kernel on deterministic
/// data at the class's (capped) representative shape, disqualifies
/// candidates that disagree with the scalar reference beyond the relaxed
/// tolerance, and picks the cheapest survivor under the cost model.
/// Ties resolve to the earlier candidate (Scalar < PanelPacked < SIMD).
fn calibrate_gemm(key: StrategyKey, class: ShapeClass) -> (GemmStrategy, u64) {
    strategy_calibrations().inc();
    let m = rep(class.m).min(CAL_DIM_CAP) as usize;
    let n = rep(class.n).min(CAL_DIM_CAP) as usize;
    let k = rep(class.k).min(CAL_DIM_CAP) as usize;
    let seed = class_seed(key, class);
    let a = seeded_fill(m * k, seed ^ 0x1);
    let bt = seeded_fill(n * k, seed ^ 0x2); // [n, k] row-major (bᵀ)
    let mut b = vec![0.0f32; k * n]; // [k, n] row-major for the BLAS path
    for j in 0..n {
        for i in 0..k {
            b[i * n + j] = bt[j * k + i];
        }
    }
    let blas = key.blas.instantiate();
    let mut reference = vec![0.0f32; m * n];
    blas.gemm(m, n, k, &a, &b, &mut reference);

    let mut candidates = vec![GemmStrategy::Scalar];
    if class.op == OpClass::GemmFc {
        candidates.push(GemmStrategy::PanelPacked);
    }
    candidates.push(GemmStrategy::SimdMicrokernel);

    let mut best: Option<(GemmStrategy, u64)> = None;
    for cand in candidates {
        let agrees = match cand {
            // Scalar IS the reference; PanelPacked re-tiles the same
            // ascending-k BLAS accumulation, which is byte-identical to a
            // monolithic call (DESIGN.md §5a) — both agree trivially.
            GemmStrategy::Scalar | GemmStrategy::PanelPacked => true,
            GemmStrategy::SimdMicrokernel => {
                let mut got = vec![0.0f32; m * n];
                simd::gemm_bt(m, n, k, &a, &bt, &mut got);
                reference.iter().zip(&got).all(|(r, g)| {
                    (r - g).abs() <= CAL_REL_TOL * r.abs().max(1.0)
                })
            }
        };
        if !agrees {
            continue;
        }
        let cost = gemm_cost(cand, key, class);
        if best.is_none_or(|(_, c)| cost < c) {
            best = Some((cand, cost));
        }
    }
    // Scalar always agrees, so `best` is always populated.
    best.unwrap_or((GemmStrategy::Scalar, u64::MAX))
}

pub(crate) fn strategy_hits() -> &'static mvtee_telemetry::Counter {
    static C: OnceLock<mvtee_telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| mvtee_telemetry::counter("runtime.cache.strategy_table.hits"))
}

pub(crate) fn strategy_misses() -> &'static mvtee_telemetry::Counter {
    static C: OnceLock<mvtee_telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| mvtee_telemetry::counter("runtime.cache.strategy_table.misses"))
}

pub(crate) fn strategy_calibrations() -> &'static mvtee_telemetry::Counter {
    static C: OnceLock<mvtee_telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| mvtee_telemetry::counter("runtime.cache.strategy_table.calibrations"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> StrategyKey {
        StrategyKey::of(&EngineConfig::of_kind(EngineKind::OrtLike))
    }

    #[test]
    fn buckets_are_monotone_and_cover() {
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(5), 3);
        assert_eq!(bucket(1024), 10);
        assert!(rep(bucket(1000)) >= 1000);
    }

    #[test]
    fn selection_is_replayed_from_the_table() {
        let t = StrategyTable::new(key());
        let first = t.select_gemm(OpClass::GemmFc, 1, 1000, 512);
        let before = strategy_hits().get();
        let second = t.select_gemm(OpClass::GemmFc, 1, 1000, 512);
        assert_eq!(first, second);
        assert!(strategy_hits().get() > before);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn same_inputs_render_identical_bytes() {
        let shapes = [(OpClass::GemmFc, 1usize, 1000usize, 512usize), (OpClass::MatMul, 8, 8, 4)];
        let (a, b) = (StrategyTable::new(key()), StrategyTable::new(key()));
        for &(op, m, n, k) in &shapes {
            a.select_gemm(op, m, n, k);
            b.select_gemm(op, m, n, k);
        }
        a.record_conv(ConvStrategy::Im2col, 64, 3136, 576);
        b.record_conv(ConvStrategy::Im2col, 64, 3136, 576);
        assert_eq!(a.render_bytes(), b.render_bytes());
    }

    #[test]
    fn tiny_depth_stays_on_blas_kernels() {
        let t = StrategyTable::new(key());
        // k = 4 < 2 lanes: the microkernel's tail penalty must keep the
        // BLAS path selected.
        let got = t.select_gemm(OpClass::MatMul, 8, 8, 4);
        assert_eq!(got, GemmStrategy::Scalar);
    }

    #[test]
    fn deep_fc_selects_the_microkernel() {
        let t = StrategyTable::new(key());
        let got = t.select_gemm(OpClass::GemmFc, 4, 1000, 1280);
        assert_eq!(got, GemmStrategy::SimdMicrokernel);
    }

    #[test]
    fn batch1_fc_prefers_packed_panels_over_scalar() {
        // Force the microkernel out by keying a naive-BLAS config with a
        // tiny depth; batch-1 then favours the packed panels.
        let cfg = EngineConfig::of_kind(EngineKind::Reference);
        let t = StrategyTable::new(StrategyKey::of(&cfg));
        let got = t.select_gemm(OpClass::GemmFc, 1, 10, 4);
        assert_eq!(got, GemmStrategy::PanelPacked);
    }

    #[test]
    fn kernel_strategy_tokens_round_trip() {
        for ks in KernelStrategy::ALL {
            assert_eq!(KernelStrategy::from_token(ks.token()), Some(ks));
        }
        assert_eq!(KernelStrategy::from_token("bogus"), None);
    }
}
