//! Partition-set pools: "we repeat this model partitioning with different
//! target numbers, creating a diverse range of partition sets and
//! checkpoint configurations" (§4.1).
//!
//! The pool is built offline and consulted by the monitor when an MVX
//! configuration requests a partition set (deterministically by id or
//! randomly), including during full variant updates which "reshuffle
//! partition sets".

use crate::{PartitionSet, Partitioner, Result};
use mvtee_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for pool construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Partition-count targets to generate sets for.
    pub targets: Vec<usize>,
    /// Sets generated per target (different seeds).
    pub sets_per_target: usize,
    /// Best-of runs per set (the optional global-optimisation loop).
    pub runs_per_set: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { targets: vec![2, 5, 8], sets_per_target: 2, runs_per_set: 3 }
    }
}

/// A pool of pre-generated partition sets for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionPool {
    /// Model name the pool belongs to.
    pub model: String,
    sets: Vec<PartitionSet>,
}

impl PartitionPool {
    /// Builds a pool per `config` using the default partitioner.
    ///
    /// # Errors
    ///
    /// Propagates partitioner failures.
    pub fn build(graph: &Graph, config: &PoolConfig, seed: u64) -> Result<Self> {
        let mut sets = Vec::new();
        for (ti, &target) in config.targets.iter().enumerate() {
            for si in 0..config.sets_per_target {
                let set_seed = seed
                    .wrapping_add(ti as u64 * 1_000_003)
                    .wrapping_add(si as u64 * 7_001);
                let set = Partitioner::new(target).partition_best_of(
                    graph,
                    set_seed,
                    config.runs_per_set,
                )?;
                set.verify(graph)?;
                sets.push(set);
            }
        }
        Ok(PartitionPool { model: graph.name.clone(), sets })
    }

    /// All sets.
    pub fn sets(&self) -> &[PartitionSet] {
        &self.sets
    }

    /// Number of pooled sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Deterministic selection: the first pooled set with exactly
    /// `partitions` stages.
    pub fn select_by_count(&self, partitions: usize) -> Option<&PartitionSet> {
        self.sets.iter().find(|s| s.len() == partitions)
    }

    /// Random selection among sets with the requested count (used by the
    /// monitor's "deterministically or randomly" selection and full
    /// updates).
    pub fn select_random(&self, partitions: usize, seed: u64) -> Option<&PartitionSet> {
        let matching: Vec<&PartitionSet> =
            self.sets.iter().filter(|s| s.len() == partitions).collect();
        if matching.is_empty() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Some(matching[rng.gen_range(0..matching.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

    #[test]
    fn pool_builds_all_targets() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1).unwrap();
        let cfg = PoolConfig { targets: vec![2, 5], sets_per_target: 2, runs_per_set: 1 };
        let pool = PartitionPool::build(&m.graph, &cfg, 9).unwrap();
        assert_eq!(pool.len(), 4);
        assert!(pool.select_by_count(2).is_some());
        assert!(pool.select_by_count(5).is_some());
        assert!(pool.select_by_count(3).is_none());
    }

    #[test]
    fn random_selection_is_seeded() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).unwrap();
        let cfg = PoolConfig { targets: vec![4], sets_per_target: 3, runs_per_set: 1 };
        let pool = PartitionPool::build(&m.graph, &cfg, 3).unwrap();
        let a = pool.select_random(4, 11).unwrap();
        let b = pool.select_random(4, 11).unwrap();
        assert_eq!(a, b);
        assert!(pool.select_random(9, 0).is_none());
    }

    #[test]
    fn default_config_reasonable() {
        let cfg = PoolConfig::default();
        assert!(cfg.targets.contains(&5));
        assert!(cfg.sets_per_target >= 1);
    }
}
