//! Algorithm 1: random contraction for model partitioning.
//!
//! ```text
//! par, parSize <- {n : n}, {n : 1}
//! edges <- {(i, j) for i, j in G if i outputs to j}
//! ComputeWeights(edges, par, parSize)
//! while number of partitions > t:
//!     (i, j) <- RandEdgeByWeight(edges, par, parSize)
//!     if CheckConstraints(par[i], par[j]):
//!         MergePartitions(i, j, par, parSize)
//!         UpdateWeights(edges, par, parSize)
//! return partitions formed by nodes sharing the same par
//! ```
//!
//! On top of the paper's soft preferences and hard constraints the
//! implementation always enforces *quotient acyclicity*: an edge is only
//! contracted when no alternative directed path connects its endpoints, so
//! every produced partition set is a valid pipeline (the paper's execution
//! model organises partitions into a DAG mirroring the model topology).

use crate::plan::{compute_costs, PartitionSet};
use crate::{PartitionError, Result};
use mvtee_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Context handed to weight and constraint callbacks for one candidate
/// contraction.
#[derive(Debug, Clone, Copy)]
pub struct ContractionCtx {
    /// Node count of the source partition.
    pub size_a: usize,
    /// Node count of the destination partition.
    pub size_b: usize,
    /// Compute cost of the source partition.
    pub cost_a: f64,
    /// Compute cost of the destination partition.
    pub cost_b: f64,
    /// Total graph cost (for normalisation).
    pub total_cost: f64,
    /// Current number of partitions.
    pub current_partitions: usize,
    /// Target number of partitions.
    pub target: usize,
}

/// Soft preference: returns a non-negative weight; higher weights are
/// contracted more often.
pub type WeightFn = Box<dyn Fn(&ContractionCtx) -> f64>;

/// Hard constraint: returning `false` vetoes the contraction.
pub type ConstraintFn = Box<dyn Fn(&ContractionCtx) -> bool>;

/// The random-balanced partitioner.
pub struct Partitioner {
    target: usize,
    weight_fn: WeightFn,
    constraint_fn: ConstraintFn,
    /// Retries when a run gets stuck before reaching the target.
    max_restarts: usize,
}

impl std::fmt::Debug for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Partitioner {{ target: {} }}", self.target)
    }
}

impl Partitioner {
    /// Creates a partitioner with the default balance-biased weight
    /// function and a permissive size constraint.
    pub fn new(target: usize) -> Self {
        Partitioner {
            target,
            weight_fn: Box::new(default_weight),
            constraint_fn: Box::new(|_| true),
            max_restarts: 16,
        }
    }

    /// Replaces the soft preference ("customized and extensible weight
    /// function", §4.1).
    pub fn with_weight_fn(mut self, f: WeightFn) -> Self {
        self.weight_fn = f;
        self
    }

    /// Replaces the hard constraint function.
    pub fn with_constraint_fn(mut self, f: ConstraintFn) -> Self {
        self.constraint_fn = f;
        self
    }

    /// Sets the restart budget for stuck runs.
    pub fn with_max_restarts(mut self, restarts: usize) -> Self {
        self.max_restarts = restarts;
        self
    }

    /// Runs the contraction to produce a [`PartitionSet`].
    ///
    /// # Errors
    ///
    /// * [`PartitionError::InvalidTarget`] when `target` is 0 or exceeds the
    ///   node count,
    /// * [`PartitionError::Stuck`] when constraints prevent reaching the
    ///   target after all restarts.
    pub fn partition(&self, graph: &Graph, seed: u64) -> Result<PartitionSet> {
        if self.target == 0 || self.target > graph.node_count() {
            return Err(PartitionError::InvalidTarget {
                requested: self.target,
                nodes: graph.node_count(),
            });
        }
        let mut last_err = None;
        for attempt in 0..=self.max_restarts {
            let attempt_seed = seed.wrapping_add(attempt as u64 * 0x9e37_79b9);
            match self.try_partition(graph, attempt_seed) {
                Ok(groups) => return PartitionSet::from_groups(graph, groups, seed),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// Runs the partitioner `runs` times and keeps the most balanced result
    /// — the paper's "run multiple times to identify correct and globally
    /// optimal configurations".
    ///
    /// # Errors
    ///
    /// Fails if every run fails.
    pub fn partition_best_of(&self, graph: &Graph, seed: u64, runs: usize) -> Result<PartitionSet> {
        let mut best: Option<PartitionSet> = None;
        let mut last_err = None;
        for r in 0..runs.max(1) {
            match self.partition(graph, seed.wrapping_add(r as u64 * 7919)) {
                Ok(set) => {
                    let better = best
                        .as_ref()
                        .map(|b| set.imbalance() < b.imbalance())
                        .unwrap_or(true);
                    if better {
                        best = Some(set);
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        best.ok_or_else(|| last_err.expect("no successes and no errors is impossible"))
    }

    fn try_partition(&self, graph: &Graph, seed: u64) -> Result<Vec<Vec<NodeId>>> {
        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = compute_costs(graph);
        let total_cost: f64 = costs.iter().sum();

        // Union-find over nodes.
        let mut uf = UnionFind::new(n);
        let mut part_size: Vec<usize> = vec![1; n];
        let mut part_cost: Vec<f64> = costs.clone();
        let mut partitions = n;

        // Node-level DAG adjacency for path checks.
        let edges = graph.node_edges();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (a, b) in &edges {
            succ[a.0].push(b.0);
        }

        // Candidate edge list (deduplicated per quotient pair lazily).
        let mut candidates: Vec<(usize, usize)> =
            edges.iter().map(|(a, b)| (a.0, b.0)).collect();

        while partitions > self.target {
            // Collect live candidate edges (endpoints in different
            // partitions) with weights.
            let mut live: Vec<(usize, f64)> = Vec::new();
            let mut seen_pairs: HashSet<(usize, usize)> = HashSet::new();
            for (idx, &(a, b)) in candidates.iter().enumerate() {
                let (ra, rb) = (uf.find(a), uf.find(b));
                if ra == rb || !seen_pairs.insert((ra.min(rb), ra.max(rb))) {
                    continue;
                }
                let ctx = ContractionCtx {
                    size_a: part_size[ra],
                    size_b: part_size[rb],
                    cost_a: part_cost[ra],
                    cost_b: part_cost[rb],
                    total_cost,
                    current_partitions: partitions,
                    target: self.target,
                };
                if !(self.constraint_fn)(&ctx) {
                    continue;
                }
                let w = (self.weight_fn)(&ctx);
                if w > 0.0 && w.is_finite() {
                    live.push((idx, w));
                }
            }
            if live.is_empty() {
                // No contractible edge spans two partitions. This happens
                // for graphs whose node-edge relation is disconnected —
                // e.g. a node fed only by the graph input whose output is
                // never consumed is an isolated vertex. Merge a pair of
                // partitions with no directed path in either direction
                // (always acyclicity-safe) and continue.
                if merge_unrelated_pair(
                    &succ,
                    &mut uf,
                    &mut part_size,
                    &mut part_cost,
                    n,
                    &self.constraint_fn,
                    total_cost,
                    partitions,
                    self.target,
                ) {
                    partitions -= 1;
                    continue;
                }
                return Err(PartitionError::Stuck { remaining: partitions, target: self.target });
            }
            // Weighted random choice without replacement until one passes
            // the acyclicity check.
            let mut contracted = false;
            while !live.is_empty() {
                let total_w: f64 = live.iter().map(|(_, w)| w).sum();
                let mut pick = rng.gen_range(0.0..total_w);
                let mut chosen = live.len() - 1;
                for (i, (_, w)) in live.iter().enumerate() {
                    if pick < *w {
                        chosen = i;
                        break;
                    }
                    pick -= w;
                }
                let (edge_idx, _) = live.swap_remove(chosen);
                let (a, b) = candidates[edge_idx];
                let (ra, rb) = (uf.find(a), uf.find(b));
                if ra == rb {
                    continue;
                }
                if quotient_path_exists(&succ, &mut uf, ra, rb) {
                    // Contracting would create a quotient cycle; veto.
                    continue;
                }
                // Merge rb into ra.
                let (size_a, size_b) = (part_size[ra], part_size[rb]);
                let (cost_a, cost_b) = (part_cost[ra], part_cost[rb]);
                let root = uf.union(ra, rb);
                part_size[root] = size_a + size_b;
                part_cost[root] = cost_a + cost_b;
                partitions -= 1;
                contracted = true;
                break;
            }
            if !contracted {
                if merge_unrelated_pair(
                    &succ,
                    &mut uf,
                    &mut part_size,
                    &mut part_cost,
                    n,
                    &self.constraint_fn,
                    total_cost,
                    partitions,
                    self.target,
                ) {
                    partitions -= 1;
                    continue;
                }
                return Err(PartitionError::Stuck { remaining: partitions, target: self.target });
            }
            // Periodically drop dead candidate edges to bound rescans.
            if candidates.len() > 4 * n {
                candidates.retain(|&(a, b)| uf.find(a) != uf.find(b));
            }
        }
        // Gather groups.
        let mut groups: HashMap<usize, Vec<NodeId>> = HashMap::new();
        for i in 0..n {
            groups.entry(uf.find(i)).or_default().push(NodeId(i));
        }
        Ok(groups.into_values().collect())
    }
}

/// Default soft preference: strongly favours merging the pair with the
/// smallest combined cost, biasing towards balanced partitions.
fn default_weight(ctx: &ContractionCtx) -> f64 {
    let combined = (ctx.cost_a + ctx.cost_b) / ctx.total_cost.max(1.0);
    1.0 / (combined * combined + 1e-9)
}

/// Merges one pair of partitions with *no* directed path between them in
/// either direction (such a merge can never create a quotient cycle).
/// Returns `false` when every remaining pair is path-related.
#[allow(clippy::too_many_arguments)]
fn merge_unrelated_pair(
    succ: &[Vec<usize>],
    uf: &mut UnionFind,
    part_size: &mut [usize],
    part_cost: &mut [f64],
    n: usize,
    constraint_fn: &ConstraintFn,
    total_cost: f64,
    partitions: usize,
    target: usize,
) -> bool {
    let mut roots: Vec<usize> = (0..n).map(|i| uf.find(i)).collect();
    roots.sort_unstable();
    roots.dedup();
    // Prefer merging the cheapest pair (keeps the balance bias).
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for (ai, &a) in roots.iter().enumerate() {
        for &b in roots.iter().skip(ai + 1) {
            pairs.push((part_cost[a] + part_cost[b], a, b));
        }
    }
    pairs.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite costs"));
    for (_, a, b) in pairs {
        let ctx = ContractionCtx {
            size_a: part_size[a],
            size_b: part_size[b],
            cost_a: part_cost[a],
            cost_b: part_cost[b],
            total_cost,
            current_partitions: partitions,
            target,
        };
        if !constraint_fn(&ctx) {
            continue;
        }
        if !quotient_path_exists(succ, uf, a, b) && !quotient_path_exists(succ, uf, b, a) {
            let (sa, sb) = (part_size[a], part_size[b]);
            let (ca, cb) = (part_cost[a], part_cost[b]);
            let root = uf.union(a, b);
            part_size[root] = sa + sb;
            part_cost[root] = ca + cb;
            return true;
        }
    }
    false
}

/// Is there a directed path from partition `from` to partition `to` in the
/// quotient graph that uses at least one intermediate partition?
///
/// Contracting an edge `(from, to)` is safe iff no such path exists (the
/// direct edge itself is fine).
fn quotient_path_exists(succ: &[Vec<usize>], uf: &mut UnionFind, from: usize, to: usize) -> bool {
    // BFS over quotient reachability, skipping the direct from->to hop.
    let mut visited: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = vec![from];
    while let Some(p) = stack.pop() {
        if !visited.insert(p) {
            continue;
        }
        // Expand all nodes currently in partition p. For efficiency we scan
        // node-level successors of all nodes (amortised fine at model
        // scale).
        for (node, node_succ) in succ.iter().enumerate() {
            if uf.find(node) != p {
                continue;
            }
            for &s in node_succ {
                let q = uf.find(s);
                if q == p {
                    continue;
                }
                if q == to {
                    if p != from {
                        return true; // reached via an intermediate partition
                    }
                    continue; // the direct edge itself is the one contracted
                }
                if !visited.contains(&q) {
                    stack.push(q);
                }
            }
        }
    }
    false
}

/// Path-compressed, union-by-size union-find.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions two roots; returns the surviving root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        if self.rank[ra] < self.rank[rb] {
            self.parent[ra] = rb;
            rb
        } else if self.rank[ra] > self.rank[rb] {
            self.parent[rb] = ra;
            ra
        } else {
            self.parent[rb] = ra;
            self.rank[ra] += 1;
            ra
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

    #[test]
    fn partitions_resnet_into_target_counts() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1).unwrap();
        for target in [2usize, 5, 8, 10] {
            let set = Partitioner::new(target).partition(&m.graph, 99).unwrap();
            assert_eq!(set.len(), target);
            set.verify(&m.graph).unwrap();
        }
    }

    #[test]
    fn partitions_branchy_models() {
        for kind in [ModelKind::GoogleNet, ModelKind::InceptionV3] {
            let m = zoo::build(kind, ScaleProfile::Test, 2).unwrap();
            let set = Partitioner::new(5).partition(&m.graph, 7).unwrap();
            assert_eq!(set.len(), 5, "{kind}");
            set.verify(&m.graph).unwrap();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1).unwrap();
        let a = Partitioner::new(5).partition(&m.graph, 1).unwrap();
        let b = Partitioner::new(5).partition(&m.graph, 2).unwrap();
        // Randomised: overwhelmingly likely to differ in stage boundaries.
        assert_ne!(a.stages, b.stages);
    }

    #[test]
    fn same_seed_reproducible() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).unwrap();
        let a = Partitioner::new(4).partition(&m.graph, 5).unwrap();
        let b = Partitioner::new(4).partition(&m.graph, 5).unwrap();
        assert_eq!(a.stages, b.stages);
    }

    #[test]
    fn default_weight_produces_reasonable_balance() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1).unwrap();
        let set = Partitioner::new(5).partition_best_of(&m.graph, 3, 8).unwrap();
        // "Balanced" is best-effort on a heterogeneous DAG: assert the
        // best-of-8 run is within a generous factor.
        assert!(set.imbalance() < 50.0, "imbalance {}", set.imbalance());
    }

    #[test]
    fn invalid_targets_rejected() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1).unwrap();
        assert!(matches!(
            Partitioner::new(0).partition(&m.graph, 1),
            Err(PartitionError::InvalidTarget { .. })
        ));
        assert!(matches!(
            Partitioner::new(100_000).partition(&m.graph, 1),
            Err(PartitionError::InvalidTarget { .. })
        ));
    }

    #[test]
    fn target_equal_to_node_count() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1).unwrap();
        let n = m.graph.node_count();
        let set = Partitioner::new(n).partition(&m.graph, 1).unwrap();
        assert_eq!(set.len(), n);
        set.verify(&m.graph).unwrap();
    }

    #[test]
    fn hard_constraints_are_respected() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).unwrap();
        let n = m.graph.node_count();
        let cap = n / 3; // no partition may exceed a third of the graph
        let p = Partitioner::new(5)
            .with_constraint_fn(Box::new(move |ctx| ctx.size_a + ctx.size_b <= cap));
        let set = p.partition(&m.graph, 3).unwrap();
        for s in &set.stages {
            assert!(s.nodes.len() <= cap, "stage {} has {} nodes", s.index, s.nodes.len());
        }
    }

    #[test]
    fn zero_weights_fall_back_to_unrelated_merges_only() {
        // A weight function that zeroes every edge disables edge
        // contraction; the unrelated-pair fallback still merges what it
        // safely can, and the run either reaches the target or reports
        // Stuck — never panics, never produces an invalid set.
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).unwrap();
        let p = Partitioner::new(2)
            .with_weight_fn(Box::new(|_| 0.0))
            .with_max_restarts(0);
        match p.partition(&m.graph, 1) {
            Ok(set) => set.verify(&m.graph).unwrap(),
            Err(PartitionError::Stuck { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn always_false_constraint_reports_stuck() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 1).unwrap();
        let p = Partitioner::new(2)
            .with_constraint_fn(Box::new(|_| false))
            .with_max_restarts(0);
        assert!(matches!(p.partition(&m.graph, 1), Err(PartitionError::Stuck { .. })));
    }

    #[test]
    fn disconnected_node_components_still_partition() {
        // A node fed only by the graph input whose output is unused is an
        // isolated vertex in the node-edge relation; the partitioner must
        // still reach any target (regression for a proptest-found case).
        use mvtee_graph::op::ActivationKind;
        use mvtee_graph::GraphBuilder;
        let mut b = GraphBuilder::new("isolated", 1);
        let x = b.input(&[1, 4, 4, 4]);
        // Two dangling branches straight off the input.
        let _dangle1 = b.activation(x, ActivationKind::Relu).unwrap();
        let _dangle2 = b.activation(x, ActivationKind::Tanh).unwrap();
        // A main chain.
        let a = b.activation(x, ActivationKind::Sigmoid).unwrap();
        let c = b.activation(a, ActivationKind::Relu).unwrap();
        let d = b.activation(c, ActivationKind::Relu).unwrap();
        let g = b.finish(vec![d]).unwrap();
        for target in [1usize, 2, 3] {
            let set = Partitioner::new(target).partition(&g, 7).unwrap();
            assert_eq!(set.len(), target, "target {target}");
            set.verify(&g).unwrap();
        }
    }

    #[test]
    fn union_find_behaviour() {
        let mut uf = UnionFind::new(4);
        assert_ne!(uf.find(0), uf.find(1));
        let r = uf.union(0, 1);
        assert_eq!(uf.find(0), r);
        assert_eq!(uf.find(1), r);
        uf.union(2, 3);
        uf.union(0, 2);
        assert_eq!(uf.find(3), uf.find(1));
    }
}
