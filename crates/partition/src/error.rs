use std::fmt;

/// Errors produced by the partitioner.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// The requested partition count is impossible for this graph.
    InvalidTarget {
        /// Requested partitions.
        requested: usize,
        /// Number of nodes available.
        nodes: usize,
    },
    /// Contraction could not reach the target without violating constraints.
    Stuck {
        /// Number of partitions remaining when no contractible edge was left.
        remaining: usize,
        /// The target.
        target: usize,
    },
    /// A graph operation failed.
    Graph(mvtee_graph::GraphError),
    /// A produced partition set failed verification.
    Verification(String),
    /// Manual slicing boundaries were invalid.
    InvalidBoundaries(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidTarget { requested, nodes } => {
                write!(f, "cannot form {requested} partitions from {nodes} nodes")
            }
            PartitionError::Stuck { remaining, target } => write!(
                f,
                "contraction stuck at {remaining} partitions before reaching target {target}"
            ),
            PartitionError::Graph(e) => write!(f, "graph error: {e}"),
            PartitionError::Verification(why) => write!(f, "partition verification failed: {why}"),
            PartitionError::InvalidBoundaries(why) => write!(f, "invalid boundaries: {why}"),
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mvtee_graph::GraphError> for PartitionError {
    fn from(e: mvtee_graph::GraphError) -> Self {
        PartitionError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            PartitionError::InvalidTarget { requested: 9, nodes: 3 },
            PartitionError::Stuck { remaining: 7, target: 5 },
            PartitionError::Graph(mvtee_graph::GraphError::CyclicGraph),
            PartitionError::Verification("x".into()),
            PartitionError::InvalidBoundaries("y".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
