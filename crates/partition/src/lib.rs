//! Random-balanced model partitioning — Algorithm 1 of the paper (§4.1).
//!
//! MVTEE divides a model's computational graph into smaller subgraphs whose
//! connections form the MVX **checkpoints**. The partitioner implements the
//! paper's randomized contraction (a Karger-style global-min-cut bias) with:
//!
//! * **soft preferences** — a customizable [`WeightFn`] biases the random
//!   edge choice; the default prefers merging small partitions, yielding
//!   balanced sizes,
//! * **hard constraints** — a [`ConstraintFn`] rejects contractions (size
//!   caps, custom policies); on top of user constraints the partitioner
//!   always preserves *quotient acyclicity* so the partitions form valid
//!   pipeline stages,
//! * **manual mode** — [`slice_by_boundaries`] for model owners with expert
//!   knowledge of effective checkpoint locations,
//! * **pools** — [`PartitionPool`] repeats partitioning over multiple
//!   targets/seeds, producing "a diverse range of partition sets and
//!   checkpoint configurations" for runtime selection.
//!
//! # Example
//!
//! ```
//! use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
//! use mvtee_partition::Partitioner;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 1)?;
//! let set = Partitioner::new(5).partition(&model.graph, 42)?;
//! assert_eq!(set.len(), 5);
//! set.verify(&model.graph)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contraction;
mod error;
mod plan;
mod pool;

pub use contraction::{ContractionCtx, ConstraintFn, Partitioner, WeightFn};
pub use error::PartitionError;
pub use plan::{slice_by_boundaries, PartitionSet, StagePlan};
pub use pool::{PartitionPool, PoolConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PartitionError>;
