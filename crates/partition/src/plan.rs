//! Partition sets and per-stage plans.

use crate::{PartitionError, Result};
use mvtee_graph::{Graph, NodeId, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// One pipeline stage: a convex set of nodes plus its boundary interface in
/// *parent-graph* value ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// Stage index in pipeline order.
    pub index: usize,
    /// Member nodes (parent ids).
    pub nodes: Vec<NodeId>,
    /// Boundary inputs in ascending parent value order: values this stage
    /// consumes that are produced outside it (graph inputs or earlier
    /// stages). Matches the extracted subgraph's input order.
    pub inputs: Vec<ValueId>,
    /// Boundary outputs in ascending parent value order. Matches the
    /// extracted subgraph's output order.
    pub outputs: Vec<ValueId>,
    /// Estimated compute cost (arbitrary FLOP-ish units) for balance
    /// statistics.
    pub cost: f64,
}

/// A complete partitioning of a model into pipeline stages.
///
/// Invariants (checked by [`PartitionSet::verify`]):
/// * stages cover every node exactly once,
/// * stage order is topological for the quotient graph (a stage only
///   consumes values produced by strictly earlier stages or graph inputs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSet {
    /// Identifier (seed used to generate it, for reproducibility).
    pub seed: u64,
    /// Stages in pipeline order.
    pub stages: Vec<StagePlan>,
}

impl PartitionSet {
    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when there are no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of checkpoints (stage boundaries).
    pub fn checkpoint_count(&self) -> usize {
        self.stages.len().saturating_sub(1)
    }

    /// Builds a `PartitionSet` from groups of node ids (in any order); the
    /// stage order is derived topologically and boundary interfaces are
    /// computed from the parent graph.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Verification`] when groups do not cover
    /// the graph exactly or the quotient graph is cyclic.
    pub fn from_groups(graph: &Graph, groups: Vec<Vec<NodeId>>, seed: u64) -> Result<Self> {
        // Coverage check.
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for g in &groups {
            for &n in g {
                if n.0 >= graph.node_count() {
                    return Err(PartitionError::Verification(format!("unknown node {}", n.0)));
                }
                if !seen.insert(n) {
                    return Err(PartitionError::Verification(format!(
                        "node {} in multiple partitions",
                        n.0
                    )));
                }
            }
        }
        if seen.len() != graph.node_count() {
            return Err(PartitionError::Verification(format!(
                "groups cover {} of {} nodes",
                seen.len(),
                graph.node_count()
            )));
        }
        // Map node -> group.
        let mut group_of: HashMap<NodeId, usize> = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            for &n in g {
                group_of.insert(n, gi);
            }
        }
        // Quotient topological order.
        let k = groups.len();
        let mut adj = vec![BTreeSet::<usize>::new(); k];
        let mut indeg = vec![0usize; k];
        for (a, b) in graph.node_edges() {
            let (ga, gb) = (group_of[&a], group_of[&b]);
            if ga != gb && adj[ga].insert(gb) {
                indeg[gb] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..k).filter(|&i| indeg[i] == 0).collect();
        queue.sort();
        let mut order = Vec::with_capacity(k);
        let mut head = 0;
        while head < queue.len() {
            let g = queue[head];
            head += 1;
            order.push(g);
            let mut newly = Vec::new();
            for &n in &adj[g] {
                indeg[n] -= 1;
                if indeg[n] == 0 {
                    newly.push(n);
                }
            }
            newly.sort();
            queue.extend(newly);
        }
        if order.len() != k {
            return Err(PartitionError::Verification("quotient graph is cyclic".into()));
        }
        // Build stage plans with boundary interfaces.
        let producers = graph.producers();
        let consumers = graph.consumers();
        let node_cost = compute_costs(graph);
        let mut stages = Vec::with_capacity(k);
        for (index, &gi) in order.iter().enumerate() {
            let member: BTreeSet<NodeId> = groups[gi].iter().copied().collect();
            let mut inputs: BTreeSet<ValueId> = BTreeSet::new();
            let mut outputs: BTreeSet<ValueId> = BTreeSet::new();
            for &nid in &member {
                let node = graph.node(nid)?;
                for &i in &node.inputs {
                    if graph.initializer(i).is_some() {
                        continue;
                    }
                    let produced_inside =
                        producers.get(&i).map(|p| member.contains(p)).unwrap_or(false);
                    if !produced_inside {
                        inputs.insert(i);
                    }
                }
                for &o in &node.outputs {
                    let consumed_outside = consumers
                        .get(&o)
                        .map(|cs| cs.iter().any(|c| !member.contains(c)))
                        .unwrap_or(false);
                    if consumed_outside || graph.outputs().contains(&o) {
                        outputs.insert(o);
                    }
                }
            }
            let cost = member.iter().map(|n| node_cost[n.0]).sum();
            let mut nodes: Vec<NodeId> = member.into_iter().collect();
            nodes.sort();
            stages.push(StagePlan {
                index,
                nodes,
                inputs: inputs.into_iter().collect(),
                outputs: outputs.into_iter().collect(),
                cost,
            });
        }
        let set = PartitionSet { seed, stages };
        set.verify(graph)?;
        Ok(set)
    }

    /// Verifies coverage, disjointness and topological stage order against
    /// the parent graph.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::Verification`] describing the violation.
    pub fn verify(&self, graph: &Graph) -> Result<()> {
        let mut stage_of: HashMap<NodeId, usize> = HashMap::new();
        for stage in &self.stages {
            for &n in &stage.nodes {
                if stage_of.insert(n, stage.index).is_some() {
                    return Err(PartitionError::Verification(format!(
                        "node {} appears twice",
                        n.0
                    )));
                }
            }
        }
        if stage_of.len() != graph.node_count() {
            return Err(PartitionError::Verification(format!(
                "stages cover {} of {} nodes",
                stage_of.len(),
                graph.node_count()
            )));
        }
        for (a, b) in graph.node_edges() {
            let (sa, sb) = (stage_of[&a], stage_of[&b]);
            if sa > sb {
                return Err(PartitionError::Verification(format!(
                    "edge {}->{} goes backwards (stage {sa} -> {sb})",
                    a.0, b.0
                )));
            }
        }
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.index != i {
                return Err(PartitionError::Verification("stage indices out of order".into()));
            }
        }
        Ok(())
    }

    /// Extracts each stage as a standalone executable subgraph.
    ///
    /// # Errors
    ///
    /// Propagates graph extraction failures.
    pub fn extract_subgraphs(&self, graph: &Graph) -> Result<Vec<Graph>> {
        self.stages
            .iter()
            .map(|s| {
                graph
                    .subgraph(&s.nodes, format!("{}_p{}", graph.name, s.index))
                    .map_err(PartitionError::from)
            })
            .collect()
    }

    /// Balance statistic: ratio of the largest to the smallest stage cost.
    pub fn imbalance(&self) -> f64 {
        let max = self.stages.iter().map(|s| s.cost).fold(f64::MIN, f64::max);
        let min = self.stages.iter().map(|s| s.cost).fold(f64::MAX, f64::min);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Total checkpoint payload estimate: the number of elements crossing
    /// each stage boundary (drives the Fig 10 encryption-overhead shape).
    /// The final stage's outputs are the model result, not a checkpoint,
    /// and are excluded.
    pub fn boundary_elements(&self, graph: &Graph) -> usize {
        let n = self.stages.len();
        self.stages
            .iter()
            .take(n.saturating_sub(1))
            .flat_map(|s| s.outputs.iter())
            .filter_map(|v| graph.value(*v).ok())
            .filter_map(|info| info.shape.as_ref())
            .map(|s| s.num_elements())
            .sum()
    }
}

/// Per-node compute cost estimates (FLOP-ish units) based on inferred
/// output shapes.
pub(crate) fn compute_costs(graph: &Graph) -> Vec<f64> {
    let mut costs = vec![1.0f64; graph.node_count()];
    for node in graph.nodes() {
        let out_elems = node
            .outputs
            .first()
            .and_then(|v| graph.value(*v).ok())
            .and_then(|i| i.shape.as_ref())
            .map(|s| s.num_elements())
            .unwrap_or(1);
        let in_channels = node
            .inputs
            .first()
            .and_then(|v| graph.value(*v).ok())
            .and_then(|i| i.shape.as_ref())
            .and_then(|s| s.dims().get(1).copied())
            .unwrap_or(1);
        costs[node.id.0] = (out_elems * node.op.flops_per_output(in_channels)).max(1) as f64;
    }
    costs
}

/// Manual partitioning: splits the topological node order at the given
/// boundary positions (the paper's "graph slicer" mode for expert model
/// owners).
///
/// `boundaries` are cut positions in `1..node_count`, strictly increasing;
/// `k` boundaries produce `k + 1` stages.
///
/// # Errors
///
/// Returns [`PartitionError::InvalidBoundaries`] for out-of-range or
/// non-increasing positions.
pub fn slice_by_boundaries(graph: &Graph, boundaries: &[usize]) -> Result<PartitionSet> {
    let order = graph.topological_order()?;
    let n = order.len();
    let mut prev = 0usize;
    let mut groups = Vec::with_capacity(boundaries.len() + 1);
    for &b in boundaries {
        if b <= prev || b >= n {
            return Err(PartitionError::InvalidBoundaries(format!(
                "boundary {b} invalid after {prev} (graph has {n} nodes)"
            )));
        }
        groups.push(order[prev..b].to_vec());
        prev = b;
    }
    groups.push(order[prev..].to_vec());
    PartitionSet::from_groups(graph, groups, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::op::ActivationKind;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
    use mvtee_graph::GraphBuilder;

    fn chain_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new("chain", 1);
        let x = b.input(&[1, 4, 8, 8]);
        let mut cur = x;
        for _ in 0..n {
            cur = b.activation(cur, ActivationKind::Relu).unwrap();
        }
        b.finish(vec![cur]).unwrap()
    }

    #[test]
    fn from_groups_linear_chain() {
        let g = chain_graph(6);
        let order = g.topological_order().unwrap();
        let groups =
            vec![order[0..2].to_vec(), order[2..4].to_vec(), order[4..6].to_vec()];
        let set = PartitionSet::from_groups(&g, groups, 7).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.checkpoint_count(), 2);
        set.verify(&g).unwrap();
        // Each stage's boundary: 1 input, 1 output.
        for s in &set.stages {
            assert_eq!(s.inputs.len(), 1, "stage {}", s.index);
            assert_eq!(s.outputs.len(), 1);
        }
    }

    #[test]
    fn from_groups_rejects_partial_cover() {
        let g = chain_graph(4);
        let order = g.topological_order().unwrap();
        let groups = vec![order[0..2].to_vec()];
        assert!(matches!(
            PartitionSet::from_groups(&g, groups, 0),
            Err(PartitionError::Verification(_))
        ));
    }

    #[test]
    fn from_groups_rejects_duplicates() {
        let g = chain_graph(3);
        let order = g.topological_order().unwrap();
        let groups = vec![order.clone(), vec![order[0]]];
        assert!(PartitionSet::from_groups(&g, groups, 0).is_err());
    }

    #[test]
    fn from_groups_rejects_cyclic_quotient() {
        // Diamond: a -> b, a -> c, b -> d, c -> d. Grouping {a, d} and
        // {b}, {c} creates a cyclic quotient.
        let mut b = GraphBuilder::new("diamond", 1);
        let x = b.input(&[1, 4, 4, 4]);
        let a = b.activation(x, ActivationKind::Relu).unwrap();
        let p = b.activation(a, ActivationKind::Sigmoid).unwrap();
        let q = b.activation(a, ActivationKind::Tanh).unwrap();
        let d = b.add(p, q).unwrap();
        let g = b.finish(vec![d]).unwrap();
        let nodes: Vec<NodeId> = g.nodes().iter().map(|n| n.id).collect();
        // nodes: [relu, sigmoid, tanh, add]
        let groups = vec![vec![nodes[0], nodes[3]], vec![nodes[1]], vec![nodes[2]]];
        assert!(matches!(
            PartitionSet::from_groups(&g, groups, 0),
            Err(PartitionError::Verification(_))
        ));
    }

    #[test]
    fn slice_by_boundaries_basic() {
        let g = chain_graph(10);
        let set = slice_by_boundaries(&g, &[3, 7]).unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.stages[0].nodes.len(), 3);
        assert_eq!(set.stages[1].nodes.len(), 4);
        assert_eq!(set.stages[2].nodes.len(), 3);
    }

    #[test]
    fn slice_rejects_bad_boundaries() {
        let g = chain_graph(5);
        assert!(slice_by_boundaries(&g, &[0]).is_err());
        assert!(slice_by_boundaries(&g, &[5]).is_err());
        assert!(slice_by_boundaries(&g, &[3, 3]).is_err());
        assert!(slice_by_boundaries(&g, &[4, 2]).is_err());
    }

    #[test]
    fn subgraph_extraction_round_trip() {
        let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 3).unwrap();
        let set = slice_by_boundaries(&m.graph, &[40, 80, 120]).unwrap();
        let subs = set.extract_subgraphs(&m.graph).unwrap();
        assert_eq!(subs.len(), 4);
        for (s, plan) in subs.iter().zip(set.stages.iter()) {
            s.validate().unwrap();
            assert_eq!(s.inputs().len(), plan.inputs.len());
            assert_eq!(s.outputs().len(), plan.outputs.len());
        }
        let total: usize = subs.iter().map(|s| s.node_count()).sum();
        assert_eq!(total, m.graph.node_count());
    }

    #[test]
    fn boundary_elements_positive_on_zoo() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 3).unwrap();
        let set = slice_by_boundaries(&m.graph, &[30, 60]).unwrap();
        assert!(set.boundary_elements(&m.graph) > 0);
    }

    #[test]
    fn imbalance_of_even_chain() {
        let g = chain_graph(9);
        let set = slice_by_boundaries(&g, &[3, 6]).unwrap();
        assert!((set.imbalance() - 1.0).abs() < 1e-9);
    }
}
