//! Registry-key stability: a model's content address must depend only on
//! the model — the same zoo model built twice yields the same key, no
//! `EngineConfig` choice can change it, and distinct models never collide
//! across a seeded sweep of the whole zoo.

use std::collections::HashMap;

use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_registry::{encode_model, key_for};
use mvtee_runtime::{session_cache, Engine, EngineConfig, EngineKind};

#[test]
fn same_model_built_twice_has_the_same_key_and_digest() {
    for kind in ModelKind::extended() {
        let a = zoo::build(kind, ScaleProfile::Test, 11).unwrap();
        let b = zoo::build(kind, ScaleProfile::Test, 11).unwrap();
        let (bytes_a, key_a, digest_a) = encode_model(&a).unwrap();
        let (bytes_b, key_b, digest_b) = encode_model(&b).unwrap();
        assert_eq!(key_a, key_b, "{kind:?}: rebuild changed the registry key");
        assert_eq!(digest_a, digest_b, "{kind:?}: rebuild changed the content digest");
        assert_eq!(bytes_a, bytes_b, "{kind:?}: rebuild changed the encoded bytes");
    }
}

#[test]
fn engine_config_variations_never_change_identity() {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 11).unwrap();
    let key_before = key_for(&model);
    // Run the model through differently-configured engines — the very
    // diversity MVTEE deploys. Preparation must not perturb the key the
    // registry stores the model under (the engine cache keys on
    // (config, fingerprint); the registry keys on fingerprint alone).
    for kind in [EngineKind::OrtLike, EngineKind::TvmLike] {
        let mut config = EngineConfig::of_kind(kind);
        config.optimize = !config.optimize;
        let engine = Engine::new(config);
        session_cache().prepare(&engine, &model.graph).unwrap();
        assert_eq!(key_for(&model), key_before, "{kind:?} preparation changed the key");
    }
    let (_, key_after, _) = encode_model(&model).unwrap();
    assert_eq!(key_after, key_before);
}

#[test]
fn distinct_models_never_collide_in_a_seeded_sweep() {
    let mut seen: HashMap<u64, String> = HashMap::new();
    for seed in [3u64, 11, 29] {
        for kind in ModelKind::extended() {
            let model = zoo::build(kind, ScaleProfile::Test, seed).unwrap();
            let key = key_for(&model);
            let label = format!("{kind:?}@seed{seed}");
            if let Some(prev) = seen.insert(key, label.clone()) {
                panic!("registry key collision: {label} and {prev} share {key:#018x}");
            }
        }
    }
    assert_eq!(seen.len(), 3 * ModelKind::extended().len());
}
