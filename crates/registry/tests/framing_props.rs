//! Property tests for chunked-upload framing and the registry's
//! rejection taxonomy: arbitrary chunk geometries round-trip, and any
//! single flipped byte, dropped chunk, reordered chunk or torn final
//! chunk is rejected with the precise error — never a wrong accepted
//! model.

use std::sync::OnceLock;

use mvtee_faults::ProvisionFault;
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_registry::{
    encode_model, seal_all, Registry, RegistryConfig, RegistryError, UploadManifest,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One zoo model, encoded once — proptest cases reuse it so each case
/// costs chunk sealing, not a graph build.
fn fixture() -> &'static (Model, Vec<u8>, u64, [u8; 32]) {
    static FIX: OnceLock<(Model, Vec<u8>, u64, [u8; 32])> = OnceLock::new();
    FIX.get_or_init(|| {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let (bytes, fp, digest) = encode_model(&model).unwrap();
        (model, bytes, fp, digest)
    })
}

fn manifest(chunk_len: u32, key_byte: u8) -> UploadManifest {
    let (_, bytes, fp, digest) = fixture();
    UploadManifest {
        model_name: "props/mnasnet".into(),
        fingerprint: *fp,
        digest: *digest,
        total_len: bytes.len() as u64,
        chunk_len,
        upload_key: [key_byte; 32],
        nonce_seed: u32::from(key_byte) + 1,
    }
}

/// Chunk lengths that keep the chunk count in [2, ~96] for the fixture
/// blob, so cases stay fast while covering ragged final chunks.
fn chunk_lens() -> impl Strategy<Value = u32> {
    let total = fixture().1.len() as u32;
    (total / 96).max(1)..=total / 2 + 1
}

fn fresh_registry() -> Registry {
    Registry::new([11u8; 32], RegistryConfig { max_bundles: 8, max_pending: 8, ..RegistryConfig::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_payload_and_chunk_geometries_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
        chunk_len in 1u32..300,
    ) {
        let m = UploadManifest {
            model_name: "raw".into(),
            fingerprint: 1,
            digest: [0; 32],
            total_len: payload.len() as u64,
            chunk_len,
            upload_key: [5u8; 32],
            nonce_seed: 9,
        };
        let chunks = seal_all(&m, &payload);
        prop_assert_eq!(chunks.len() as u64, m.chunk_count());
        let cipher = m.cipher();
        let mut back = Vec::new();
        for (i, c) in chunks.iter().enumerate() {
            back.extend(mvtee_registry::open_chunk(&cipher, &m, i as u64, c).unwrap());
        }
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn any_flipped_byte_is_rejected_and_nothing_is_stored(
        chunk_len in chunk_lens(),
        target in any::<u64>(),
        byte in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let (_, bytes, ..) = fixture();
        let m = manifest(chunk_len, 1);
        let mut chunks = seal_all(&m, bytes);
        let ci = (target % chunks.len() as u64) as usize;
        let bi = byte % chunks[ci].len();
        chunks[ci][bi] ^= mask;

        let mut reg = fresh_registry();
        let adm = reg.begin(m.clone()).unwrap();
        let mut rejected = None;
        for (i, c) in chunks.iter().enumerate() {
            match reg.push(adm.upload_id, i as u64, c) {
                Ok(()) => {}
                Err(e) => { rejected = Some((i, e)); break; }
            }
        }
        let (at, err) = rejected.expect("corrupt chunk must be rejected");
        prop_assert_eq!(at, ci, "rejection must name the corrupted chunk");
        prop_assert_eq!(err, RegistryError::ChunkAuthFailed { index: ci as u64 });
        // The stream never completed, so finalize is a precise torn error
        // and nothing reaches the store.
        let torn = matches!(
            reg.finalize(adm.upload_id, m.digest, None),
            Err(RegistryError::Incomplete { .. })
        );
        prop_assert!(torn);
        prop_assert_eq!(reg.stored(), 0);
    }

    #[test]
    fn dropped_and_reordered_chunks_are_precise_index_errors(
        chunk_len in chunk_lens(),
        target in any::<u64>(),
    ) {
        let (_, bytes, ..) = fixture();
        let m = manifest(chunk_len, 2);
        let chunks = seal_all(&m, bytes);
        prop_assume!(chunks.len() >= 2);
        let drop_at = (target % (chunks.len() as u64 - 1)) as usize;

        // Drop: chunk `drop_at` vanishes, its successor arrives instead.
        let mut reg = fresh_registry();
        let adm = reg.begin(m.clone()).unwrap();
        for (i, c) in chunks.iter().enumerate().take(drop_at) {
            reg.push(adm.upload_id, i as u64, c).unwrap();
        }
        prop_assert_eq!(
            reg.push(adm.upload_id, drop_at as u64 + 1, &chunks[drop_at + 1]).unwrap_err(),
            RegistryError::BadChunkIndex { expected: drop_at as u64, actual: drop_at as u64 + 1 }
        );

        // Reorder disguised as the right index: the AAD still catches it.
        prop_assert_eq!(
            reg.push(adm.upload_id, drop_at as u64, &chunks[drop_at + 1]).unwrap_err(),
            RegistryError::ChunkAuthFailed { index: drop_at as u64 }
        );
        prop_assert_eq!(reg.stored(), 0);
    }

    #[test]
    fn torn_final_chunk_is_rejected_then_the_upload_resumes(
        chunk_len in chunk_lens(),
        cut in any::<usize>(),
    ) {
        let (model, bytes, ..) = fixture();
        let m = manifest(chunk_len, 3);
        let chunks = seal_all(&m, bytes);
        let last = chunks.len() - 1;
        let torn = &chunks[last][..cut % chunks[last].len()];

        let mut reg = fresh_registry();
        let adm = reg.begin(m.clone()).unwrap();
        for (i, c) in chunks.iter().enumerate().take(last) {
            reg.push(adm.upload_id, i as u64, c).unwrap();
        }
        let err = reg.push(adm.upload_id, last as u64, torn).unwrap_err();
        prop_assert!(
            matches!(
                err,
                RegistryError::ChunkTruncated { index, .. } | RegistryError::ChunkAuthFailed { index }
                if index == last as u64
            ),
            "torn final chunk got {err:?}"
        );
        let torn = matches!(
            reg.finalize(adm.upload_id, m.digest, None),
            Err(RegistryError::Incomplete { .. })
        );
        prop_assert!(torn);

        // The tenant reconnects: resume starts exactly at the torn chunk.
        let resumed = reg.begin(m.clone()).unwrap();
        prop_assert_eq!(resumed.upload_id, adm.upload_id);
        prop_assert_eq!(resumed.resume_from, last as u64);
        reg.push(resumed.upload_id, last as u64, &chunks[last]).unwrap();
        reg.finalize(resumed.upload_id, m.digest, None).unwrap();
        let back = reg.checkout_named("props/mnasnet").unwrap();
        prop_assert_eq!(back.kind, model.kind);
        prop_assert_eq!(mvtee_registry::key_for(&back), m.fingerprint);
    }
}

/// Seeded sweep over the campaign's [`ProvisionFault`] descriptor space:
/// every corruption class is Detected (precise rejection, empty store)
/// and every torn upload resumes from its last verified chunk.
#[test]
fn every_provision_fault_class_is_detected_or_resumed() {
    let (_, bytes, ..) = fixture();
    let chunk_len = (bytes.len() as u32 / 8).max(1);
    for seed in 0..24u64 {
        let fault = ProvisionFault::arbitrary(&mut StdRng::seed_from_u64(seed));
        let mut m = manifest(chunk_len, 4);
        m.nonce_seed = seed as u32 + 100;
        let count = m.chunk_count();
        let mut chunks = seal_all(&m, bytes);
        let mut reg = fresh_registry();

        match fault {
            ProvisionFault::CorruptChunk { chunk, mask } => {
                let ci = (chunk % count) as usize;
                let bi = chunks[ci].len() / 2;
                chunks[ci][bi] ^= mask;
                let adm = reg.begin(m.clone()).unwrap();
                for (i, c) in chunks.iter().enumerate().take(ci) {
                    reg.push(adm.upload_id, i as u64, c).unwrap();
                }
                assert_eq!(
                    reg.push(adm.upload_id, ci as u64, &chunks[ci]).unwrap_err(),
                    RegistryError::ChunkAuthFailed { index: ci as u64 },
                    "seed {seed} fault {fault}"
                );
            }
            ProvisionFault::TruncateChunk { chunk } => {
                let ci = (chunk % count) as usize;
                let adm = reg.begin(m.clone()).unwrap();
                for (i, c) in chunks.iter().enumerate().take(ci) {
                    reg.push(adm.upload_id, i as u64, c).unwrap();
                }
                let torn = &chunks[ci][..4.min(chunks[ci].len())];
                assert!(
                    matches!(
                        reg.push(adm.upload_id, ci as u64, torn).unwrap_err(),
                        RegistryError::ChunkTruncated { .. } | RegistryError::ChunkAuthFailed { .. }
                    ),
                    "seed {seed} fault {fault}"
                );
            }
            ProvisionFault::DropChunk { chunk } if count >= 2 => {
                let ci = (chunk % (count - 1)) as usize;
                let adm = reg.begin(m.clone()).unwrap();
                for (i, c) in chunks.iter().enumerate().take(ci) {
                    reg.push(adm.upload_id, i as u64, c).unwrap();
                }
                assert!(
                    matches!(
                        reg.push(adm.upload_id, ci as u64 + 1, &chunks[ci + 1]).unwrap_err(),
                        RegistryError::BadChunkIndex { .. }
                    ),
                    "seed {seed} fault {fault}"
                );
            }
            ProvisionFault::ReorderChunks { chunk } if count >= 2 => {
                let ci = (chunk % (count - 1)) as usize;
                chunks.swap(ci, ci + 1);
                let adm = reg.begin(m.clone()).unwrap();
                let mut ok = true;
                for (i, c) in chunks.iter().enumerate() {
                    if reg.push(adm.upload_id, i as u64, c).is_err() {
                        ok = false;
                        break;
                    }
                }
                assert!(!ok, "seed {seed}: reordered stream accepted");
            }
            ProvisionFault::TornUpload { after } => {
                let stop = after % count;
                let adm = reg.begin(m.clone()).unwrap();
                for i in 0..stop {
                    reg.push(adm.upload_id, i, &chunks[i as usize]).unwrap();
                }
                // Disconnect, reconnect: resume exactly where we tore.
                let resumed = reg.begin(m.clone()).unwrap();
                assert_eq!(resumed.resume_from, stop, "seed {seed} fault {fault}");
                for i in stop..count {
                    reg.push(resumed.upload_id, i, &chunks[i as usize]).unwrap();
                }
                reg.finalize(resumed.upload_id, m.digest, None).unwrap();
                assert_eq!(reg.stored(), 1);
                continue;
            }
            ProvisionFault::FingerprintMismatch => {
                m.fingerprint ^= 0x5a5a_5a5a;
                let chunks = seal_all(&m, bytes);
                let adm = reg.begin(m.clone()).unwrap();
                for (i, c) in chunks.iter().enumerate() {
                    reg.push(adm.upload_id, i as u64, c).unwrap();
                }
                assert!(
                    matches!(
                        reg.finalize(adm.upload_id, m.digest, None).unwrap_err(),
                        RegistryError::FingerprintMismatch { .. }
                    ),
                    "seed {seed} fault {fault}"
                );
            }
            // Single-chunk geometries can't drop/reorder; nothing to do.
            _ => continue,
        }
        assert_eq!(reg.stored(), 0, "seed {seed} fault {fault}: corrupt upload reached the store");
    }
}
