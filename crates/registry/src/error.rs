//! Registry error taxonomy.
//!
//! Every rejection during provisioning names the exact chunk and cause —
//! the coldstart experiment's gates require a *precise* error for each
//! injected fault class, never a wrong accepted model and never a vague
//! "upload failed".

use std::fmt;

/// Everything that can go wrong in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A chunk arrived out of order: a dropped chunk shows up as a later
    /// index than expected, a reordered one as an earlier/later mismatch.
    BadChunkIndex {
        /// Index the registry expected next.
        expected: u64,
        /// Index the frame carried.
        actual: u64,
    },
    /// A chunk's AEAD authentication failed (flipped ciphertext byte,
    /// spliced frame, wrong upload key).
    ChunkAuthFailed {
        /// Index of the rejected chunk.
        index: u64,
    },
    /// A chunk frame was shorter than the AEAD tag — a truncated write.
    ChunkTruncated {
        /// Index of the truncated chunk.
        index: u64,
        /// Bytes actually received.
        len: usize,
    },
    /// A chunk authenticated but decrypted to the wrong number of bytes
    /// for its position in the upload.
    ChunkLengthMismatch {
        /// Index of the offending chunk.
        index: u64,
        /// Length the manifest implies for this position.
        expected: usize,
        /// Length received.
        actual: usize,
    },
    /// `finalize` arrived before every chunk was verified (torn final
    /// chunk, or a client that skipped ahead).
    Incomplete {
        /// Chunks verified so far.
        verified: u64,
        /// Chunks the manifest declared.
        total: u64,
    },
    /// The assembled plaintext does not hash to the declared digest.
    DigestMismatch,
    /// The uploaded graph's fingerprint does not match the manifest's
    /// claim (a tenant trying to poison another tenant's content address,
    /// or a corrupted-but-authenticated blob).
    FingerprintMismatch {
        /// Fingerprint the manifest declared.
        declared: u64,
        /// Fingerprint computed from the uploaded graph.
        actual: u64,
    },
    /// Two different byte streams claimed the same fingerprint with
    /// different digests — content addresses must be collision-free.
    ContentCollision {
        /// The contested fingerprint.
        fingerprint: u64,
    },
    /// The manifest is internally inconsistent (zero-length chunks, chunk
    /// count not matching the total, empty model).
    BadManifest(String),
    /// The manifest declares a model larger than the registry accepts —
    /// rejected before any buffer is reserved.
    TooLarge {
        /// Plaintext length the manifest declared.
        len: u64,
        /// The registry's configured ceiling.
        limit: u64,
    },
    /// A dedup finalize failed its proof-of-possession check: the tenant
    /// presented a known `(fingerprint, digest)` but could not prove it
    /// holds the content bytes.
    PossessionProofFailed,
    /// No pending upload with this id.
    UnknownUpload {
        /// The id presented.
        upload_id: u64,
    },
    /// No stored model under this key.
    UnknownModel {
        /// The key presented.
        key: String,
    },
    /// The registry is at its pending-upload or bundle capacity and
    /// cannot admit more work right now.
    Saturated,
    /// The assembled blob failed to decode as a model.
    DecodeFailed(String),
    /// A transport or secure-channel failure under the protocol.
    Channel(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::BadChunkIndex { expected, actual } => {
                write!(f, "chunk index {actual} where {expected} was expected (dropped or reordered chunk)")
            }
            RegistryError::ChunkAuthFailed { index } => {
                write!(f, "chunk {index} failed AEAD authentication")
            }
            RegistryError::ChunkTruncated { index, len } => {
                write!(f, "chunk {index} truncated ({len} bytes is too short to authenticate)")
            }
            RegistryError::ChunkLengthMismatch { index, expected, actual } => {
                write!(f, "chunk {index} decrypted to {actual} bytes where the manifest implies {expected}")
            }
            RegistryError::Incomplete { verified, total } => {
                write!(f, "finalize with only {verified}/{total} chunks verified (torn upload)")
            }
            RegistryError::DigestMismatch => write!(f, "assembled model does not match the declared digest"),
            RegistryError::FingerprintMismatch { declared, actual } => {
                write!(f, "manifest declared graph fingerprint {declared:#018x} but the uploaded graph fingerprints to {actual:#018x}")
            }
            RegistryError::ContentCollision { fingerprint } => {
                write!(f, "fingerprint {fingerprint:#018x} already stores different content")
            }
            RegistryError::BadManifest(why) => write!(f, "bad upload manifest: {why}"),
            RegistryError::TooLarge { len, limit } => {
                write!(f, "declared model length {len} exceeds the registry limit of {limit} bytes")
            }
            RegistryError::PossessionProofFailed => {
                write!(f, "dedup finalize failed its proof-of-possession challenge")
            }
            RegistryError::UnknownUpload { upload_id } => write!(f, "no pending upload {upload_id}"),
            RegistryError::UnknownModel { key } => write!(f, "no registered model under key {key:?}"),
            RegistryError::Saturated => write!(f, "registry at capacity"),
            RegistryError::DecodeFailed(why) => write!(f, "uploaded blob failed to decode: {why}"),
            RegistryError::Channel(why) => write!(f, "provisioning channel failure: {why}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Registry result alias.
pub type Result<T> = std::result::Result<T, RegistryError>;
