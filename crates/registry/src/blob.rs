//! The serialized form of a registered model and its content address.
//!
//! A model's registry key is its **graph fingerprint** — a content hash of
//! the graph name, topology, operator attributes and every initializer bit
//! ([`mvtee_runtime::graph_fingerprint`]). Two tenants uploading the same
//! model land on the same key and the second upload dedups; the engine
//! cache is keyed by the same fingerprint, so a registry key maps directly
//! onto warm prepared models. Integrity of the *bytes* is carried
//! separately by a SHA-256 digest of the encoded blob: the fingerprint
//! names the model, the digest proves the stream.

use mvtee_crypto::sha256::sha256;
use mvtee_graph::zoo::{Model, ModelKind, ScaleProfile};
use mvtee_graph::Graph;
use mvtee_runtime::graph_fingerprint;
use mvtee_tensor::Shape;
use serde::{Deserialize, Serialize};

use crate::error::{RegistryError, Result};

/// Wire/storage form of a model: everything needed to reconstruct a
/// [`Model`] inside the enclave. This is the plaintext that is chunked,
/// sealed, uploaded and later re-sealed into content-addressed storage —
/// it exists in clear only inside TEE memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBlob {
    /// Architecture tag.
    pub kind: ModelKind,
    /// Scale the model was built at.
    pub profile: ScaleProfile,
    /// The computational graph, weights included.
    pub graph: Graph,
    /// Canonical input shape dims.
    pub input_dims: Vec<usize>,
}

impl ModelBlob {
    /// Captures a built model.
    pub fn of(model: &Model) -> Self {
        ModelBlob {
            kind: model.kind,
            profile: model.profile,
            graph: model.graph.clone(),
            input_dims: model.input_shape.dims().to_vec(),
        }
    }

    /// Reconstructs the in-enclave model.
    pub fn into_model(self) -> Model {
        Model {
            kind: self.kind,
            profile: self.profile,
            input_shape: Shape::new(&self.input_dims),
            graph: self.graph,
        }
    }

    /// Serializes the blob.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DecodeFailed`] if the codec rejects the
    /// value (indicates a bug; all zoo models encode).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        mvtee_codec::to_bytes(self).map_err(|e| RegistryError::DecodeFailed(e.to_string()))
    }

    /// Deserializes a blob.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DecodeFailed`] on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        mvtee_codec::from_bytes(bytes).map_err(|e| RegistryError::DecodeFailed(e.to_string()))
    }
}

/// The registry key of a model: its graph fingerprint. Deliberately
/// independent of any [`EngineConfig`](mvtee_runtime::EngineConfig) —
/// execution diversity must never change a model's identity.
pub fn key_for(model: &Model) -> u64 {
    graph_fingerprint(&model.graph)
}

/// Renders a registry key the way paths and logs spell it.
pub fn key_hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

/// Encodes a model and computes its content address: the encoded bytes,
/// the graph fingerprint (registry key) and the SHA-256 digest of the
/// bytes.
///
/// # Errors
///
/// Propagates [`ModelBlob::to_bytes`] failures.
pub fn encode_model(model: &Model) -> Result<(Vec<u8>, u64, [u8; 32])> {
    let bytes = ModelBlob::of(model).to_bytes()?;
    let digest = sha256(&bytes);
    Ok((bytes, key_for(model), digest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

    #[test]
    fn blob_round_trips_a_model() {
        let m = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let (bytes, key, digest) = encode_model(&m).unwrap();
        let back = ModelBlob::from_bytes(&bytes).unwrap().into_model();
        assert_eq!(back.kind, m.kind);
        assert_eq!(back.input_shape, m.input_shape);
        assert_eq!(key_for(&back), key, "reconstruction must preserve the content address");
        assert_eq!(sha256(&ModelBlob::of(&back).to_bytes().unwrap()), digest);
    }
}
