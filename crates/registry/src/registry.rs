//! The in-enclave registry state machine: `begin` / `push` / `finalize`
//! uploads, torn-upload resume, and model checkout.
//!
//! ```text
//!             begin(manifest)            push(id, i, chunk)×N
//!   idle ───────────────────▶ pending ──────────────────────▶ complete
//!    ▲                          │  ▲                             │
//!    │          disconnect      │  │ begin(same fp+digest)       │ finalize(id, digest[, pop])
//!    │          (torn upload)   ▼  │ → resume_from=verified      ▼
//!    │                        torn ┘                      verify digest,
//!    │                                                    decode, verify
//!    └──────────── evict ◀── stored ◀──────────────────── fingerprint,
//!                                                         re-seal (dedup)
//! ```
//!
//! Invariants the coldstart experiment gates on:
//!
//! * a chunk is appended only after its AEAD opens at the expected index
//!   — corrupt, truncated, dropped and reordered chunks are rejected with
//!   the precise [`RegistryError`] naming the chunk;
//! * `finalize` re-hashes the assembled plaintext, decodes it and
//!   recomputes the graph fingerprint before anything is stored — a
//!   manifest that lies about its fingerprint is rejected, so no variant
//!   ever runs a model whose content address it didn't verify;
//! * a torn upload keeps its verified prefix; a new `begin` with the same
//!   `(fingerprint, digest)` *and the same chunk cipher* resumes from the
//!   last verified chunk — a different upload key replaces the pending
//!   state and restarts from chunk 0, so a stale or hostile `begin` can
//!   never wedge a content address;
//! * pending slots are reclaimable: `abort` drops an upload explicitly,
//!   and when the table is full an upload idle past
//!   [`RegistryConfig::pending_idle_ttl`] is evicted to admit new work;
//! * a dedup admission must prove possession of the content bytes at
//!   `finalize` ([`pop_response`] over a registry-issued challenge)
//!   before its alias is bound.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mvtee_crypto::gcm::AesGcm;
use mvtee_crypto::sha256::sha256;
use mvtee_graph::zoo::Model;
use mvtee_runtime::graph_fingerprint;

use crate::blob::{key_hex, ModelBlob};
use crate::error::{RegistryError, Result};
use crate::framing::{open_chunk, UploadManifest};
use crate::store::{BundleMeta, PutOutcome, SealedStore};

/// Upper bound on the plaintext reserved up-front for one upload. The
/// manifest's `total_len` is tenant-controlled, so the buffer grows with
/// verified chunks instead of trusting the declaration.
const INITIAL_BUF_RESERVATION: u64 = 1 << 20;

/// Capacity knobs for a registry instance.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Sealed bundles kept before LRU eviction kicks in.
    pub max_bundles: usize,
    /// Concurrent pending (in-flight or torn) uploads admitted.
    pub max_pending: usize,
    /// Largest plaintext model accepted; `begin` rejects manifests
    /// declaring more with [`RegistryError::TooLarge`].
    pub max_model_bytes: u64,
    /// A pending upload idle at least this long may be evicted to admit
    /// a new one when the pending table is full, so torn uploads whose
    /// tenants never return cannot saturate the registry forever.
    pub pending_idle_ttl: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            max_bundles: 8,
            max_pending: 4,
            max_model_bytes: 256 << 20,
            pending_idle_ttl: Duration::from_secs(300),
        }
    }
}

/// One in-flight (or torn, awaiting resume) upload.
#[derive(Debug)]
struct UploadState {
    manifest: UploadManifest,
    cipher: AesGcm,
    /// Chunks verified so far; also the next expected index.
    verified: u64,
    /// Plaintext assembled so far (TEE memory only).
    buf: Vec<u8>,
    /// Set when `begin` matched an already-stored bundle: no chunks are
    /// expected and `finalize` dedups against the stored digest.
    dedup: bool,
    /// Proof-of-possession challenge issued with a dedup admission.
    challenge: Option<[u8; 32]>,
    /// Last admission or verified chunk — the idle clock for eviction.
    last_activity: Instant,
}

/// Reply to a successful `begin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Handle for the upload's `push`/`finalize` calls.
    pub upload_id: u64,
    /// First chunk index the registry expects (> 0 when resuming a torn
    /// upload; == chunk count when the content is already stored).
    pub resume_from: u64,
    /// Present on dedup admissions: `finalize` must answer with
    /// [`pop_response`]`(challenge, plaintext)` to prove the tenant
    /// actually holds the content it wants to alias.
    pub challenge: Option<[u8; 32]>,
}

/// Reply to a successful `finalize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Registered {
    /// The model's content address.
    pub fingerprint: u64,
    /// Whether the content was already stored (another tenant, or a
    /// re-upload) and no new bundle was sealed.
    pub dedup: bool,
}

/// The multi-model registry.
#[derive(Debug)]
pub struct Registry {
    store: SealedStore,
    pending: BTreeMap<u64, UploadState>,
    /// Routing name → fingerprint, set at finalize.
    aliases: BTreeMap<String, u64>,
    next_upload: u64,
    config: RegistryConfig,
    /// Secret the dedup proof-of-possession challenges are derived from.
    pop_secret: [u8; 32],
}

/// The answer a tenant must give a dedup proof-of-possession challenge:
/// SHA-256 over the challenge followed by the full plaintext blob. Only
/// a tenant that actually holds the content bytes can compute it.
pub fn pop_response(challenge: &[u8; 32], blob: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(32 + blob.len());
    buf.extend_from_slice(challenge);
    buf.extend_from_slice(blob);
    sha256(&buf)
}

impl Registry {
    /// Creates a registry sealing bundles under `kdk`.
    pub fn new(kdk: [u8; 32], config: RegistryConfig) -> Self {
        let mut secret = Vec::with_capacity(64);
        secret.extend_from_slice(b"mvtee.registry.pop");
        secret.extend_from_slice(&kdk);
        Registry {
            store: SealedStore::new(kdk, config.max_bundles),
            pending: BTreeMap::new(),
            aliases: BTreeMap::new(),
            next_upload: 1,
            config,
            pop_secret: sha256(&secret),
        }
    }

    /// Derives the challenge for a dedup admission — unpredictable to
    /// tenants (keyed by the registry's sealed secret), deterministic
    /// for a given registry instance and upload.
    fn pop_challenge(&self, upload_id: u64, manifest: &UploadManifest) -> [u8; 32] {
        let mut buf = Vec::with_capacity(32 + 8 + 8 + 32);
        buf.extend_from_slice(&self.pop_secret);
        buf.extend_from_slice(&upload_id.to_le_bytes());
        buf.extend_from_slice(&manifest.fingerprint.to_le_bytes());
        buf.extend_from_slice(&manifest.digest);
        sha256(&buf)
    }

    /// Admits an upload. Three outcomes:
    ///
    /// * fresh content → new upload, `resume_from == 0`;
    /// * same `(fingerprint, digest)` as a torn upload → same upload id;
    ///   `resume_from == chunks already verified` when the new manifest
    ///   carries the same chunk cipher (key, nonce seed, geometry), else
    ///   the pending state is replaced and the upload restarts at 0 — a
    ///   reconnecting tenant with a fresh upload key can always make
    ///   progress, and a third party cannot wedge a content address by
    ///   pre-beginning it with a key it then abandons;
    /// * same `(fingerprint, digest)` as a stored bundle → `resume_from ==
    ///   chunk count` plus a proof-of-possession challenge (client skips
    ///   straight to `finalize`, which dedups only on a correct answer).
    ///
    /// # Errors
    ///
    /// [`RegistryError::BadManifest`] on inconsistent geometry,
    /// [`RegistryError::TooLarge`] past the configured model-size cap,
    /// [`RegistryError::Saturated`] at the pending-upload cap (after
    /// trying to evict an idle torn upload).
    pub fn begin(&mut self, manifest: UploadManifest) -> Result<Admission> {
        manifest.validate()?;
        if manifest.total_len > self.config.max_model_bytes {
            return Err(RegistryError::TooLarge {
                len: manifest.total_len,
                limit: self.config.max_model_bytes,
            });
        }
        // Resume path: a torn upload with identical content identity.
        if let Some((&id, state)) = self
            .pending
            .iter_mut()
            .find(|(_, s)| s.manifest.fingerprint == manifest.fingerprint && s.manifest.digest == manifest.digest && !s.dedup)
        {
            let same_cipher = state.manifest.upload_key == manifest.upload_key
                && state.manifest.nonce_seed == manifest.nonce_seed
                && state.manifest.chunk_len == manifest.chunk_len
                && state.manifest.total_len == manifest.total_len;
            state.last_activity = Instant::now();
            if same_cipher {
                state.manifest = manifest;
                let resume_from = state.verified;
                mvtee_telemetry::counter("registry.upload.resumes").inc();
                return Ok(Admission { upload_id: id, resume_from, challenge: None });
            }
            // New chunk cipher: the verified prefix was sealed under the
            // old key and cannot be extended — restart from chunk 0 with
            // the new manifest instead of wedging the address.
            state.cipher = manifest.cipher();
            state.manifest = manifest;
            state.verified = 0;
            state.buf.clear();
            mvtee_telemetry::counter("registry.upload.restarts").inc();
            return Ok(Admission { upload_id: id, resume_from: 0, challenge: None });
        }
        // Dedup path: content already stored under this address.
        if let Some(meta) = self.store.meta(manifest.fingerprint) {
            if meta.digest == manifest.digest {
                let challenge = self.pop_challenge(self.next_upload, &manifest);
                let resume_from = manifest.chunk_count();
                let id = self.admit(manifest, Some(challenge))?;
                return Ok(Admission { upload_id: id, resume_from, challenge: Some(challenge) });
            }
            return Err(RegistryError::ContentCollision { fingerprint: manifest.fingerprint });
        }
        let id = self.admit(manifest, None)?;
        Ok(Admission { upload_id: id, resume_from: 0, challenge: None })
    }

    /// Evicts the longest-idle pending upload that has been inactive at
    /// least `pending_idle_ttl`, freeing a slot for a new admission.
    fn evict_stale_pending(&mut self) {
        let ttl = self.config.pending_idle_ttl;
        let victim = self
            .pending
            .iter()
            .filter(|(_, s)| s.last_activity.elapsed() >= ttl)
            .min_by_key(|(_, s)| s.last_activity)
            .map(|(&id, _)| id);
        if let Some(id) = victim {
            self.pending.remove(&id);
            mvtee_telemetry::counter("registry.upload.expired").inc();
        }
    }

    fn admit(&mut self, manifest: UploadManifest, challenge: Option<[u8; 32]>) -> Result<u64> {
        if self.pending.len() >= self.config.max_pending {
            self.evict_stale_pending();
        }
        if self.pending.len() >= self.config.max_pending {
            mvtee_telemetry::counter("registry.upload.sheds").inc();
            return Err(RegistryError::Saturated);
        }
        let id = self.next_upload;
        self.next_upload += 1;
        let cipher = manifest.cipher();
        let dedup = challenge.is_some();
        // `total_len` is tenant-controlled: never reserve more than the
        // bounded initial slice; the buffer grows with verified chunks.
        let reserve = if dedup { 0 } else { manifest.total_len.min(INITIAL_BUF_RESERVATION) as usize };
        self.pending.insert(
            id,
            UploadState {
                buf: Vec::with_capacity(reserve),
                manifest,
                cipher,
                verified: 0,
                dedup,
                challenge,
                last_activity: Instant::now(),
            },
        );
        mvtee_telemetry::gauge("registry.upload.pending").set(self.pending.len() as i64);
        Ok(id)
    }

    /// Drops a pending upload, freeing its slot and buffered plaintext.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownUpload`] when no such upload is pending.
    pub fn abort(&mut self, upload_id: u64) -> Result<()> {
        self.pending.remove(&upload_id).ok_or(RegistryError::UnknownUpload { upload_id })?;
        mvtee_telemetry::counter("registry.upload.aborts").inc();
        mvtee_telemetry::gauge("registry.upload.pending").set(self.pending.len() as i64);
        Ok(())
    }

    /// Verifies and appends one chunk.
    ///
    /// # Errors
    ///
    /// The precise rejection for every fault class — see
    /// [`RegistryError`]. A rejected chunk does not advance the stream:
    /// the tenant may retry the same index with a good frame.
    pub fn push(&mut self, upload_id: u64, index: u64, sealed: &[u8]) -> Result<()> {
        let state = self.pending.get_mut(&upload_id).ok_or(RegistryError::UnknownUpload { upload_id })?;
        let expected = state.verified;
        if state.dedup || expected >= state.manifest.chunk_count() {
            mvtee_telemetry::counter("registry.upload.rejected_chunks").inc();
            return Err(RegistryError::BadChunkIndex { expected: state.manifest.chunk_count(), actual: index });
        }
        if index != expected {
            mvtee_telemetry::counter("registry.upload.rejected_chunks").inc();
            return Err(RegistryError::BadChunkIndex { expected, actual: index });
        }
        let plain = open_chunk(&state.cipher, &state.manifest, index, sealed).inspect_err(|_| {
            mvtee_telemetry::counter("registry.upload.rejected_chunks").inc();
        })?;
        state.buf.extend_from_slice(&plain);
        state.verified += 1;
        state.last_activity = Instant::now();
        mvtee_telemetry::counter("registry.upload.chunks").inc();
        mvtee_telemetry::counter("registry.upload.bytes").add(plain.len() as u64);
        Ok(())
    }

    /// Completes an upload: digest, decode and fingerprint checks, then
    /// re-seal into content-addressed storage. A dedup upload must answer
    /// its admission challenge with `pop` =
    /// [`pop_response`]`(challenge, plaintext)` — presenting a known
    /// `(fingerprint, digest)` alone never grants access to stored
    /// content.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Incomplete`] on a torn/short stream,
    /// [`RegistryError::DigestMismatch`] /
    /// [`RegistryError::FingerprintMismatch`] /
    /// [`RegistryError::DecodeFailed`] on content that fails verification
    /// — in every case nothing is stored and no alias is bound. A dedup
    /// finalize fails [`RegistryError::PossessionProofFailed`] on a wrong
    /// or missing proof, and [`RegistryError::UnknownModel`] when the
    /// bundle was evicted between `begin` and `finalize` (re-`begin` to
    /// upload the content for real) — both end the admission.
    pub fn finalize(&mut self, upload_id: u64, digest: [u8; 32], pop: Option<[u8; 32]>) -> Result<Registered> {
        let state = self.pending.get(&upload_id).ok_or(RegistryError::UnknownUpload { upload_id })?;
        let manifest = &state.manifest;
        let fingerprint = manifest.fingerprint;
        if digest != manifest.digest {
            return Err(RegistryError::DigestMismatch);
        }
        if state.dedup {
            let name = manifest.model_name.clone();
            let challenge = state.challenge.expect("dedup admission carries a challenge");
            // The LRU may have evicted the bundle since `begin`: binding
            // the alias anyway would dangle it. End the admission so the
            // tenant can re-begin as a fresh upload.
            if !self.store.contains(fingerprint) {
                self.pending.remove(&upload_id);
                mvtee_telemetry::gauge("registry.upload.pending").set(self.pending.len() as i64);
                return Err(RegistryError::UnknownModel { key: key_hex(fingerprint) });
            }
            let blob = self.store.get(fingerprint)?;
            if pop != Some(pop_response(&challenge, &blob)) {
                self.pending.remove(&upload_id);
                mvtee_telemetry::gauge("registry.upload.pending").set(self.pending.len() as i64);
                mvtee_telemetry::counter("registry.upload.pop_failures").inc();
                return Err(RegistryError::PossessionProofFailed);
            }
            self.pending.remove(&upload_id);
            self.aliases.insert(name, fingerprint);
            mvtee_telemetry::gauge("registry.upload.pending").set(self.pending.len() as i64);
            mvtee_telemetry::counter("registry.dedup_uploads").inc();
            return Ok(Registered { fingerprint, dedup: true });
        }
        let total = manifest.chunk_count();
        if state.verified < total {
            return Err(RegistryError::Incomplete { verified: state.verified, total });
        }
        if state.buf.len() as u64 != manifest.total_len || sha256(&state.buf) != digest {
            return Err(RegistryError::DigestMismatch);
        }
        let blob = ModelBlob::from_bytes(&state.buf)?;
        let actual = graph_fingerprint(&blob.graph);
        if actual != fingerprint {
            return Err(RegistryError::FingerprintMismatch { declared: fingerprint, actual });
        }
        // All checks passed — take ownership and commit.
        let state = self.pending.remove(&upload_id).expect("state present");
        let meta = BundleMeta {
            digest,
            len: state.manifest.total_len,
            model_name: state.manifest.model_name.clone(),
        };
        let outcome = self.store.put(fingerprint, meta, &state.buf)?;
        self.aliases.insert(state.manifest.model_name, fingerprint);
        mvtee_telemetry::gauge("registry.upload.pending").set(self.pending.len() as i64);
        Ok(Registered { fingerprint, dedup: outcome == PutOutcome::Deduplicated })
    }

    /// Unseals and reconstructs a model by fingerprint, re-verifying the
    /// digest and the fingerprint of what was unsealed.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for absent/evicted bundles; the
    /// verification errors of [`SealedStore::get`]; and
    /// [`RegistryError::FingerprintMismatch`] if the unsealed graph does
    /// not fingerprint to its own content address.
    pub fn checkout(&mut self, fingerprint: u64) -> Result<Model> {
        let blob = self.store.get(fingerprint)?;
        let model = ModelBlob::from_bytes(&blob)?.into_model();
        let actual = graph_fingerprint(&model.graph);
        if actual != fingerprint {
            return Err(RegistryError::FingerprintMismatch { declared: fingerprint, actual });
        }
        mvtee_telemetry::counter("registry.checkouts").inc();
        Ok(model)
    }

    /// Resolves a tenant routing name to its fingerprint.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] when the name was never registered.
    pub fn resolve(&self, name: &str) -> Result<u64> {
        self.aliases.get(name).copied().ok_or_else(|| RegistryError::UnknownModel { key: name.into() })
    }

    /// Checkout by routing name.
    ///
    /// # Errors
    ///
    /// As [`Registry::resolve`] and [`Registry::checkout`].
    pub fn checkout_named(&mut self, name: &str) -> Result<Model> {
        let fp = self.resolve(name)?;
        self.checkout(fp)
    }

    /// Whether a bundle is currently stored for this fingerprint.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.store.contains(fingerprint)
    }

    /// Registered routing names.
    pub fn names(&self) -> Vec<&str> {
        self.aliases.keys().map(String::as_str).collect()
    }

    /// Number of stored bundles.
    pub fn stored(&self) -> usize {
        self.store.len()
    }

    /// Pending (in-flight or torn) upload count.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Whether the registry cannot admit another upload right now.
    pub fn saturated(&self) -> bool {
        self.pending.len() >= self.config.max_pending
    }

    /// Fingerprints evicted by the LRU since the last call — callers drop
    /// the matching in-memory engines
    /// ([`EngineCache::evict`](mvtee_runtime::EngineCache::evict)).
    pub fn drain_evictions(&mut self) -> Vec<u64> {
        self.store.drain_evictions()
    }

    /// Everything the host can see of the registry (sealed blobs only).
    pub fn host_visible_bytes(&self) -> Vec<u8> {
        self.store.host_visible_bytes()
    }

    /// Host-level tamper hook for tests.
    pub fn tamper(&mut self, fingerprint: u64, byte: usize) -> bool {
        self.store.tamper(fingerprint, byte)
    }

    /// Renders a fingerprint the way the registry spells keys.
    pub fn key_name(fingerprint: u64) -> String {
        key_hex(fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blob::encode_model;
    use crate::framing::{seal_all, seal_chunk};
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

    fn model() -> Model {
        zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap()
    }

    fn manifest_for(model: &Model, chunk_len: u32) -> (UploadManifest, Vec<u8>) {
        let (bytes, fp, digest) = encode_model(model).unwrap();
        let manifest = UploadManifest {
            model_name: "tenant-a/mnasnet".into(),
            fingerprint: fp,
            digest,
            total_len: bytes.len() as u64,
            chunk_len,
            upload_key: [3u8; 32],
            nonce_seed: 77,
        };
        (manifest, bytes)
    }

    fn upload_all(reg: &mut Registry, manifest: &UploadManifest, blob: &[u8]) -> Registered {
        let adm = reg.begin(manifest.clone()).unwrap();
        for (i, chunk) in seal_all(manifest, blob).into_iter().enumerate().skip(adm.resume_from as usize) {
            reg.push(adm.upload_id, i as u64, &chunk).unwrap();
        }
        let pop = adm.challenge.map(|c| pop_response(&c, blob));
        reg.finalize(adm.upload_id, manifest.digest, pop).unwrap()
    }

    #[test]
    fn full_upload_checkout_round_trip() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 4096);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        let r = upload_all(&mut reg, &manifest, &blob);
        assert!(!r.dedup);
        let back = reg.checkout_named("tenant-a/mnasnet").unwrap();
        assert_eq!(back.kind, m.kind);
        assert_eq!(crate::blob::key_for(&back), r.fingerprint);
    }

    #[test]
    fn second_tenant_dedups_without_pushing_a_byte() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 4096);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        upload_all(&mut reg, &manifest, &blob);
        let mut second = manifest.clone();
        second.model_name = "tenant-b/same-model".into();
        second.upload_key = [9u8; 32];
        let adm = reg.begin(second.clone()).unwrap();
        assert_eq!(adm.resume_from, second.chunk_count(), "dedup admission skips all chunks");
        let challenge = adm.challenge.expect("dedup admission issues a challenge");
        let r = reg
            .finalize(adm.upload_id, second.digest, Some(pop_response(&challenge, &blob)))
            .unwrap();
        assert!(r.dedup);
        assert_eq!(reg.stored(), 1);
        assert!(reg.checkout_named("tenant-b/same-model").is_ok());
    }

    #[test]
    fn dedup_without_possession_proof_is_rejected() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 4096);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        upload_all(&mut reg, &manifest, &blob);
        // A tenant that learned the (fingerprint, digest) pair but never
        // held the bytes: wrong/missing proof must not bind an alias.
        let mut freeloader = manifest.clone();
        freeloader.model_name = "tenant-x/stolen".into();
        let adm = reg.begin(freeloader.clone()).unwrap();
        let err = reg.finalize(adm.upload_id, freeloader.digest, None).unwrap_err();
        assert_eq!(err, RegistryError::PossessionProofFailed);
        assert!(reg.resolve("tenant-x/stolen").is_err(), "no alias without possession");
        assert_eq!(reg.pending(), 0, "failed proof ends the admission");
        let adm = reg.begin(freeloader.clone()).unwrap();
        let wrong = [0xeeu8; 32];
        let err = reg.finalize(adm.upload_id, freeloader.digest, Some(wrong)).unwrap_err();
        assert_eq!(err, RegistryError::PossessionProofFailed);
    }

    #[test]
    fn dedup_finalize_after_eviction_is_not_a_dangling_alias() {
        let m1 = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let m2 = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 4).unwrap();
        let mut reg = Registry::new([1u8; 32], RegistryConfig { max_bundles: 1, ..RegistryConfig::default() });
        let (manifest, blob) = manifest_for(&m1, 4096);
        upload_all(&mut reg, &manifest, &blob);
        // Dedup-admit m1, then let m2's upload evict its bundle before
        // the dedup finalize lands.
        let mut dup = manifest.clone();
        dup.model_name = "tenant-b/dup".into();
        let adm = reg.begin(dup.clone()).unwrap();
        let challenge = adm.challenge.unwrap();
        let (bytes2, fp2, digest2) = encode_model(&m2).unwrap();
        let man2 = UploadManifest {
            model_name: "tenant-c/other".into(),
            fingerprint: fp2,
            digest: digest2,
            total_len: bytes2.len() as u64,
            chunk_len: 8192,
            upload_key: [5u8; 32],
            nonce_seed: 9,
        };
        upload_all(&mut reg, &man2, &bytes2);
        assert!(!reg.contains(manifest.fingerprint), "m1 must have been evicted");
        let err = reg
            .finalize(adm.upload_id, dup.digest, Some(pop_response(&challenge, &blob)))
            .unwrap_err();
        assert!(matches!(err, RegistryError::UnknownModel { .. }), "got {err:?}");
        assert!(reg.resolve("tenant-b/dup").is_err(), "no alias to an evicted bundle");
    }

    #[test]
    fn oversize_manifest_is_rejected_before_any_allocation() {
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        let manifest = UploadManifest {
            model_name: "giant".into(),
            fingerprint: 1,
            digest: [0u8; 32],
            total_len: u64::MAX - 7,
            chunk_len: 1 << 20,
            upload_key: [1u8; 32],
            nonce_seed: 1,
        };
        let err = reg.begin(manifest).unwrap_err();
        assert!(
            matches!(err, RegistryError::TooLarge { len, .. } if len == u64::MAX - 7),
            "got {err:?}"
        );
        assert_eq!(reg.pending(), 0);
    }

    #[test]
    fn resume_with_a_fresh_upload_key_restarts_instead_of_wedging() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 1024);
        let chunks = seal_all(&manifest, &blob);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        // A stale (or hostile) begin claims the content address with a
        // key whose chunks will never arrive.
        let mut stale = manifest.clone();
        stale.upload_key = [0xbd; 32];
        let first = reg.begin(stale).unwrap();
        // The honest tenant begins with its own fresh key: same address,
        // different cipher — must restart from 0 under the new manifest,
        // not resume a prefix sealed under the abandoned key.
        let adm = reg.begin(manifest.clone()).unwrap();
        assert_eq!(adm.upload_id, first.upload_id, "the pending slot is reused");
        assert_eq!(adm.resume_from, 0, "a new cipher cannot extend the old prefix");
        for (i, c) in chunks.iter().enumerate() {
            reg.push(adm.upload_id, i as u64, c).unwrap();
        }
        reg.finalize(adm.upload_id, manifest.digest, None).unwrap();
        assert!(reg.checkout_named("tenant-a/mnasnet").is_ok());
    }

    #[test]
    fn abort_frees_the_pending_slot() {
        let m = model();
        let (manifest, _blob) = manifest_for(&m, 1024);
        let mut reg = Registry::new([1u8; 32], RegistryConfig { max_pending: 1, ..RegistryConfig::default() });
        let adm = reg.begin(manifest.clone()).unwrap();
        assert!(reg.saturated());
        reg.abort(adm.upload_id).unwrap();
        assert_eq!(reg.pending(), 0);
        assert!(!reg.saturated());
        assert_eq!(
            reg.abort(adm.upload_id).unwrap_err(),
            RegistryError::UnknownUpload { upload_id: adm.upload_id }
        );
        // The slot is usable again.
        reg.begin(manifest).unwrap();
    }

    #[test]
    fn idle_torn_uploads_are_evicted_when_the_table_is_full() {
        let m = model();
        let (manifest, _blob) = manifest_for(&m, 1024);
        let mut reg = Registry::new(
            [1u8; 32],
            RegistryConfig {
                max_pending: 1,
                pending_idle_ttl: Duration::ZERO,
                ..RegistryConfig::default()
            },
        );
        reg.begin(manifest.clone()).unwrap();
        assert!(reg.saturated());
        // A different upload arrives at the full table: the idle torn
        // upload is evicted instead of shedding forever.
        let mut other = manifest.clone();
        other.fingerprint ^= 1;
        other.digest[0] ^= 1;
        reg.begin(other).unwrap();
        assert_eq!(reg.pending(), 1, "the stale upload made room");
    }

    #[test]
    fn torn_upload_resumes_from_last_verified_chunk() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 1024);
        let chunks = seal_all(&manifest, &blob);
        assert!(chunks.len() >= 3, "test model must span several chunks");
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        let adm = reg.begin(manifest.clone()).unwrap();
        let torn_after = chunks.len() as u64 / 2;
        for i in 0..torn_after {
            reg.push(adm.upload_id, i, &chunks[i as usize]).unwrap();
        }
        // Tenant disconnects; later reconnects with the same manifest.
        let resumed = reg.begin(manifest.clone()).unwrap();
        assert_eq!(resumed.upload_id, adm.upload_id);
        assert_eq!(resumed.resume_from, torn_after, "resume starts at the last verified chunk");
        for i in torn_after..chunks.len() as u64 {
            reg.push(resumed.upload_id, i, &chunks[i as usize]).unwrap();
        }
        reg.finalize(resumed.upload_id, manifest.digest, None).unwrap();
        assert!(reg.checkout_named("tenant-a/mnasnet").is_ok());
    }

    #[test]
    fn early_finalize_is_a_precise_torn_error() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 1024);
        let chunks = seal_all(&manifest, &blob);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        let adm = reg.begin(manifest.clone()).unwrap();
        reg.push(adm.upload_id, 0, &chunks[0]).unwrap();
        let err = reg.finalize(adm.upload_id, manifest.digest, None).unwrap_err();
        assert_eq!(err, RegistryError::Incomplete { verified: 1, total: chunks.len() as u64 });
    }

    #[test]
    fn fingerprint_lie_is_rejected_at_finalize() {
        let m = model();
        let (mut manifest, blob) = manifest_for(&m, 4096);
        let honest_fp = manifest.fingerprint;
        manifest.fingerprint ^= 0xdead_beef; // claim someone else's address
        let chunks = seal_all(&manifest, &blob);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        let adm = reg.begin(manifest.clone()).unwrap();
        for (i, c) in chunks.iter().enumerate() {
            reg.push(adm.upload_id, i as u64, c).unwrap();
        }
        let err = reg.finalize(adm.upload_id, manifest.digest, None).unwrap_err();
        assert_eq!(
            err,
            RegistryError::FingerprintMismatch { declared: manifest.fingerprint, actual: honest_fp }
        );
        assert_eq!(reg.stored(), 0, "nothing may be stored after a rejected finalize");
        assert!(reg.names().is_empty());
    }

    #[test]
    fn dropped_and_reordered_chunks_are_precise_index_errors() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 1024);
        let chunks = seal_all(&manifest, &blob);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        let adm = reg.begin(manifest.clone()).unwrap();
        reg.push(adm.upload_id, 0, &chunks[0]).unwrap();
        // Drop chunk 1: chunk 2 shows up next.
        assert_eq!(
            reg.push(adm.upload_id, 2, &chunks[2]).unwrap_err(),
            RegistryError::BadChunkIndex { expected: 1, actual: 2 }
        );
        // The stream did not advance: the right chunk still lands.
        reg.push(adm.upload_id, 1, &chunks[1]).unwrap();
    }

    #[test]
    fn saturation_sheds_new_uploads() {
        let m = model();
        let (manifest, _blob) = manifest_for(&m, 1024);
        let mut reg = Registry::new([1u8; 32], RegistryConfig { max_bundles: 8, max_pending: 1, ..RegistryConfig::default() });
        reg.begin(manifest.clone()).unwrap();
        let mut other = manifest.clone();
        other.fingerprint ^= 1;
        other.digest[0] ^= 1;
        assert!(reg.saturated());
        assert_eq!(reg.begin(other).unwrap_err(), RegistryError::Saturated);
    }

    #[test]
    fn eviction_reports_fingerprints_for_engine_drop() {
        let mut reg = Registry::new([1u8; 32], RegistryConfig { max_bundles: 1, max_pending: 4, ..RegistryConfig::default() });
        let m1 = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let m2 = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 4).unwrap();
        let (man1, blob1) = {
            let (bytes, fp, digest) = encode_model(&m1).unwrap();
            (
                UploadManifest {
                    model_name: "m1".into(),
                    fingerprint: fp,
                    digest,
                    total_len: bytes.len() as u64,
                    chunk_len: 8192,
                    upload_key: [3u8; 32],
                    nonce_seed: 1,
                },
                bytes,
            )
        };
        let (man2, blob2) = {
            let (bytes, fp, digest) = encode_model(&m2).unwrap();
            (
                UploadManifest {
                    model_name: "m2".into(),
                    fingerprint: fp,
                    digest,
                    total_len: bytes.len() as u64,
                    chunk_len: 8192,
                    upload_key: [4u8; 32],
                    nonce_seed: 2,
                },
                bytes,
            )
        };
        upload_all(&mut reg, &man1, &blob1);
        upload_all(&mut reg, &man2, &blob2);
        assert_eq!(reg.drain_evictions(), vec![man1.fingerprint]);
        assert!(!reg.contains(man1.fingerprint));
        assert!(reg.contains(man2.fingerprint));
    }

    #[test]
    fn corrupt_chunk_never_advances_the_stream() {
        let m = model();
        let (manifest, blob) = manifest_for(&m, 1024);
        let chunks = seal_all(&manifest, &blob);
        let mut reg = Registry::new([1u8; 32], RegistryConfig::default());
        let adm = reg.begin(manifest.clone()).unwrap();
        let mut bad = chunks[0].clone();
        bad[0] ^= 0x01;
        assert_eq!(
            reg.push(adm.upload_id, 0, &bad).unwrap_err(),
            RegistryError::ChunkAuthFailed { index: 0 }
        );
        // Retry with the honest frame succeeds at the same index.
        reg.push(adm.upload_id, 0, &chunks[0]).unwrap();
        let cipher = manifest.cipher();
        let _ = seal_chunk(&cipher, &manifest, 1, b"x"); // exercise single-chunk sealing path
    }
}
