//! Encrypted multi-model registry (DESIGN.md §7).
//!
//! Deployments used to seal their one model in-memory at build time; a
//! multi-tenant population needs models that arrive encrypted, are stored
//! content-addressed, and cold-start on demand. This crate is that
//! boundary:
//!
//! * [`protocol`] — `Begin / Push / Finalize / Abort` over the dedicated
//!   provisioning mux lane
//!   ([`LANE_PROVISION`](mvtee_crypto::mux::LANE_PROVISION)): tenants
//!   upload models as chunked AES-GCM ciphertext *inside* the attested
//!   secure channel, so the host and monitor relay ciphertext of
//!   ciphertext and never hold a plaintext weight;
//! * [`framing`] — the chunk AEAD layer: per-upload key, positional
//!   nonces and associated data binding each chunk to its index and the
//!   upload geometry;
//! * [`registry`] — the state machine: incremental chunk verification,
//!   torn-upload resume from the last verified chunk, digest + graph
//!   fingerprint verification at finalize;
//! * [`store`] — content-addressed sealed storage keyed by graph
//!   fingerprint with cross-tenant dedup and a capacity-bounded LRU whose
//!   evictions are reported so in-memory engines die with their bundles;
//! * [`blob`] — the serialized model form and its content address
//!   (fingerprint = identity, SHA-256 digest = byte integrity).
//!
//! Everything is observable under `registry.*` telemetry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blob;
pub mod error;
pub mod framing;
pub mod protocol;
pub mod registry;
pub mod store;

pub use blob::{encode_model, key_for, key_hex, ModelBlob};
pub use error::{RegistryError, Result};
pub use framing::{open_chunk, seal_all, seal_chunk, UploadManifest, DEFAULT_CHUNK_LEN};
pub use protocol::{
    abort_upload, drive_upload, end_session, prepare_upload, prove_possession,
    serve_provisioning, upload_model, PreparedUpload, ProvisionReply, ProvisionRequest,
    UploadOutcome,
};
pub use registry::{pop_response, Admission, Registered, Registry, RegistryConfig};
pub use store::{BundleMeta, PutOutcome, SealedStore};
