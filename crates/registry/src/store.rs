//! Content-addressed sealed bundle storage with a capacity-bounded LRU.
//!
//! Verified uploads are re-sealed into a [`ProtectedFs`] under the
//! registry's root key-derivation key — one sealed file per graph
//! fingerprint at `/registry/<fp>.sealed`, so identical models uploaded
//! by different tenants collapse onto one bundle (dedup) and the host
//! only ever holds ciphertext. TEE memory and sealed capacity are the
//! scarce resources, so the store keeps at most `max_bundles` bundles
//! and evicts least-recently-used ones; evicted fingerprints are reported
//! to the caller so in-memory engines can be dropped with them.

use std::collections::BTreeMap;

use mvtee_crypto::sha256::sha256;
use mvtee_tee::ProtectedFs;

use crate::blob::key_hex;
use crate::error::{RegistryError, Result};

/// Metadata kept per stored bundle (inside the TEE).
#[derive(Debug, Clone)]
pub struct BundleMeta {
    /// SHA-256 of the plaintext blob.
    pub digest: [u8; 32],
    /// Plaintext length.
    pub len: u64,
    /// Tenant-facing routing name the bundle was first registered under.
    pub model_name: String,
}

/// Result of a store insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// Fresh content: the bundle was sealed and stored.
    Stored,
    /// The same content was already stored — nothing written.
    Deduplicated,
}

/// The sealed, content-addressed bundle store.
#[derive(Debug)]
pub struct SealedStore {
    kdk: [u8; 32],
    fs: ProtectedFs,
    entries: BTreeMap<u64, BundleMeta>,
    /// Most-recent at the back.
    lru: Vec<u64>,
    max_bundles: usize,
    evicted: Vec<u64>,
}

impl SealedStore {
    /// Creates a store sealing under `kdk`, keeping at most `max_bundles`
    /// bundles.
    pub fn new(kdk: [u8; 32], max_bundles: usize) -> Self {
        SealedStore {
            kdk,
            fs: ProtectedFs::new(),
            entries: BTreeMap::new(),
            lru: Vec::new(),
            max_bundles: max_bundles.max(1),
            evicted: Vec::new(),
        }
    }

    fn path(fingerprint: u64) -> String {
        format!("/registry/{}.sealed", key_hex(fingerprint))
    }

    fn touch(&mut self, fingerprint: u64) {
        self.lru.retain(|&fp| fp != fingerprint);
        self.lru.push(fingerprint);
    }

    /// Inserts a verified plaintext blob under its fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::ContentCollision`] when the fingerprint is
    /// already bound to a different digest.
    pub fn put(&mut self, fingerprint: u64, meta: BundleMeta, blob: &[u8]) -> Result<PutOutcome> {
        if let Some(existing) = self.entries.get(&fingerprint) {
            if existing.digest != meta.digest {
                return Err(RegistryError::ContentCollision { fingerprint });
            }
            self.touch(fingerprint);
            mvtee_telemetry::counter("registry.store.dedup_hits").inc();
            return Ok(PutOutcome::Deduplicated);
        }
        self.fs.write(&self.kdk, &Self::path(fingerprint), blob);
        self.entries.insert(fingerprint, meta);
        self.touch(fingerprint);
        mvtee_telemetry::counter("registry.store.bundles_sealed").inc();
        while self.entries.len() > self.max_bundles {
            // Never evict what we just inserted (it is at the LRU back).
            let victim = self.lru[0];
            self.drop_bundle(victim);
            self.evicted.push(victim);
            mvtee_telemetry::counter("registry.store.evictions").inc();
        }
        mvtee_telemetry::gauge("registry.store.bundles").set(self.entries.len() as i64);
        Ok(PutOutcome::Stored)
    }

    fn drop_bundle(&mut self, fingerprint: u64) {
        self.fs.remove(&Self::path(fingerprint));
        self.entries.remove(&fingerprint);
        self.lru.retain(|&fp| fp != fingerprint);
    }

    /// Unseals a bundle, re-verifying its digest, and marks it
    /// most-recently-used.
    ///
    /// # Errors
    ///
    /// * [`RegistryError::UnknownModel`] — absent (never stored or evicted),
    /// * [`RegistryError::ChunkAuthFailed`]-class channel errors surface as
    ///   [`RegistryError::Channel`] (sealed-blob tamper),
    /// * [`RegistryError::DigestMismatch`] — unsealed bytes fail the digest.
    pub fn get(&mut self, fingerprint: u64) -> Result<Vec<u8>> {
        let meta = self
            .entries
            .get(&fingerprint)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownModel { key: key_hex(fingerprint) })?;
        let blob = self
            .fs
            .read(&self.kdk, &Self::path(fingerprint))
            .map_err(|e| RegistryError::Channel(format!("sealed bundle unreadable: {e:?}")))?;
        if sha256(&blob) != meta.digest || blob.len() as u64 != meta.len {
            return Err(RegistryError::DigestMismatch);
        }
        self.touch(fingerprint);
        Ok(blob)
    }

    /// Metadata for a stored bundle, if present.
    pub fn meta(&self, fingerprint: u64) -> Option<&BundleMeta> {
        self.entries.get(&fingerprint)
    }

    /// Whether a bundle is currently stored.
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.entries.contains_key(&fingerprint)
    }

    /// Number of stored bundles.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stored fingerprints, least-recently-used first.
    pub fn lru_order(&self) -> &[u64] {
        &self.lru
    }

    /// Drains the fingerprints evicted since the last call, so callers
    /// can drop the matching in-memory engines.
    pub fn drain_evictions(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.evicted)
    }

    /// Everything the untrusted host can observe of this store: the
    /// sealed blobs. The coldstart experiment scans this (plus the wire)
    /// for plaintext weight bytes.
    pub fn host_visible_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for path in self.fs.paths() {
            if let Some((salt, blob)) = self.fs.export(path) {
                out.extend_from_slice(&salt);
                out.extend_from_slice(&blob);
            }
        }
        out
    }

    /// Host-level tamper hook for tests: corrupts a byte of a stored
    /// bundle's sealed blob.
    pub fn tamper(&mut self, fingerprint: u64, byte: usize) -> bool {
        self.fs.tamper(&Self::path(fingerprint), byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(digest: [u8; 32], len: u64) -> BundleMeta {
        BundleMeta { digest, len, model_name: "m".into() }
    }

    fn put_blob(store: &mut SealedStore, fp: u64, blob: &[u8]) -> PutOutcome {
        store.put(fp, meta(sha256(blob), blob.len() as u64), blob).unwrap()
    }

    #[test]
    fn round_trips_and_dedups() {
        let mut s = SealedStore::new([7u8; 32], 4);
        assert_eq!(put_blob(&mut s, 1, b"hello"), PutOutcome::Stored);
        assert_eq!(put_blob(&mut s, 1, b"hello"), PutOutcome::Deduplicated);
        assert_eq!(s.get(1).unwrap(), b"hello");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn collisions_are_rejected() {
        let mut s = SealedStore::new([7u8; 32], 4);
        put_blob(&mut s, 1, b"hello");
        let err = s.put(1, meta(sha256(b"other"), 5), b"other").unwrap_err();
        assert_eq!(err, RegistryError::ContentCollision { fingerprint: 1 });
    }

    #[test]
    fn lru_evicts_the_coldest_bundle() {
        let mut s = SealedStore::new([7u8; 32], 2);
        put_blob(&mut s, 1, b"a");
        put_blob(&mut s, 2, b"b");
        s.get(1).unwrap(); // 2 is now coldest
        put_blob(&mut s, 3, b"c");
        assert_eq!(s.drain_evictions(), vec![2]);
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
        assert!(matches!(s.get(2), Err(RegistryError::UnknownModel { .. })));
        assert!(s.drain_evictions().is_empty());
    }

    #[test]
    fn sealed_tamper_is_detected() {
        let mut s = SealedStore::new([7u8; 32], 4);
        put_blob(&mut s, 1, b"hello sealed world");
        assert!(s.tamper(1, 20));
        assert!(matches!(s.get(1), Err(RegistryError::Channel(_))));
    }

    #[test]
    fn host_never_sees_plaintext() {
        let mut s = SealedStore::new([7u8; 32], 4);
        let needle = b"super secret weight bytes super secret weight bytes";
        put_blob(&mut s, 1, needle);
        let host = s.host_visible_bytes();
        assert!(!host.is_empty());
        assert!(
            !host.windows(needle.len()).any(|w| w == needle),
            "sealed store leaked plaintext"
        );
    }
}
