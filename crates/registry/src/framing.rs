//! Chunked AEAD framing for model uploads.
//!
//! A tenant serializes its model ([`ModelBlob`](crate::blob::ModelBlob)),
//! splits the bytes into fixed-size chunks and seals each chunk under a
//! fresh per-upload AES-GCM-256 key carried in the [`UploadManifest`].
//! The sealed chunks then ride the attested provisioning lane, which
//! encrypts them *again* at the channel layer — the host and monitor
//! relay ciphertext of ciphertext and never see a weight byte.
//!
//! Position binding: chunk `i` is sealed with nonce
//! `nonce_from_sequence(nonce_seed, i)` and associated data naming the
//! upload (`nonce_seed`), the chunk index, the chunk count and the total
//! length. A chunk spliced from another position, another upload, or a
//! stream with a different declared geometry fails authentication — the
//! protocol's expected-index check catches drops and reorders first with
//! a more precise error, and the AAD makes the check cryptographic.

use mvtee_crypto::gcm::{nonce_from_sequence, AesGcm, TAG_LEN};
use mvtee_crypto::CryptoError;
use serde::{Deserialize, Serialize};

use crate::error::{RegistryError, Result};

/// Default upload chunk size (64 KiB of plaintext per chunk).
pub const DEFAULT_CHUNK_LEN: usize = 64 * 1024;

/// Everything the registry must know before the first chunk arrives.
///
/// Travels inside the `Begin` message over the attested secure channel,
/// so the per-upload key is itself channel-encrypted in transit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UploadManifest {
    /// Tenant-chosen routing name (serve's model key).
    pub model_name: String,
    /// Declared graph fingerprint — the content address the model will
    /// live under. Verified against the uploaded graph at finalize.
    pub fingerprint: u64,
    /// SHA-256 of the encoded plaintext blob.
    pub digest: [u8; 32],
    /// Total plaintext length in bytes.
    pub total_len: u64,
    /// Plaintext bytes per chunk (the final chunk may be shorter).
    pub chunk_len: u32,
    /// Fresh per-upload AES-GCM-256 key for the chunk layer.
    pub upload_key: [u8; 32],
    /// Nonce namespace for this upload's chunk stream.
    pub nonce_seed: u32,
}

impl UploadManifest {
    /// Number of chunks the declared geometry implies.
    pub fn chunk_count(&self) -> u64 {
        self.total_len.div_ceil(self.chunk_len as u64)
    }

    /// Plaintext length chunk `index` must decrypt to.
    pub fn chunk_plain_len(&self, index: u64) -> usize {
        let start = index * self.chunk_len as u64;
        (self.total_len - start).min(self.chunk_len as u64) as usize
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::BadManifest`] naming the inconsistency.
    pub fn validate(&self) -> Result<()> {
        if self.total_len == 0 {
            return Err(RegistryError::BadManifest("empty model".into()));
        }
        if self.chunk_len == 0 {
            return Err(RegistryError::BadManifest("zero chunk length".into()));
        }
        if self.model_name.is_empty() {
            return Err(RegistryError::BadManifest("empty model name".into()));
        }
        Ok(())
    }

    /// The chunk-layer cipher for this upload.
    pub fn cipher(&self) -> AesGcm {
        AesGcm::new_256(&self.upload_key)
    }

    fn chunk_aad(&self, index: u64) -> Vec<u8> {
        let mut aad = Vec::with_capacity(44);
        aad.extend_from_slice(b"mvtee.registry.chunk");
        aad.extend_from_slice(&self.nonce_seed.to_le_bytes());
        aad.extend_from_slice(&index.to_le_bytes());
        aad.extend_from_slice(&self.chunk_count().to_le_bytes());
        aad.extend_from_slice(&self.total_len.to_le_bytes());
        aad
    }
}

/// Seals chunk `index` of an upload.
pub fn seal_chunk(cipher: &AesGcm, manifest: &UploadManifest, index: u64, plaintext: &[u8]) -> Vec<u8> {
    let nonce = nonce_from_sequence(manifest.nonce_seed, index);
    cipher.seal(&nonce, plaintext, &manifest.chunk_aad(index))
}

/// Opens chunk `index`, mapping crypto failures to the registry's precise
/// rejection taxonomy and enforcing the positional plaintext length.
///
/// # Errors
///
/// * [`RegistryError::ChunkTruncated`] — frame shorter than the tag,
/// * [`RegistryError::ChunkAuthFailed`] — AEAD rejection (flip/splice),
/// * [`RegistryError::ChunkLengthMismatch`] — authenticated but the wrong
///   size for this position.
pub fn open_chunk(cipher: &AesGcm, manifest: &UploadManifest, index: u64, sealed: &[u8]) -> Result<Vec<u8>> {
    let nonce = nonce_from_sequence(manifest.nonce_seed, index);
    let plain = cipher.open(&nonce, sealed, &manifest.chunk_aad(index)).map_err(|e| match e {
        CryptoError::CiphertextTooShort { len } => RegistryError::ChunkTruncated { index, len },
        _ => RegistryError::ChunkAuthFailed { index },
    })?;
    let expected = manifest.chunk_plain_len(index);
    if plain.len() != expected {
        return Err(RegistryError::ChunkLengthMismatch { index, expected, actual: plain.len() });
    }
    Ok(plain)
}

/// Splits and seals a whole blob into its chunk sequence.
pub fn seal_all(manifest: &UploadManifest, blob: &[u8]) -> Vec<Vec<u8>> {
    let cipher = manifest.cipher();
    blob.chunks(manifest.chunk_len as usize)
        .enumerate()
        .map(|(i, c)| seal_chunk(&cipher, manifest, i as u64, c))
        .collect()
}

/// Sealed chunk overhead in bytes (the GCM tag).
pub const CHUNK_OVERHEAD: usize = TAG_LEN;

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(total: u64, chunk: u32) -> UploadManifest {
        UploadManifest {
            model_name: "m".into(),
            fingerprint: 7,
            digest: [0u8; 32],
            total_len: total,
            chunk_len: chunk,
            upload_key: [9u8; 32],
            nonce_seed: 42,
        }
    }

    #[test]
    fn geometry_matches_div_ceil() {
        let m = manifest(100, 32);
        assert_eq!(m.chunk_count(), 4);
        assert_eq!(m.chunk_plain_len(0), 32);
        assert_eq!(m.chunk_plain_len(3), 4);
        assert_eq!(manifest(96, 32).chunk_count(), 3);
    }

    #[test]
    fn chunks_round_trip_and_bind_position() {
        let m = manifest(100, 32);
        let blob: Vec<u8> = (0..100u8).collect();
        let sealed = seal_all(&m, &blob);
        let cipher = m.cipher();
        let mut back = Vec::new();
        for (i, c) in sealed.iter().enumerate() {
            back.extend(open_chunk(&cipher, &m, i as u64, c).unwrap());
        }
        assert_eq!(back, blob);
        // A chunk presented at the wrong index fails authentication.
        assert_eq!(
            open_chunk(&cipher, &m, 1, &sealed[0]),
            Err(RegistryError::ChunkAuthFailed { index: 1 })
        );
    }

    #[test]
    fn truncation_and_flips_are_precise() {
        let m = manifest(40, 40);
        let sealed = seal_all(&m, &[1u8; 40]);
        let cipher = m.cipher();
        let mut flipped = sealed[0].clone();
        flipped[3] ^= 0x80;
        assert_eq!(
            open_chunk(&cipher, &m, 0, &flipped),
            Err(RegistryError::ChunkAuthFailed { index: 0 })
        );
        assert_eq!(
            open_chunk(&cipher, &m, 0, &sealed[0][..8]),
            Err(RegistryError::ChunkTruncated { index: 0, len: 8 })
        );
    }
}
