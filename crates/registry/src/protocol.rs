//! The provisioning wire protocol on [`LANE_PROVISION`].
//!
//! A tenant opens a [`SecureChannel`] on the provisioning lane of an
//! already-attested connection and drives `Begin → Push×N → Finalize`.
//! Every request gets exactly one reply, so the protocol is lock-step and
//! a torn connection leaves the registry in a resumable state. Rejections
//! carry the rendered [`RegistryError`](crate::RegistryError) string, so
//! the tenant learns *which* chunk failed and why without the registry
//! leaking anything about other tenants' content.
//!
//! [`LANE_PROVISION`]: mvtee_crypto::mux::LANE_PROVISION
//! [`SecureChannel`]: mvtee_crypto::channel::SecureChannel

use mvtee_crypto::channel::{FrameTransport, SecureChannel};
use mvtee_crypto::sha256::sha256;
use mvtee_crypto::{random_array, CryptoError};
use mvtee_graph::zoo::Model;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

use crate::blob::encode_model;
use crate::error::{RegistryError, Result};
use crate::framing::{seal_all, UploadManifest, DEFAULT_CHUNK_LEN};
use crate::registry::{Registered, Registry};

/// Tenant → registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProvisionRequest {
    /// Declare an upload (or ask to resume / dedup one).
    Begin(UploadManifest),
    /// One sealed chunk.
    Push {
        /// Upload handle from `Begun`.
        upload_id: u64,
        /// Chunk index.
        index: u64,
        /// Chunk-layer AEAD ciphertext.
        sealed: Vec<u8>,
    },
    /// Commit the upload.
    Finalize {
        /// Upload handle from `Begun`.
        upload_id: u64,
        /// SHA-256 the tenant computed over its plaintext.
        digest: [u8; 32],
        /// Answer to a dedup admission's proof-of-possession challenge
        /// ([`pop_response`](crate::registry::pop_response) over the
        /// plaintext); `None` for ordinary uploads.
        pop: Option<[u8; 32]>,
    },
    /// Drop a pending upload, freeing its slot (a tenant that knows it
    /// will not finish should abort rather than leave a torn upload to
    /// age out).
    Abort {
        /// Upload handle from `Begun`.
        upload_id: u64,
    },
    /// Orderly end of the session.
    End,
}

/// Registry → tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProvisionReply {
    /// Upload admitted.
    Begun {
        /// Handle for subsequent requests.
        upload_id: u64,
        /// First chunk index expected (resume/dedup skip ahead).
        resume_from: u64,
        /// Proof-of-possession challenge on dedup admissions; `Finalize`
        /// must answer it.
        challenge: Option<[u8; 32]>,
    },
    /// Chunk verified and appended.
    ChunkOk {
        /// The verified index.
        index: u64,
    },
    /// Pending upload dropped.
    Aborted {
        /// The dropped upload's handle.
        upload_id: u64,
    },
    /// Upload committed.
    Finalized {
        /// Content address the model is stored under.
        fingerprint: u64,
        /// Whether the bundle already existed.
        dedup: bool,
    },
    /// Request rejected; the rendered registry error.
    Rejected {
        /// Why (rendered [`RegistryError`](crate::RegistryError)).
        error: String,
    },
    /// Session closing.
    Bye,
}

fn send_msg<T: FrameTransport, M: Serialize>(chan: &mut SecureChannel<T>, msg: &M) -> Result<()> {
    let bytes = mvtee_codec::to_bytes(msg).map_err(|e| RegistryError::Channel(e.to_string()))?;
    chan.send(&bytes).map_err(|e| RegistryError::Channel(format!("{e:?}")))
}

fn recv_msg<T: FrameTransport, M: for<'de> Deserialize<'de>>(chan: &mut SecureChannel<T>) -> Result<M> {
    let bytes = chan.recv().map_err(|e| RegistryError::Channel(format!("{e:?}")))?;
    mvtee_codec::from_bytes(&bytes).map_err(|e| RegistryError::Channel(e.to_string()))
}

/// Serves one provisioning session: a lock-step request/reply loop until
/// `End` or disconnect. Rejected requests do not end the session — the
/// tenant may retry or abandon; a disconnect leaves torn uploads
/// resumable.
///
/// # Errors
///
/// Only transport-level failures other than an orderly/abrupt peer
/// disconnect surface; protocol rejections are replied, not returned.
pub fn serve_provisioning<T: FrameTransport>(
    registry: &Arc<Mutex<Registry>>,
    chan: &mut SecureChannel<T>,
) -> Result<()> {
    loop {
        let req: ProvisionRequest = match recv_msg(chan) {
            Ok(req) => req,
            // Peer gone (orderly close or torn connection): uploads stay
            // pending for resume.
            Err(_) => return Ok(()),
        };
        let reply = match req {
            ProvisionRequest::Begin(manifest) => {
                let admitted = registry.lock().expect("registry lock").begin(manifest);
                match admitted {
                    Ok(a) => ProvisionReply::Begun {
                        upload_id: a.upload_id,
                        resume_from: a.resume_from,
                        challenge: a.challenge,
                    },
                    Err(e) => ProvisionReply::Rejected { error: e.to_string() },
                }
            }
            ProvisionRequest::Push { upload_id, index, sealed } => {
                match registry.lock().expect("registry lock").push(upload_id, index, &sealed) {
                    Ok(()) => ProvisionReply::ChunkOk { index },
                    Err(e) => ProvisionReply::Rejected { error: e.to_string() },
                }
            }
            ProvisionRequest::Finalize { upload_id, digest, pop } => {
                match registry.lock().expect("registry lock").finalize(upload_id, digest, pop) {
                    Ok(Registered { fingerprint, dedup }) => ProvisionReply::Finalized { fingerprint, dedup },
                    Err(e) => ProvisionReply::Rejected { error: e.to_string() },
                }
            }
            ProvisionRequest::Abort { upload_id } => {
                match registry.lock().expect("registry lock").abort(upload_id) {
                    Ok(()) => ProvisionReply::Aborted { upload_id },
                    Err(e) => ProvisionReply::Rejected { error: e.to_string() },
                }
            }
            ProvisionRequest::End => {
                let _ = send_msg(chan, &ProvisionReply::Bye);
                return Ok(());
            }
        };
        send_msg(chan, &reply)?;
    }
}

/// What a completed upload reports back to the tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadOutcome {
    /// Content address the model is stored under.
    pub fingerprint: u64,
    /// Whether the registry already had the content.
    pub dedup: bool,
    /// Chunk index the upload started from (non-zero = resumed).
    pub resumed_from: u64,
    /// Sealed bytes actually sent.
    pub bytes_sent: u64,
}

/// Builds the manifest + sealed chunk stream for a model without touching
/// a channel — the unit fault-injection campaigns mutate this before
/// driving [`drive_upload`].
#[derive(Debug, Clone)]
pub struct PreparedUpload {
    /// The manifest the tenant will declare.
    pub manifest: UploadManifest,
    /// Chunk-layer ciphertext, in order.
    pub chunks: Vec<Vec<u8>>,
}

/// Serializes, addresses and seals `model` for upload under `name`.
///
/// # Errors
///
/// Propagates encode failures (a zoo model always encodes).
pub fn prepare_upload(model: &Model, name: &str, chunk_len: usize) -> Result<PreparedUpload> {
    let (bytes, fingerprint, digest) = encode_model(model)?;
    let manifest = UploadManifest {
        model_name: name.to_string(),
        fingerprint,
        digest,
        total_len: bytes.len() as u64,
        chunk_len: chunk_len.max(1) as u32,
        upload_key: random_array(),
        nonce_seed: u32::from_le_bytes(random_array::<4>()),
    };
    let chunks = seal_all(&manifest, &bytes);
    // Recompute as a self-check: the digest in the manifest is what the
    // registry will verify against.
    debug_assert_eq!(sha256(&bytes), manifest.digest);
    Ok(PreparedUpload { manifest, chunks })
}

/// Drives a prepared upload over a channel: `Begin`, `Push` from the
/// admitted resume point, `Finalize`.
///
/// # Errors
///
/// [`RegistryError::Channel`] on transport failure; the registry's own
/// rejection (parsed back from the rendered string is not attempted —
/// the raw message is preserved) as [`RegistryError::Channel`] with the
/// `rejected:` prefix stripped into the message.
pub fn drive_upload<T: FrameTransport>(
    chan: &mut SecureChannel<T>,
    upload: &PreparedUpload,
) -> Result<UploadOutcome> {
    send_msg(chan, &ProvisionRequest::Begin(upload.manifest.clone()))?;
    let (upload_id, resume_from, challenge) = match recv_msg(chan)? {
        ProvisionReply::Begun { upload_id, resume_from, challenge } => {
            (upload_id, resume_from, challenge)
        }
        ProvisionReply::Rejected { error } => return Err(RegistryError::Channel(error)),
        other => return Err(RegistryError::Channel(format!("unexpected reply {other:?}"))),
    };
    let mut bytes_sent = 0u64;
    for (i, sealed) in upload.chunks.iter().enumerate().skip(resume_from as usize) {
        bytes_sent += sealed.len() as u64;
        send_msg(
            chan,
            &ProvisionRequest::Push { upload_id, index: i as u64, sealed: sealed.clone() },
        )?;
        match recv_msg(chan)? {
            ProvisionReply::ChunkOk { index } if index == i as u64 => {}
            ProvisionReply::Rejected { error } => return Err(RegistryError::Channel(error)),
            other => return Err(RegistryError::Channel(format!("unexpected reply {other:?}"))),
        }
    }
    // A dedup admission challenges us to prove we actually hold the
    // content; answer over our own plaintext.
    let pop = match challenge {
        Some(c) => Some(prove_possession(upload, &c)?),
        None => None,
    };
    send_msg(
        chan,
        &ProvisionRequest::Finalize { upload_id, digest: upload.manifest.digest, pop },
    )?;
    match recv_msg(chan)? {
        ProvisionReply::Finalized { fingerprint, dedup } => {
            Ok(UploadOutcome { fingerprint, dedup, resumed_from: resume_from, bytes_sent })
        }
        ProvisionReply::Rejected { error } => Err(RegistryError::Channel(error)),
        other => Err(RegistryError::Channel(format!("unexpected reply {other:?}"))),
    }
}

/// Answers a dedup proof-of-possession challenge from the tenant's own
/// prepared upload: the sealed chunks are opened back to plaintext (the
/// tenant holds the chunk key) and hashed under the challenge.
///
/// # Errors
///
/// The chunk-layer errors of [`open_chunk`](crate::framing::open_chunk)
/// if the prepared chunks were mutated since sealing.
pub fn prove_possession(upload: &PreparedUpload, challenge: &[u8; 32]) -> Result<[u8; 32]> {
    let cipher = upload.manifest.cipher();
    let mut plain = Vec::with_capacity(upload.manifest.total_len as usize);
    for (i, sealed) in upload.chunks.iter().enumerate() {
        plain.extend(crate::framing::open_chunk(&cipher, &upload.manifest, i as u64, sealed)?);
    }
    Ok(crate::registry::pop_response(challenge, &plain))
}

/// Drops a pending upload the tenant will not finish.
///
/// # Errors
///
/// [`RegistryError::Channel`] on transport failure or a rejected abort
/// (unknown upload id).
pub fn abort_upload<T: FrameTransport>(
    chan: &mut SecureChannel<T>,
    upload_id: u64,
) -> Result<()> {
    send_msg(chan, &ProvisionRequest::Abort { upload_id })?;
    match recv_msg(chan)? {
        ProvisionReply::Aborted { .. } => Ok(()),
        ProvisionReply::Rejected { error } => Err(RegistryError::Channel(error)),
        other => Err(RegistryError::Channel(format!("unexpected reply {other:?}"))),
    }
}

/// One-call happy path: prepare and drive an upload.
///
/// # Errors
///
/// As [`prepare_upload`] and [`drive_upload`].
pub fn upload_model<T: FrameTransport>(
    chan: &mut SecureChannel<T>,
    model: &Model,
    name: &str,
) -> Result<UploadOutcome> {
    let prepared = prepare_upload(model, name, DEFAULT_CHUNK_LEN)?;
    drive_upload(chan, &prepared)
}

/// Sends the orderly session end.
///
/// # Errors
///
/// Transport failures only.
pub fn end_session<T: FrameTransport>(chan: &mut SecureChannel<T>) -> Result<()> {
    send_msg(chan, &ProvisionRequest::End)?;
    // Bye may race a dropped server; ignore its loss.
    let _: std::result::Result<ProvisionReply, _> = recv_msg(chan);
    Ok(())
}

/// Maps a crypto error into the registry taxonomy (helper for hosts
/// embedding the protocol).
pub fn channel_error(e: CryptoError) -> RegistryError {
    RegistryError::Channel(format!("{e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use mvtee_crypto::channel::{memory_pair, Handshake, Role};
    use mvtee_crypto::mux::{split, LANE_PROVISION};
    use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

    fn channel_pair() -> (SecureChannel<mvtee_crypto::mux::MuxLane>, SecureChannel<mvtee_crypto::mux::MuxLane>) {
        let (a, b) = memory_pair();
        let mut lanes_a = split(a, &[LANE_PROVISION]);
        let mut lanes_b = split(b, &[LANE_PROVISION]);
        let hs_a = Handshake::from_pre_shared(b"registry-test", Role::Initiator);
        let hs_b = Handshake::from_pre_shared(b"registry-test", Role::Responder);
        (
            SecureChannel::new(lanes_a.remove(0), &hs_a, u32::from(LANE_PROVISION)),
            SecureChannel::new(lanes_b.remove(0), &hs_b, u32::from(LANE_PROVISION)),
        )
    }

    #[test]
    fn upload_over_the_lane_and_checkout() {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let registry = Arc::new(Mutex::new(Registry::new([2u8; 32], RegistryConfig::default())));
        let (mut tenant, mut server) = channel_pair();
        let reg = Arc::clone(&registry);
        let srv = std::thread::spawn(move || serve_provisioning(&reg, &mut server));
        let outcome = upload_model(&mut tenant, &model, "zoo/mnasnet").unwrap();
        end_session(&mut tenant).unwrap();
        srv.join().unwrap().unwrap();
        assert!(!outcome.dedup);
        assert_eq!(outcome.resumed_from, 0);
        let back = registry.lock().unwrap().checkout_named("zoo/mnasnet").unwrap();
        assert_eq!(back.kind, model.kind);
    }

    #[test]
    fn abort_frees_the_pending_slot_over_the_lane() {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let registry = Arc::new(Mutex::new(Registry::new([2u8; 32], RegistryConfig::default())));
        let (mut tenant, mut server) = channel_pair();
        let reg = Arc::clone(&registry);
        let srv = std::thread::spawn(move || serve_provisioning(&reg, &mut server));
        let prepared = prepare_upload(&model, "zoo/aborted", 1024).unwrap();
        send_msg(&mut tenant, &ProvisionRequest::Begin(prepared.manifest.clone())).unwrap();
        let upload_id = match recv_msg(&mut tenant).unwrap() {
            ProvisionReply::Begun { upload_id, .. } => upload_id,
            other => panic!("unexpected reply {other:?}"),
        };
        assert_eq!(registry.lock().unwrap().pending(), 1);
        abort_upload(&mut tenant, upload_id).unwrap();
        assert_eq!(registry.lock().unwrap().pending(), 0);
        // Aborting again names the unknown upload.
        let err = abort_upload(&mut tenant, upload_id).unwrap_err();
        assert!(err.to_string().contains("no pending upload"), "got: {err}");
        end_session(&mut tenant).unwrap();
        srv.join().unwrap().unwrap();
    }

    #[test]
    fn dedup_over_the_lane_answers_the_possession_challenge() {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let registry = Arc::new(Mutex::new(Registry::new([2u8; 32], RegistryConfig::default())));
        let (mut tenant, mut server) = channel_pair();
        let reg = Arc::clone(&registry);
        let srv = std::thread::spawn(move || serve_provisioning(&reg, &mut server));
        upload_model(&mut tenant, &model, "tenant-a/model").unwrap();
        // Second tenant, same content: drive_upload answers the dedup
        // challenge from its own plaintext.
        let outcome = upload_model(&mut tenant, &model, "tenant-b/model").unwrap();
        assert!(outcome.dedup);
        end_session(&mut tenant).unwrap();
        srv.join().unwrap().unwrap();
        assert_eq!(registry.lock().unwrap().stored(), 1);
        assert!(registry.lock().unwrap().checkout_named("tenant-b/model").is_ok());
    }

    #[test]
    fn rejected_uploads_report_the_precise_error() {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 4).unwrap();
        let registry = Arc::new(Mutex::new(Registry::new([2u8; 32], RegistryConfig::default())));
        let (mut tenant, mut server) = channel_pair();
        let reg = Arc::clone(&registry);
        let srv = std::thread::spawn(move || serve_provisioning(&reg, &mut server));
        let mut prepared = prepare_upload(&model, "zoo/mnasnet", 1024).unwrap();
        prepared.chunks[1][0] ^= 0x40;
        let err = drive_upload(&mut tenant, &prepared).unwrap_err();
        assert!(err.to_string().contains("chunk 1 failed AEAD authentication"), "got: {err}");
        end_session(&mut tenant).unwrap();
        srv.join().unwrap().unwrap();
        assert_eq!(registry.lock().unwrap().stored(), 0);
    }
}
