//! Protocol-level integration tests: the two-stage bootstrap state
//! machine, attested channels, sealed-storage properties, and codec
//! round-trips across the crates' boundaries.

use mvtee_crypto::channel::{memory_pair, Role, SecureChannel};
use mvtee_crypto::gcm::AesGcm;
use mvtee_crypto::sha256::sha256;
use mvtee_tee::{CodeIdentity, Enclave, Manifest, Platform, Stage, Syscall, TeeKind};
use proptest::prelude::*;

/// Full init-variant lifecycle against the TEE substrate, as the variant
/// host drives it.
#[test]
fn two_stage_bootstrap_lifecycle() {
    let platform = Platform::new();
    let mut init_manifest = Manifest::init_variant("init");
    init_manifest.encrypt_file("/enc/bundle");
    let mut enclave = Enclave::launch(
        TeeKind::Sgx,
        CodeIdentity::from_content("init", "1.0", b"init code"),
        init_manifest,
        platform.clone(),
    );
    let init_measurement = enclave.measurement();
    assert_eq!(enclave.os_ref().stage(), Stage::Init);

    // Key release and sealed payload.
    let kdk = [3u8; 32];
    enclave.os().install_key(kdk).unwrap();
    enclave.os().write_encrypted("/enc/bundle", b"the variant payload").unwrap();

    // Second-stage manifest, one-time install, exec.
    let mut second = Manifest::main_variant("main");
    second.encrypt_file("/enc/bundle");
    enclave.os().install_second_stage(second.clone()).unwrap();
    enclave.os().exec().unwrap();
    assert_eq!(enclave.os_ref().stage(), Stage::Main);

    // Post-exec invariants: measurement changed, exec and installs locked,
    // key manipulation prohibited, payload still readable.
    assert_ne!(enclave.measurement(), init_measurement);
    assert!(enclave.os().exec().is_err());
    assert!(enclave.os().install_second_stage(Manifest::main_variant("x")).is_err());
    assert!(enclave.os().install_key([9u8; 32]).is_err());
    assert_eq!(enclave.os().read_encrypted("/enc/bundle").unwrap(), b"the variant payload");

    // The report now attests the second-stage manifest.
    let report = enclave.report(b"data");
    assert_eq!(report.manifest_hash, second.hash());
    mvtee_tee::verify_report(&platform, &report, Some(enclave.measurement()), b"data").unwrap();
}

#[test]
fn syscall_surface_shrinks_after_exec() {
    let mut init_manifest = Manifest::init_variant("init");
    init_manifest.encrypt_file("/enc/b");
    let mut os = mvtee_tee::TeeOs::new(init_manifest);
    assert!(os.syscall(Syscall::Open).is_ok());
    os.install_second_stage(Manifest::main_variant("main")).unwrap();
    os.exec().unwrap();
    // The main-variant manifest drops open/exec/ioctl.
    assert!(os.syscall(Syscall::Open).is_err());
    assert!(os.syscall(Syscall::Ioctl).is_err());
    assert!(os.syscall(Syscall::Read).is_ok());
    assert!(os.syscall(Syscall::Connect).is_ok());
}

#[test]
fn attested_channel_binding_detects_mitm() {
    // A MITM replacing DH keys changes the transcript; the report binding
    // no longer matches what the verifier expects.
    let platform = Platform::new();
    let enclave = Enclave::launch(
        TeeKind::Sgx,
        CodeIdentity::from_content("v", "1", b"code"),
        Manifest::init_variant("init"),
        platform.clone(),
    );
    let nonce = b"monitor-nonce";
    let genuine_transcript = sha256(b"monitor-pk||variant-pk");
    let report = enclave.report_for_channel(nonce, &genuine_transcript);

    let mut expected = Vec::new();
    expected.extend_from_slice(&sha256(nonce));
    expected.extend_from_slice(&genuine_transcript);
    mvtee_tee::verify_report(&platform, &report, Some(enclave.measurement()), &expected).unwrap();

    // MITM substitutes its own key: different transcript, same report.
    let mitm_transcript = sha256(b"monitor-pk||mitm-pk");
    let mut mitm_expected = Vec::new();
    mitm_expected.extend_from_slice(&sha256(nonce));
    mitm_expected.extend_from_slice(&mitm_transcript);
    assert!(mvtee_tee::verify_report(
        &platform,
        &report,
        Some(enclave.measurement()),
        &mitm_expected
    )
    .is_err());
}

#[test]
fn secure_channels_full_duplex_under_load() {
    let (a, b) = memory_pair();
    let handle =
        std::thread::spawn(move || SecureChannel::establish(Role::Responder, b, 3).unwrap());
    let mut ca = SecureChannel::establish(Role::Initiator, a, 3).unwrap();
    let mut cb = handle.join().unwrap();
    let payload: Vec<u8> = (0..10_000).map(|i| i as u8).collect();
    for i in 0..50u32 {
        let mut msg = payload.clone();
        msg[0] = i as u8;
        ca.send(&msg).unwrap();
        let got = cb.recv().unwrap();
        assert_eq!(got[0], i as u8);
        cb.send(&got).unwrap();
        assert_eq!(ca.recv().unwrap()[0], i as u8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gcm_round_trips_arbitrary_payloads(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let cipher = AesGcm::new_256(&key);
        let sealed = cipher.seal(&nonce, &payload, &aad);
        prop_assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), payload);
    }

    #[test]
    fn gcm_rejects_any_single_bit_flip(
        key in proptest::array::uniform32(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<proptest::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let cipher = AesGcm::new_256(&key);
        let nonce = [0u8; 12];
        let mut sealed = cipher.seal(&nonce, &payload, b"aad");
        let idx = flip_byte.index(sealed.len());
        sealed[idx] ^= 1 << flip_bit;
        prop_assert!(cipher.open(&nonce, &sealed, b"aad").is_err());
    }

    #[test]
    fn codec_round_trips_protocol_messages(
        batch in any::<u64>(),
        dims in proptest::collection::vec(1usize..5, 1..4),
        seedval in any::<u32>(),
    ) {
        use mvtee::messages::{decode, encode, StageRequest};
        let n: usize = dims.iter().product();
        let tensor = mvtee_tensor::Tensor::from_vec(
            (0..n).map(|i| (i as f32) * 0.5 + seedval as f32).collect(),
            &dims,
        ).expect("consistent");
        let msg = StageRequest::Input { batch, trace: (0, 0), tensors: vec![tensor] };
        let bytes = encode(&msg).expect("encodes");
        prop_assert_eq!(decode::<StageRequest>(&bytes).expect("decodes"), msg);
    }

    #[test]
    fn protected_fs_round_trips_and_rejects_cross_paths(
        kdk in proptest::array::uniform32(any::<u8>()),
        content in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut fs = mvtee_tee::ProtectedFs::new();
        fs.write(&kdk, "/enc/a", &content);
        prop_assert_eq!(fs.read(&kdk, "/enc/a").unwrap(), content);
        // Serving a blob under a different path must fail (path is AAD and
        // key-derivation input).
        let (salt, blob) = fs.export("/enc/a").unwrap();
        let mut other = mvtee_tee::ProtectedFs::new();
        other.import("/enc/b", salt, blob);
        prop_assert!(other.read(&kdk, "/enc/b").is_err());
    }
}
