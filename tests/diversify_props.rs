//! Property-based tests for variant diversification: any sequence of
//! graph-level transforms, applied with any seed, must preserve model
//! semantics within floating-point tolerance — the core MVX equivalence
//! requirement.

use mvtee_diversify::transforms::{apply_all, structural_distance};
use mvtee_diversify::TransformKind;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_runtime::{Accumulation, BlasKind, ConvStrategy, Engine, EngineConfig, EngineKind};
use mvtee_tensor::{metrics, Tensor};
use proptest::prelude::*;

fn transform_strategy() -> impl Strategy<Value = Vec<TransformKind>> {
    proptest::collection::vec(
        proptest::sample::select(TransformKind::ALL.to_vec()),
        1..4,
    )
}

fn small_model() -> mvtee_graph::Graph {
    zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 61).expect("builds").graph
}

fn test_input() -> Tensor {
    let n = 3 * 32 * 32;
    Tensor::from_vec(
        (0..n).map(|i| ((i % 59) as f32 - 29.0) / 29.0).collect(),
        &[1, 3, 32, 32],
    )
    .expect("static shape")
}

fn run(graph: &mvtee_graph::Graph, config: EngineConfig, input: &Tensor) -> Tensor {
    Engine::new(config)
        .prepare(graph)
        .expect("prepares")
        .run(std::slice::from_ref(input))
        .expect("runs")
        .remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn transform_sequences_preserve_semantics(
        transforms in transform_strategy(),
        seed in any::<u64>(),
    ) {
        let graph = small_model();
        let diversified = apply_all(&graph, &transforms, seed).expect("applies");
        diversified.validate().expect("still valid");
        let input = test_input();
        let original = run(&graph, EngineConfig::of_kind(EngineKind::Reference), &input);
        let variant = run(&diversified, EngineConfig::of_kind(EngineKind::Reference), &input);
        prop_assert!(
            metrics::allclose(&original, &variant, 1e-3, 1e-4),
            "transforms {transforms:?} seed {seed} diverged by {}",
            metrics::max_abs_diff(&original, &variant)
        );
    }

    #[test]
    fn transformed_graphs_run_on_every_engine_family(
        transforms in transform_strategy(),
        seed in any::<u64>(),
        blas in proptest::sample::select(BlasKind::ALL.to_vec()),
    ) {
        let graph = small_model();
        let diversified = apply_all(&graph, &transforms, seed).expect("applies");
        let input = test_input();
        let reference = run(&graph, EngineConfig::of_kind(EngineKind::Reference), &input);
        for kind in [EngineKind::OrtLike, EngineKind::TvmLike] {
            let cfg = EngineConfig::of_kind(kind).with_blas(blas);
            let out = run(&diversified, cfg, &input);
            prop_assert!(
                metrics::allclose(&reference, &out, 1e-3, 1e-4),
                "{kind} x {blas} diverged by {}",
                metrics::max_abs_diff(&reference, &out)
            );
        }
    }

    #[test]
    fn engine_axes_preserve_semantics(
        accumulation in proptest::sample::select(vec![Accumulation::Sequential, Accumulation::Tree]),
        conv in proptest::sample::select(vec![
            ConvStrategy::Direct,
            ConvStrategy::Im2col,
            ConvStrategy::NhwcDirect,
        ]),
        blas in proptest::sample::select(BlasKind::ALL.to_vec()),
        optimize in any::<bool>(),
    ) {
        let graph = small_model();
        let input = test_input();
        let reference = run(&graph, EngineConfig::of_kind(EngineKind::Reference), &input);
        let mut cfg = EngineConfig::of_kind(EngineKind::OrtLike).with_blas(blas);
        cfg.accumulation = accumulation;
        cfg.conv_strategy = conv;
        cfg.optimize = optimize;
        let out = run(&graph, cfg, &input);
        prop_assert!(
            metrics::allclose(&reference, &out, 1e-3, 1e-4),
            "engine axis combination diverged by {}",
            metrics::max_abs_diff(&reference, &out)
        );
    }

    #[test]
    fn structural_distance_is_a_semimetric(
        ta in transform_strategy(),
        tb in transform_strategy(),
        seed in any::<u64>(),
    ) {
        let graph = small_model();
        let a = apply_all(&graph, &ta, seed).expect("applies");
        let b = apply_all(&graph, &tb, seed.wrapping_add(1)).expect("applies");
        let dab = structural_distance(&a, &b);
        let dba = structural_distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-12, "symmetry violated");
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(structural_distance(&a, &a), 0.0);
    }
}
