//! Serving determinism properties: any interleaving of requests across
//! tenants through the admission queue → micro-batcher → replica pool
//! must yield outputs byte-identical to serial single-request runs.
//!
//! One frontend (2 replicas over the same model) is shared by every
//! proptest case — the property is about request interleavings, not
//! about deployment construction, and replica workers are warm state
//! worth amortising.

use mvtee::config::MvxConfig;
use mvtee::Deployment;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_serve::{RequestOutcome, ReplicaPool, ServeConfig, ServeFrontend, ServeHandle, Ticket};
use mvtee_tensor::Tensor;
use proptest::prelude::*;
use std::sync::OnceLock;

const SEED: u64 = 11;
const REPLICAS: usize = 2;
const INPUTS: u64 = 4;
const MODEL_KEY: &str = "zoo";

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

fn serve_input(model: &zoo::Model, index: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n)
            .map(|i| (((i as u64 + 29 * index) % 71) as f32 - 35.0) / 35.0)
            .collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

struct Harness {
    handle: ServeHandle,
    inputs: Vec<Tensor>,
    reference: Vec<Tensor>,
}

/// Builds the shared frontend once: a serial reference deployment
/// answers each distinct input, then the same builder seeds a 2-replica
/// pool behind a frontend (leaked so its workers live for the whole
/// test binary).
fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model");
        let inputs: Vec<Tensor> = (0..INPUTS).map(|i| serve_input(&model, i)).collect();
        let mut reference_dep = Deployment::builder(model)
            .config(MvxConfig::fast_path(2))
            .partition_seed(SEED)
            .variant_seed(SEED)
            .build()
            .expect("reference builds");
        let reference: Vec<Tensor> = inputs
            .iter()
            .map(|input| reference_dep.infer(input).expect("reference inference"))
            .collect();
        reference_dep.shutdown();

        let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model");
        let deployments = Deployment::builder(model)
            .config(MvxConfig::fast_path(2))
            .partition_seed(SEED)
            .variant_seed(SEED)
            .build_many(REPLICAS)
            .expect("pool builds");
        let pool = ReplicaPool::new(MODEL_KEY, deployments).expect("pool wraps");
        let cfg = ServeConfig { max_batch: 3, max_wait_ms: 1, ..ServeConfig::default() };
        let frontend = Box::leak(Box::new(ServeFrontend::start(vec![pool], cfg)));
        Harness {
            handle: frontend.handle(),
            inputs,
            reference,
        }
    })
}

/// Submits the planned requests from `threads` concurrent client
/// threads (round-robin split) and returns every (input index,
/// response outcome) observed.
fn run_interleaved(
    plan: &[(u8, u8)],
    threads: usize,
) -> Vec<(u64, RequestOutcome)> {
    let h = harness();
    let mut results = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let chunk: Vec<(u8, u8)> = plan
                .iter()
                .enumerate()
                .filter(|(i, _)| i % threads == t)
                .map(|(_, &p)| p)
                .collect();
            joins.push(scope.spawn(move || {
                let mut got: Vec<(u64, Ticket)> = Vec::new();
                for (tenant, input_index) in chunk {
                    let input_index = u64::from(input_index) % INPUTS;
                    let ticket = h
                        .handle
                        .submit(
                            &format!("tenant-{tenant}"),
                            MODEL_KEY,
                            h.inputs[input_index as usize].clone(),
                        )
                        .expect("property load never sheds");
                    got.push((input_index, ticket));
                }
                got.into_iter()
                    .map(|(idx, ticket)| {
                        (idx, ticket.wait().expect("response arrives").outcome)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for j in joins {
            results.extend(j.join().expect("client thread"));
        }
    });
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of tenant requests — arbitrary tenants, inputs,
    /// arrival order, and client-thread split — produces outputs
    /// byte-identical to the serial single-request reference.
    #[test]
    fn interleavings_are_byte_identical_to_serial(
        plan in proptest::collection::vec((0u8..4, 0u8..INPUTS as u8), 1..14),
        threads in 1usize..4,
    ) {
        let results = run_interleaved(&plan, threads);
        prop_assert_eq!(results.len(), plan.len());
        for (input_index, outcome) in results {
            match outcome {
                RequestOutcome::Ok(tensor) => {
                    prop_assert!(
                        bits_equal(&tensor, &harness().reference[input_index as usize]),
                        "output for input {} differs from the serial reference",
                        input_index
                    );
                }
                other => prop_assert!(false, "request did not complete: {:?}", other),
            }
        }
    }
}

/// The deadline-flush edge case end to end: a single queued request
/// with no peers to batch with must still flush once `max_wait_ms`
/// elapses — well before its 30 s deadline — and stay byte-exact.
#[test]
fn single_request_flushes_on_batch_deadline() {
    let h = harness();
    let start = std::time::Instant::now();
    let ticket = h
        .handle
        .submit("loner", MODEL_KEY, h.inputs[0].clone())
        .expect("admitted");
    let resp = ticket.wait().expect("response arrives");
    let elapsed = start.elapsed();
    match resp.outcome {
        RequestOutcome::Ok(tensor) => {
            assert!(bits_equal(&tensor, &h.reference[0]));
        }
        other => panic!("single request did not complete: {other:?}"),
    }
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "a lone request must flush on the batcher age deadline, not wait \
         for peers (took {elapsed:?})"
    );
}
