//! Property tests for the tensor substrate: serialization, layout
//! round-trips, broadcasting algebra and the consistency metrics the
//! monitor relies on.

use mvtee_tensor::{metrics, Tensor};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..6, 0..4)
}

fn arb_tensor() -> impl Strategy<Value = Tensor> {
    arb_dims().prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        proptest::collection::vec(-100.0f32..100.0, n..=n)
            .prop_map(move |data| Tensor::from_vec(data, &dims).expect("consistent"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bytes_round_trip(t in arb_tensor()) {
        let back = Tensor::from_bytes(&t.to_bytes()).expect("round-trips");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn bytes_truncation_always_errors(t in arb_tensor(), cut in any::<proptest::sample::Index>()) {
        let bytes = t.to_bytes();
        let cut = cut.index(bytes.len().max(1));
        if cut < bytes.len() {
            prop_assert!(Tensor::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn nhwc_round_trip(
        n in 1usize..3, c in 1usize..5, h in 1usize..5, w in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Tensor::random_uniform(&mut rng, &[n, c, h, w], 10.0);
        let back = t.to_nhwc().expect("rank 4").from_nhwc().expect("rank 4");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn broadcast_add_commutes(a in arb_tensor(), b in arb_tensor()) {
        let ab = a.broadcast_with(&b, |x, y| x + y);
        let ba = b.broadcast_with(&a, |x, y| x + y);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {} // incompatible both ways — consistent
            (x, y) => prop_assert!(false, "asymmetric broadcast: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn metrics_are_reflexive_and_symmetric(a in arb_tensor(), b in arb_tensor()) {
        // Reflexivity on finite tensors.
        prop_assert!(metrics::allclose(&a, &a, 0.0, 0.0));
        prop_assert_eq!(metrics::max_abs_diff(&a, &a), 0.0);
        // Symmetry of the symmetric metrics.
        prop_assert_eq!(metrics::max_abs_diff(&a, &b), metrics::max_abs_diff(&b, &a));
        let mab = metrics::mse(&a, &b);
        let mba = metrics::mse(&b, &a);
        prop_assert!((mab - mba).abs() <= 1e-6 * (1.0 + mab.abs()));
    }

    #[test]
    fn cosine_bounded(a in arb_tensor(), b in arb_tensor()) {
        let c = metrics::cosine_similarity(&a, &b);
        prop_assert!((-1.0001..=1.0001).contains(&c), "cosine {c}");
        prop_assert!(!c.is_nan());
    }

    #[test]
    fn allclose_respects_perturbation_scale(
        t in arb_tensor(),
        eps in 1e-8f32..1e-6,
    ) {
        prop_assume!(!t.is_empty());
        let perturbed = t.map(|v| v + eps * (1.0 + v.abs()));
        // A sub-tolerance perturbation passes the relaxed metric...
        prop_assert!(metrics::allclose(&t, &perturbed, 1e-3, 1e-4));
        // ...and a gross corruption never does.
        let corrupted = t.map(|v| v + 10.0);
        prop_assert!(!metrics::allclose(&t, &corrupted, 1e-3, 1e-4));
    }
}
