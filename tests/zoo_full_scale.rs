//! Full-scale zoo sanity: the paper-sized model variants must build,
//! validate, and land in the right parameter-count ballpark.
//!
//! (Execution at full scale is deliberately not tested here — a 224×224
//! EfficientNet-b7 inference takes minutes on the naive kernels; the
//! experiments use the channel-scaled profiles.)

use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};

#[test]
fn resnet50_full_scale_matches_reference_parameter_ballpark() {
    let m = zoo::build(ModelKind::ResNet50, ScaleProfile::Full, 1).expect("builds");
    m.graph.validate().expect("valid");
    assert_eq!(m.input_shape.dims(), &[1, 3, 224, 224]);
    // torchvision's ResNet-50 has ~25.6 M parameters. Ours adds separate
    // conv biases (folded into BN in the original), so allow a band.
    let params = m.graph.parameter_count();
    assert!(
        (20_000_000..32_000_000).contains(&params),
        "ResNet-50 full-scale params {params}"
    );
}

#[test]
fn mobilenet_v3_full_scale_parameter_ballpark() {
    let m = zoo::build(ModelKind::MobileNetV3, ScaleProfile::Full, 1).expect("builds");
    m.graph.validate().expect("valid");
    // MobileNetV3-Large reference: ~5.4 M parameters.
    let params = m.graph.parameter_count();
    assert!(
        (3_500_000..9_000_000).contains(&params),
        "MobileNet V3 full-scale params {params}"
    );
}

#[test]
fn full_scale_shapes_survive_inference_metadata() {
    // Shape inference must succeed at 224×224 for every architecture —
    // catches padding/stride mistakes that only appear at full resolution.
    for kind in [
        ModelKind::GoogleNet,
        ModelKind::MnasNet,
        ModelKind::ResNet152,
        ModelKind::InceptionV3,
        ModelKind::EfficientNetB7,
    ] {
        let m = zoo::build(kind, ScaleProfile::Full, 1)
            .unwrap_or_else(|e| panic!("{kind} failed to build at full scale: {e}"));
        let out = m.graph.outputs()[0];
        let shape = m.graph.value(out).expect("output value").shape.clone();
        assert_eq!(
            shape.expect("inferred").dims(),
            &[1, 1000],
            "{kind} classifier head shape"
        );
    }
}

#[test]
fn depth_scaling_is_visible_in_parameters() {
    let r50 = zoo::build(ModelKind::ResNet50, ScaleProfile::Full, 1).unwrap();
    let r152 = zoo::build(ModelKind::ResNet152, ScaleProfile::Full, 1).unwrap();
    // ResNet-152 (~60 M) has roughly 2–3× the parameters of ResNet-50.
    let ratio = r152.graph.parameter_count() as f64 / r50.graph.parameter_count() as f64;
    assert!((1.8..3.2).contains(&ratio), "152/50 parameter ratio {ratio:.2}");
}
