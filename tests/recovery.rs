//! Self-healing integration: the scripted crash-then-recover loop.
//!
//! A deployment with recovery enabled must close the detect→react loop
//! end to end: a faulted panel member diverges (or hangs), the monitor
//! quarantines it, the recovery manager re-provisions a replacement
//! through the full attested bootstrap (fresh enclave, fresh variant key,
//! new secure binding), the replacement resynchronises from the last
//! *verified* checkpoint, and the panel returns to full strength — all
//! visible in the [`mvtee::EventLog`] and the `core.recovery.*` metrics.

use mvtee::config::{MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::deployment::Deployment;
use mvtee::MonitorEvent;
use mvtee_faults::{
    BitFlipFault, BitFlipStrategy, LivenessFault, StallFault, StallMode,
};
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;
use std::time::{Duration, Instant};

const PANEL: usize = 3;
const MVX_PARTITION: usize = 1;

fn model_input(model: &Model, salt: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| (((i as u64 + 13 * salt) % 83) as f32 - 41.0) / 41.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

fn recovery_config() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(2);
    cfg.claims[MVX_PARTITION] = PartitionMvx::replicated(PANEL);
    cfg.response = ResponsePolicy::ContinueWithMajority;
    cfg.recovery = RecoveryPolicy::enabled();
    cfg.checkpoint_deadline_ms = 300;
    cfg
}

/// The worst-case time the detect→react loop may take, derived from the
/// deployment's own configuration rather than a hardcoded batch cap:
/// detection costs up to one checkpoint deadline, each retry adds its
/// configured backoff, and re-attestation/probation get one deadline of
/// slack per allowed attempt. Healing later than this is a failure, not
/// a wait.
fn heal_deadline(cfg: &MvxConfig) -> Duration {
    let attempts = cfg.recovery.max_retries + 1;
    let backoff_total: Duration =
        (0..cfg.recovery.max_retries).map(|k| cfg.recovery.backoff(k)).sum();
    cfg.checkpoint_deadline() * (attempts + 1) + backoff_total + cfg.result_timeout()
}

/// Streams batches until the quarantined variant has rejoined and a
/// later checkpoint passed at full panel strength; panics with the event
/// log when the config-derived deadline is exhausted. Returns the
/// quarantine `(variant, batch)`.
fn stream_until_healed(d: &mut Deployment, inputs: &[Tensor]) -> (usize, u64) {
    let cfg = recovery_config();
    let deadline = Instant::now() + heal_deadline(&cfg);
    let poll = cfg.drain_poll();
    let mut b = 0u64;
    while Instant::now() < deadline {
        let idx = (b % inputs.len() as u64) as usize;
        let _ = d.infer(&inputs[idx]).expect("degraded service must continue");
        b += 1;
        let events = d.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            assert_eq!(qp, MVX_PARTITION, "quarantine at the wrong partition");
            let healed = events.recoveries().contains(&(qp, qv))
                && events
                    .checkpoint_passes()
                    .iter()
                    .any(|&(pp, pb, agreeing)| pp == qp && pb > qb && agreeing == PANEL);
            if healed {
                return (qv, qb);
            }
        }
        std::thread::sleep(poll);
    }
    panic!(
        "panel never healed within the config-derived deadline ({} batches streamed):\n{}",
        b,
        d.events().render()
    );
}

/// The full scripted loop for a *value* fault: sealed weight bit flips
/// make one replica dissent, the checkpoint quarantines it, and the
/// recovery manager's replacement (resealed from the clean subgraph)
/// rejoins and votes again.
#[test]
fn divergent_variant_is_quarantined_reprovisioned_and_rejoins() {
    let before = mvtee_telemetry::snapshot();
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 7).expect("builds");
    let inputs: Vec<Tensor> = (0..3).map(|s| model_input(&model, s)).collect();

    // The unfaulted oracle fixes the expected outputs.
    let mut clean = Deployment::builder(
        zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 7).expect("builds"),
    )
    .config(recovery_config())
    .build()
    .expect("oracle deploys");
    let expected: Vec<Tensor> =
        inputs.iter().map(|i| clean.infer(i).expect("oracle runs")).collect();
    clean.shutdown();

    let cfg = recovery_config();
    let mut d = Deployment::builder(model)
        .config(cfg.clone())
        .weight_fault(
            MVX_PARTITION,
            0,
            BitFlipFault { strategy: BitFlipStrategy::ExponentMsb, count: 3, seed: 2 },
        )
        .build()
        .expect("deploys");
    let launch_bindings = d.bindings().len();

    let deadline = Instant::now() + heal_deadline(&cfg);
    let poll = cfg.drain_poll();
    let mut healed = None;
    let mut b = 0u64;
    while Instant::now() < deadline {
        let idx = (b % inputs.len() as u64) as usize;
        let out = d.infer(&inputs[idx]).expect("majority must keep serving");
        assert!(
            bits_equal(&out, &expected[idx]),
            "batch {b}: degraded/recovered output diverged from the oracle"
        );
        b += 1;
        let events = d.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            assert_eq!(qp, MVX_PARTITION);
            if events.recoveries().contains(&(qp, qv))
                && events
                    .checkpoint_passes()
                    .iter()
                    .any(|&(pp, pb, agreeing)| pp == qp && pb > qb && agreeing == PANEL)
            {
                healed = Some((qv, qb));
                break;
            }
        }
        std::thread::sleep(poll);
    }
    let (qv, _) =
        healed.unwrap_or_else(|| panic!("never healed:\n{}", d.events().render()));
    assert_eq!(qv, 0, "the flipped replica must be the one quarantined");

    // The event log tells the whole story, in order: detect → quarantine
    // → re-provision → rejoin.
    let events = d.events().events();
    let pos = |pred: &dyn Fn(&MonitorEvent) -> bool| events.iter().position(pred);
    let quarantined = pos(&|e| {
        matches!(e, MonitorEvent::Quarantined { partition, variant, .. }
            if *partition == MVX_PARTITION && *variant == 0)
    })
    .expect("Quarantined event");
    let started = pos(&|e| {
        matches!(e, MonitorEvent::RecoveryStarted { partition, variant, .. }
            if *partition == MVX_PARTITION && *variant == 0)
    })
    .expect("RecoveryStarted event");
    let recovered = pos(&|e| {
        matches!(e, MonitorEvent::Recovered { partition, variant }
            if *partition == MVX_PARTITION && *variant == 0)
    })
    .expect("Recovered event");
    assert!(quarantined < started && started < recovered, "events out of order");

    // Re-provisioning runs the full attested bootstrap: the replacement
    // appended a fresh secure binding in the recovery id space.
    let bindings = d.bindings();
    assert!(bindings.len() > launch_bindings, "no new binding recorded");
    assert!(
        bindings.iter().any(|r| r.partition == MVX_PARTITION
            && r.variant == 0
            && r.variant_id >= 900_000_000),
        "replacement binding missing its recovery-scoped id"
    );
    d.shutdown();

    // The whole loop is visible in telemetry.
    let after = mvtee_telemetry::snapshot();
    let delta = |name: &str| {
        after.counters.get(name).copied().unwrap_or(0)
            - before.counters.get(name).copied().unwrap_or(0)
    };
    assert!(delta("core.recovery.quarantined") >= 1);
    assert!(delta("core.recovery.started") >= 1);
    assert!(delta("core.recovery.recovered") >= 1);
    let histogram_count = |snap: &mvtee_telemetry::Snapshot| {
        snap.histograms.get("core.recovery.time_to_recovery_ns").map_or(0, |h| h.count)
    };
    assert!(
        histogram_count(&after) > histogram_count(&before),
        "time-to-recovery histogram never recorded"
    );
}

/// The full scripted loop for a *liveness* fault: a variant that hangs
/// after two verified checkpoints trips the straggler watchdog, and the
/// replacement must pass probation against the last verified checkpoint
/// payload (the resync point exists by construction) before rejoining.
#[test]
fn hung_variant_recovers_via_resync_from_last_verified_checkpoint() {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 11).expect("builds");
    let inputs: Vec<Tensor> = (0..3).map(|s| model_input(&model, s)).collect();

    let mut d = Deployment::builder(model)
        .config(recovery_config())
        .liveness_fault(
            MVX_PARTITION,
            1,
            LivenessFault::Stall(StallFault { from_batch: 2, mode: StallMode::Hang }),
        )
        .build()
        .expect("deploys");

    let (qv, qb) = stream_until_healed(&mut d, &inputs);
    assert_eq!(qv, 1, "the hung replica must be the one quarantined");
    assert!(qb >= 2, "batches before the stall must have verified");
    let events = d.events();
    // Two verified checkpoints preceded the hang — the recovery manager
    // had a genuine resync point to probation the replacement against.
    assert!(
        events.checkpoint_passes().iter().any(|&(p, b, _)| p == MVX_PARTITION && b < qb),
        "no verified checkpoint before the quarantine:\n{}",
        events.render()
    );
    assert!(events.recoveries().contains(&(MVX_PARTITION, 1)));
    d.shutdown();
}
