//! Cross-engine differential testing: the three runtime families
//! (Reference, ORT-like, TVM-like) implement the same operator semantics
//! with different compilation pipelines (BN folding, im2col + blocked
//! GEMM, layout tiling). On any model they must agree within the relaxed
//! consistency metric — the same tolerance heterogeneous MVX panels are
//! checked with, so a regression here would surface as checkpoint
//! false-positives in production.

use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_runtime::{
    Engine, EngineConfig, EngineKind, KernelStrategy, OpClass, StrategyKey, StrategyTable,
};
use mvtee_tensor::metrics::{max_abs_diff, Metric};
use mvtee_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENGINES: [EngineKind; 3] = [EngineKind::Reference, EngineKind::OrtLike, EngineKind::TvmLike];

/// Seeded random input in the same range the campaign harness uses.
fn random_input(model: &Model, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> =
        (0..model.input_shape.num_elements()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

fn run(kind: EngineKind, model: &Model, input: &Tensor) -> Vec<Tensor> {
    Engine::new(EngineConfig::of_kind(kind))
        .prepare(&model.graph)
        .expect("prepares")
        .run(std::slice::from_ref(input))
        .expect("runs")
}

#[test]
fn engines_agree_on_seeded_small_zoo_models() {
    // 8 seeded cases: two small zoo families × four weight/input seeds.
    let cases: [(ModelKind, u64); 8] = [
        (ModelKind::MnasNet, 11),
        (ModelKind::MnasNet, 23),
        (ModelKind::MnasNet, 47),
        (ModelKind::MnasNet, 91),
        (ModelKind::MobileNetV3, 13),
        (ModelKind::MobileNetV3, 29),
        (ModelKind::MobileNetV3, 53),
        (ModelKind::MobileNetV3, 97),
    ];
    let metric = Metric::relaxed();
    for (kind, seed) in cases {
        let model = zoo::build(kind, ScaleProfile::Test, seed).expect("builds");
        let input = random_input(&model, seed ^ 0xd1ff);
        let outputs: Vec<Vec<Tensor>> = ENGINES.iter().map(|e| run(*e, &model, &input)).collect();
        for i in 0..ENGINES.len() {
            for j in (i + 1)..ENGINES.len() {
                assert_eq!(outputs[i].len(), outputs[j].len());
                for (a, b) in outputs[i].iter().zip(outputs[j].iter()) {
                    assert!(
                        metric.check(a, b),
                        "{:?} vs {:?} diverged on {:?} seed {}: max |Δ| = {}",
                        ENGINES[i],
                        ENGINES[j],
                        kind,
                        seed,
                        max_abs_diff(a, b)
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_path_matches_sequential_reference_exactly() {
    // Same-family comparison is exact: the intra-op pool's static chunking
    // must not perturb a single bit of any engine family's output. A
    // failure here is silent reduction-order drift in a parallel kernel.
    let cases: [(ModelKind, u64); 4] = [
        (ModelKind::MnasNet, 11),
        (ModelKind::MnasNet, 47),
        (ModelKind::MobileNetV3, 29),
        (ModelKind::ResNet50, 53),
    ];
    for (kind, seed) in cases {
        let model = zoo::build(kind, ScaleProfile::Test, seed).expect("builds");
        let input = random_input(&model, seed ^ 0xd1ff);
        for e in ENGINES {
            let sequential = run(e, &model, &input);
            let parallel = Engine::new(EngineConfig::of_kind(e).with_threads(4))
                .prepare(&model.graph)
                .expect("prepares")
                .run(std::slice::from_ref(&input))
                .expect("runs");
            assert_eq!(sequential.len(), parallel.len());
            for (a, b) in sequential.iter().zip(parallel.iter()) {
                assert_eq!(
                    a, b,
                    "{e:?} on {kind:?} seed {seed}: threads=4 output differs from sequential \
                     (max |Δ| = {})",
                    max_abs_diff(a, b)
                );
            }
        }
    }
}

#[test]
fn parallel_path_stays_within_cross_family_metric() {
    // Cross-family comparison stays relaxed: mixing thread counts across
    // families must not push the panel outside the heterogeneous metric.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 23).expect("builds");
    let input = random_input(&model, 0x7e57);
    let metric = Metric::relaxed();
    let outputs: Vec<Vec<Tensor>> = ENGINES
        .iter()
        .zip([1usize, 4, 8])
        .map(|(&e, t)| {
            Engine::new(EngineConfig::of_kind(e).with_threads(t))
                .prepare(&model.graph)
                .expect("prepares")
                .run(std::slice::from_ref(&input))
                .expect("runs")
        })
        .collect();
    for i in 0..outputs.len() {
        for j in (i + 1)..outputs.len() {
            for (a, b) in outputs[i].iter().zip(outputs[j].iter()) {
                assert!(
                    metric.check(a, b),
                    "{:?}(t{}) vs {:?}(t{}): max |Δ| = {}",
                    ENGINES[i],
                    [1usize, 4, 8][i],
                    ENGINES[j],
                    [1usize, 4, 8][j],
                    max_abs_diff(a, b)
                );
            }
        }
    }
}

#[test]
fn every_kernel_strategy_agrees_with_reference_on_seeded_zoo_models() {
    // The kernel-strategy axis must stay inside the same heterogeneous
    // tolerance every other diversification axis respects: an ORT-like
    // engine pinned to any strategy (or left on the autotuned table) must
    // agree with the Reference interpreter under the relaxed metric.
    let metric = Metric::relaxed();
    let cases: [(ModelKind, u64); 3] =
        [(ModelKind::MnasNet, 11), (ModelKind::MobileNetV3, 29), (ModelKind::ResNet50, 53)];
    for (kind, seed) in cases {
        let model = zoo::build(kind, ScaleProfile::Test, seed).expect("builds");
        let input = random_input(&model, seed ^ 0x5742);
        let reference = run(EngineKind::Reference, &model, &input);
        for ks in KernelStrategy::ALL {
            let outputs =
                Engine::new(EngineConfig::of_kind(EngineKind::OrtLike).with_kernel_strategy(ks))
                    .prepare(&model.graph)
                    .expect("prepares")
                    .run(std::slice::from_ref(&input))
                    .expect("runs");
            assert_eq!(reference.len(), outputs.len());
            for (a, b) in reference.iter().zip(outputs.iter()) {
                assert!(
                    metric.check(a, b),
                    "strategy {ks} diverged from reference on {kind:?} seed {seed}: \
                     max |Δ| = {}",
                    max_abs_diff(a, b)
                );
            }
        }
    }
}

#[test]
fn strategy_selection_ignores_thread_count() {
    // The strategy key deliberately excludes `intra_op_threads`: engines
    // differing only in thread count must share one selection table, so
    // the chosen kernel — and therefore the bytes — cannot fork on
    // parallelism. Feed the same shape stream to tables keyed by configs
    // at every thread count and require identical rendered bytes.
    let shapes = [(1usize, 64usize, 128usize), (8, 32, 96), (3, 7, 5), (1, 256, 300)];
    let tables: Vec<StrategyTable> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            let cfg = EngineConfig::of_kind(EngineKind::OrtLike).with_threads(t);
            let table = StrategyTable::new(StrategyKey::of(&cfg));
            for &(m, n, k) in &shapes {
                table.select_gemm(OpClass::GemmFc, m, n, k);
                table.select_gemm(OpClass::MatMul, m, n, k);
            }
            table
        })
        .collect();
    for t in &tables[1..] {
        assert_eq!(
            tables[0].render_bytes(),
            t.render_bytes(),
            "strategy table forked on thread count"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn strategy_table_selection_is_pure(
        shapes in proptest::collection::vec(
            (0usize..3, 1usize..512, 1usize..512, 1usize..512), 1..12
        ),
        kind_ix in 0usize..3,
    ) {
        // Same config slice + same shape stream twice → byte-identical
        // rendered tables. This is the replay property the session cache
        // and the cross-run perf gate rely on: selection is a pure
        // function of (op, shape, config), with no wall-clock input.
        let kind = [EngineKind::Reference, EngineKind::OrtLike, EngineKind::TvmLike][kind_ix];
        let cfg = EngineConfig::of_kind(kind);
        let ops = [OpClass::GemmFc, OpClass::MatMul, OpClass::ConvIm2col];
        let feed = |table: &StrategyTable| {
            for &(op_ix, m, n, k) in &shapes {
                table.select_gemm(ops[op_ix], m, n, k);
            }
        };
        let first = StrategyTable::new(StrategyKey::of(&cfg));
        feed(&first);
        let second = StrategyTable::new(StrategyKey::of(&cfg));
        feed(&second);
        prop_assert_eq!(first.render_bytes(), second.render_bytes());
        // Replaying the same stream over a populated table must not
        // change it either (hits only, no re-calibration drift).
        feed(&first);
        prop_assert_eq!(first.render_bytes(), second.render_bytes());
    }
}

#[test]
fn engines_agree_under_checkpoint_self_validity() {
    // Every engine's output must also pass the metric against itself (no
    // NaN/Inf), the same self-check a single-variant checkpoint applies.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 71).expect("builds");
    let input = random_input(&model, 3);
    let metric = Metric::relaxed();
    for e in ENGINES {
        for t in run(e, &model, &input) {
            assert!(metric.check(&t, &t), "{e:?} produced non-finite output");
        }
    }
}
