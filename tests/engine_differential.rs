//! Cross-engine differential testing: the three runtime families
//! (Reference, ORT-like, TVM-like) implement the same operator semantics
//! with different compilation pipelines (BN folding, im2col + blocked
//! GEMM, layout tiling). On any model they must agree within the relaxed
//! consistency metric — the same tolerance heterogeneous MVX panels are
//! checked with, so a regression here would surface as checkpoint
//! false-positives in production.

use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_runtime::{Engine, EngineConfig, EngineKind};
use mvtee_tensor::metrics::{max_abs_diff, Metric};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENGINES: [EngineKind; 3] = [EngineKind::Reference, EngineKind::OrtLike, EngineKind::TvmLike];

/// Seeded random input in the same range the campaign harness uses.
fn random_input(model: &Model, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> =
        (0..model.input_shape.num_elements()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, model.input_shape.dims()).expect("static input shape")
}

fn run(kind: EngineKind, model: &Model, input: &Tensor) -> Vec<Tensor> {
    Engine::new(EngineConfig::of_kind(kind))
        .prepare(&model.graph)
        .expect("prepares")
        .run(std::slice::from_ref(input))
        .expect("runs")
}

#[test]
fn engines_agree_on_seeded_small_zoo_models() {
    // 8 seeded cases: two small zoo families × four weight/input seeds.
    let cases: [(ModelKind, u64); 8] = [
        (ModelKind::MnasNet, 11),
        (ModelKind::MnasNet, 23),
        (ModelKind::MnasNet, 47),
        (ModelKind::MnasNet, 91),
        (ModelKind::MobileNetV3, 13),
        (ModelKind::MobileNetV3, 29),
        (ModelKind::MobileNetV3, 53),
        (ModelKind::MobileNetV3, 97),
    ];
    let metric = Metric::relaxed();
    for (kind, seed) in cases {
        let model = zoo::build(kind, ScaleProfile::Test, seed).expect("builds");
        let input = random_input(&model, seed ^ 0xd1ff);
        let outputs: Vec<Vec<Tensor>> = ENGINES.iter().map(|e| run(*e, &model, &input)).collect();
        for i in 0..ENGINES.len() {
            for j in (i + 1)..ENGINES.len() {
                assert_eq!(outputs[i].len(), outputs[j].len());
                for (a, b) in outputs[i].iter().zip(outputs[j].iter()) {
                    assert!(
                        metric.check(a, b),
                        "{:?} vs {:?} diverged on {:?} seed {}: max |Δ| = {}",
                        ENGINES[i],
                        ENGINES[j],
                        kind,
                        seed,
                        max_abs_diff(a, b)
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_path_matches_sequential_reference_exactly() {
    // Same-family comparison is exact: the intra-op pool's static chunking
    // must not perturb a single bit of any engine family's output. A
    // failure here is silent reduction-order drift in a parallel kernel.
    let cases: [(ModelKind, u64); 4] = [
        (ModelKind::MnasNet, 11),
        (ModelKind::MnasNet, 47),
        (ModelKind::MobileNetV3, 29),
        (ModelKind::ResNet50, 53),
    ];
    for (kind, seed) in cases {
        let model = zoo::build(kind, ScaleProfile::Test, seed).expect("builds");
        let input = random_input(&model, seed ^ 0xd1ff);
        for e in ENGINES {
            let sequential = run(e, &model, &input);
            let parallel = Engine::new(EngineConfig::of_kind(e).with_threads(4))
                .prepare(&model.graph)
                .expect("prepares")
                .run(std::slice::from_ref(&input))
                .expect("runs");
            assert_eq!(sequential.len(), parallel.len());
            for (a, b) in sequential.iter().zip(parallel.iter()) {
                assert_eq!(
                    a, b,
                    "{e:?} on {kind:?} seed {seed}: threads=4 output differs from sequential \
                     (max |Δ| = {})",
                    max_abs_diff(a, b)
                );
            }
        }
    }
}

#[test]
fn parallel_path_stays_within_cross_family_metric() {
    // Cross-family comparison stays relaxed: mixing thread counts across
    // families must not push the panel outside the heterogeneous metric.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 23).expect("builds");
    let input = random_input(&model, 0x7e57);
    let metric = Metric::relaxed();
    let outputs: Vec<Vec<Tensor>> = ENGINES
        .iter()
        .zip([1usize, 4, 8])
        .map(|(&e, t)| {
            Engine::new(EngineConfig::of_kind(e).with_threads(t))
                .prepare(&model.graph)
                .expect("prepares")
                .run(std::slice::from_ref(&input))
                .expect("runs")
        })
        .collect();
    for i in 0..outputs.len() {
        for j in (i + 1)..outputs.len() {
            for (a, b) in outputs[i].iter().zip(outputs[j].iter()) {
                assert!(
                    metric.check(a, b),
                    "{:?}(t{}) vs {:?}(t{}): max |Δ| = {}",
                    ENGINES[i],
                    [1usize, 4, 8][i],
                    ENGINES[j],
                    [1usize, 4, 8][j],
                    max_abs_diff(a, b)
                );
            }
        }
    }
}

#[test]
fn engines_agree_under_checkpoint_self_validity() {
    // Every engine's output must also pass the metric against itself (no
    // NaN/Inf), the same self-check a single-variant checkpoint applies.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 71).expect("builds");
    let input = random_input(&model, 3);
    let metric = Metric::relaxed();
    for e in ENGINES {
        for t in run(e, &model, &input) {
            assert!(metric.check(&t, &t), "{e:?} produced non-finite output");
        }
    }
}
