//! `DeploymentBuilder::build_many`: a replica pool reproducible from a
//! single seed.
//!
//! The contract the serving layer leans on:
//! * per-replica variant seeds derive deterministically from the base
//!   seed (same `--seed` → same pool, twice);
//! * replica 0 is the plain `build()` deployment;
//! * replicas share the partition seed — so replicated panels answer
//!   byte-identically across the pool and engine preparation is reused
//!   through the global session cache — while diversified panels still
//!   differ replica-to-replica.

use mvtee::config::{MvxConfig, PartitionMvx};
use mvtee::{Deployment, DeploymentBuilder};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;

const SEED: u64 = 31;

fn model() -> zoo::Model {
    zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model builds")
}

fn diversified_mvx() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(2);
    cfg.claims[1] = PartitionMvx::diversified(3);
    cfg
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

fn test_input(model: &zoo::Model) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| ((i % 67) as f32 - 33.0) / 33.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

#[test]
fn pool_is_reproducible_from_one_seed() {
    let build_pool = || {
        Deployment::builder(model())
            .config(diversified_mvx())
            .partition_seed(SEED)
            .variant_seed(SEED)
            .build_many(3)
            .expect("pool builds")
    };
    let mut a = build_pool();
    let mut b = build_pool();
    for (da, db) in a.iter().zip(&b) {
        assert_eq!(
            da.variant_specs(),
            db.variant_specs(),
            "same base seed must reproduce the identical pool"
        );
    }
    for d in a.iter_mut().chain(b.iter_mut()) {
        d.shutdown();
    }
}

#[test]
fn replica_zero_is_the_plain_build_and_diversified_replicas_differ() {
    let mut plain = Deployment::builder(model())
        .config(diversified_mvx())
        .partition_seed(SEED)
        .variant_seed(SEED)
        .build()
        .expect("plain builds");
    let mut pool = Deployment::builder(model())
        .config(diversified_mvx())
        .partition_seed(SEED)
        .variant_seed(SEED)
        .build_many(2)
        .expect("pool builds");
    assert_eq!(
        pool[0].variant_specs(),
        plain.variant_specs(),
        "replica 0 must be exactly the single-deployment build"
    );
    assert_ne!(
        pool[0].variant_specs(),
        pool[1].variant_specs(),
        "diversified replicas must draw distinct variant seeds"
    );
    plain.shutdown();
    for d in &mut pool {
        d.shutdown();
    }
}

#[test]
fn replica_variant_seeds_are_distinct_and_anchored_at_base() {
    assert_eq!(DeploymentBuilder::replica_variant_seed(SEED, 0), SEED);
    let seeds: Vec<u64> =
        (0..16).map(|r| DeploymentBuilder::replica_variant_seed(SEED, r)).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "derived seeds must not collide");
}

#[test]
fn replicated_pool_answers_byte_identically_and_reuses_warm_engines() {
    let mut cfg = MvxConfig::fast_path(2);
    for claim in &mut cfg.claims {
        *claim = PartitionMvx::replicated(3);
    }
    let prepare_hits0 = mvtee_telemetry::counter("runtime.cache.prepare_hits").get();
    let mut pool = Deployment::builder(model())
        .config(cfg)
        .partition_seed(SEED)
        .variant_seed(SEED)
        .build_many(3)
        .expect("pool builds");
    // Replicas share the partition seed, so later replicas re-prepare
    // the same (engine config, subgraph) pairs and hit the session
    // cache instead of re-packing weights.
    assert!(
        mvtee_telemetry::counter("runtime.cache.prepare_hits").get() > prepare_hits0,
        "building sibling replicas must reuse warm engine preparations"
    );
    let m = model();
    let input = test_input(&m);
    let outputs: Vec<Tensor> = pool
        .iter_mut()
        .map(|d| d.infer(&input).expect("replica inference"))
        .collect();
    for out in &outputs[1..] {
        assert!(
            bits_equal(out, &outputs[0]),
            "replicated replicas must answer byte-identically"
        );
    }
    for d in &mut pool {
        d.shutdown();
    }
}

#[test]
fn empty_pool_is_rejected() {
    let err = Deployment::builder(model()).build_many(0);
    assert!(err.is_err(), "a zero-replica pool must be an InvalidConfig error");
}
