//! Telemetry integration: the instrumented pipeline feeds the global
//! registry during real runs.
//!
//! Both tests share one process-wide registry, so every assertion works on
//! before/after deltas. The benign deployment test records no divergence
//! events, keeping the exactly-once assertion of the bit-flip test sound.

use crossbeam::channel::{bounded, unbounded};
use mvtee::config::{DegradationPolicy, ExecMode, ResponsePolicy, VotingPolicy};
use mvtee::events::{EventLog, MonitorEvent};
use mvtee::link::{link_pair, DataLink};
use mvtee::messages::{decode, encode, StageRequest, StageResponse};
use mvtee::pipeline::{
    run_stage, spawn_rx_thread, CoordMsg, RxEvent, StageJob, StagePolicy, StageRuntime,
    VariantLink,
};
use mvtee::prelude::*;
use mvtee_faults::{flip_weight_bits, BitFlipStrategy};
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_graph::ValueId;
use mvtee_runtime::{Engine, EngineConfig, EngineKind, PreparedModel};
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;
use std::collections::{HashMap, HashSet};
use std::time::Instant;

fn model_input(m: &Model) -> Tensor {
    let n = m.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| ((i % 89) as f32 - 44.0) / 44.0).collect(),
        m.input_shape.dims(),
    )
    .expect("static shape")
}

fn checkpoint_samples(snap: &mvtee_telemetry::Snapshot) -> u64 {
    snap.histograms
        .iter()
        .filter(|(name, _)| {
            name.starts_with("core.pipeline.") && name.ends_with(".checkpoint_latency_ns")
        })
        .map(|(_, h)| h.count)
        .sum()
}

/// A full deployment over a zoo model leaves non-zero checkpoint-latency
/// samples in the global registry and no spurious detections.
#[test]
fn deployment_run_produces_checkpoint_latency_samples() {
    let before = mvtee_telemetry::snapshot();

    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 61).expect("builds");
    let input = model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .build()
        .expect("deploys");
    d.infer(&input).expect("benign inference succeeds");
    assert_eq!(d.events().detection_count(), 0, "spurious detection");
    d.shutdown();

    let after = mvtee_telemetry::snapshot();
    assert!(
        checkpoint_samples(&after) > checkpoint_samples(&before),
        "no checkpoint latency recorded: before {before:?}, after {after:?}"
    );
}

/// Serves a prepared model over monitor-side links, like a variant TEE's
/// data plane.
fn spawn_model_variant(prepared: Box<dyn PreparedModel>) -> (DataLink, DataLink) {
    let (req_monitor, req_variant) = link_pair(false, b"", 0);
    let (resp_variant, resp_monitor) = link_pair(false, b"", 1);
    std::thread::spawn(move || {
        let mut rx = req_variant;
        let mut tx = resp_variant;
        while let Ok(frame) = rx.recv() {
            let Ok(msg) = decode::<StageRequest>(&frame) else { break };
            match msg {
                StageRequest::Shutdown => break,
                StageRequest::Input { batch, tensors, .. } => {
                    let resp = match prepared.run(&tensors) {
                        Ok(outputs) => StageResponse::Output { batch, tensors: outputs },
                        Err(e) => StageResponse::Crashed { batch, reason: e.to_string() },
                    };
                    if tx.send(&encode(&resp).expect("encodes")).is_err() {
                        break;
                    }
                }
            }
        }
    });
    (req_monitor, resp_monitor)
}

/// A variant whose weights took exponent-MSB bit flips dissents at its
/// checkpoint, incrementing the divergence counter exactly once.
#[test]
fn bitflip_divergence_increments_counter_exactly_once() {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 77).expect("builds");
    let input = model_input(&model);

    let engine = Engine::new(EngineConfig::of_kind(EngineKind::Reference));
    let clean = engine.prepare(&model.graph).expect("clean prepares");
    let clean_output =
        clean.run(std::slice::from_ref(&input)).expect("clean runs").remove(0);
    // Search flip seeds until the corruption survives to the model output
    // (a saturated softmax can absorb even exponent-MSB flips), so the
    // checkpoint below is guaranteed to face diverging outputs.
    let corrupted = (0..64u64)
        .find_map(|seed| {
            let mut corrupted_graph = model.graph.clone();
            let flips = flip_weight_bits(
                &mut corrupted_graph,
                BitFlipStrategy::ExponentMsb,
                8,
                seed,
            );
            assert!(!flips.is_empty(), "model has weights to flip");
            let prepared = engine.prepare(&corrupted_graph).expect("corrupted prepares");
            let out = prepared.run(std::slice::from_ref(&input)).ok()?.remove(0);
            (!Metric::strict().check(&clean_output, &out)).then_some(prepared)
        })
        .expect("some flip seed corrupts the output");

    let (merged_tx, merged_rx) = unbounded::<RxEvent>();
    let mut links = Vec::new();
    let mut rx_threads = Vec::new();
    for (i, prepared) in [clean, corrupted].into_iter().enumerate() {
        let (tx, rx) = spawn_model_variant(prepared);
        rx_threads.push(spawn_rx_thread(i, 0, rx, merged_tx.clone()));
        links.push(VariantLink { tx, description: format!("variant-{i}") });
    }
    let output_id = *model.graph.outputs().first().expect("one output");
    let runtime = StageRuntime {
        partition: 0,
        links,
        responses: merged_rx,
        merged_tx,
        rx_threads,
        inputs: vec![*model.graph.inputs().first().expect("one input")],
        outputs: vec![output_id],
        needed_downstream: HashSet::from([output_id]),
        slow: true,
        recovery: None,
        transcript: mvtee::transcript::TranscriptLog::new(),
    };
    let policy = StagePolicy {
        exec: ExecMode::Sync,
        voting: VotingPolicy::Unanimous,
        response: ResponsePolicy::Halt,
        degradation: DegradationPolicy::Degrade,
        deadline: std::time::Duration::from_secs(30),
        drain_window: std::time::Duration::from_millis(500),
        drain_poll: std::time::Duration::from_millis(50),
        queue_depth: 8,
        late_window: 256,
    };

    let before = mvtee_telemetry::snapshot();
    let before_divergence = before.counters.get("core.events.divergence").copied().unwrap_or(0);

    let (in_tx, in_rx) = bounded::<CoordMsg>(8);
    let (out_tx, out_rx) = unbounded::<StageJob>();
    let events = EventLog::new();
    let ev = events.clone();
    let coordinator =
        std::thread::spawn(move || run_stage(runtime, policy, Metric::strict(), in_rx, out_tx, ev));
    let mut env = HashMap::new();
    env.insert(*runtime_input_id(&model), input);
    in_tx
        .send(CoordMsg::Job(StageJob { batch: 0, env, poisoned: None, submitted: Instant::now(), trace: mvtee_telemetry::trace::TraceCtx::NONE }))
        .expect("sends");
    let result = out_rx
        .recv_timeout(std::time::Duration::from_secs(30))
        .expect("coordinator answers");
    in_tx.send(CoordMsg::Stop).expect("stops");
    coordinator.join().expect("coordinator exits");

    assert!(result.poisoned.is_some(), "halt policy must poison the batch");
    let divergences = events
        .events()
        .iter()
        .filter(|e| matches!(e, MonitorEvent::DivergenceDetected { .. }))
        .count();
    assert_eq!(divergences, 1, "one checkpoint, one divergence event");

    let after = mvtee_telemetry::snapshot();
    let after_divergence = after.counters.get("core.events.divergence").copied().unwrap_or(0);
    assert_eq!(
        after_divergence - before_divergence,
        1,
        "divergence counter must advance exactly once"
    );
}

fn runtime_input_id(model: &Model) -> &ValueId {
    model.graph.inputs().first().expect("one input")
}
