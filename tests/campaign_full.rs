//! Acceptance test for the fault-injection campaign harness (the repo's
//! systematic security evaluation): a fixed-seed 64-scenario campaign
//! across all three fault families must complete deterministically with
//! zero MISSED scenarios, and forcing a MISSED must shrink to a one-line
//! repro spec that replays to the same verdict.

use mvtee_campaign::{
    generate_scenario, run_campaign, run_scenario, shrink_missed, CampaignConfig, Scenario,
};
use mvtee_faults::FaultDescriptor;
use mvtee_graph::zoo::ScaleProfile;

const CAMPAIGN_SEED: u64 = 7;
const CAMPAIGN_COUNT: u64 = 64;
const CVE_CLASSES: [&str; 6] = ["OOB", "UNP", "FPE", "IO", "UAF", "ACF"];

#[test]
fn full_campaign_meets_the_detection_invariant() {
    let cfg = CampaignConfig::new(CAMPAIGN_SEED, CAMPAIGN_COUNT);
    let report = run_campaign(&cfg);

    // Zero MISSED: every scenario was detected, crashed, or provably
    // masked.
    assert_eq!(
        report.matrix.total_missed(),
        0,
        "detection invariant violated:\n{}",
        report.render_text()
    );

    // All three fault families ran.
    let classes = report.matrix.classes();
    assert!(classes.iter().any(|c| c == "bitflip"), "no bit-flip scenarios in {classes:?}");
    assert!(classes.iter().any(|c| c == "frameflip"), "no FrameFlip scenarios in {classes:?}");

    // Every CVE class appeared and scored at least one detection or crash
    // against a susceptible variant set (masked-only coverage would mean
    // the class never actually fired).
    for class in CVE_CLASSES {
        let totals = report.matrix.class_totals(class);
        assert!(totals.total() > 0, "CVE class {class} never appeared:\n{}", report.render_text());
        assert!(
            totals.detected + totals.crashed >= 1,
            "CVE class {class} was never detected or crashed:\n{}",
            report.render_text()
        );
    }

    // Determinism: the same seed reproduces the coverage matrix and the
    // full report byte-for-byte.
    let again = run_campaign(&cfg);
    assert_eq!(
        report.matrix.render_json(),
        again.matrix.render_json(),
        "coverage matrix is not deterministic"
    );
    assert_eq!(report.render_json(), again.render_json(), "report is not deterministic");
}

#[test]
fn forcing_a_miss_shrinks_to_a_replayable_one_line_spec() {
    // Find a campaign bit-flip scenario and disable every checkpoint: the
    // fault still manifests but nothing evaluates — a guaranteed MISSED.
    let mut sc = (0..CAMPAIGN_COUNT)
        .map(|i| generate_scenario(CAMPAIGN_SEED, i))
        .find(|s| matches!(s.fault, FaultDescriptor::WeightBitFlip(_)))
        .expect("campaign generates bit-flip scenarios");
    sc.force_fast = true;

    let outcome = run_scenario(&sc, ScaleProfile::Test).expect("runs");
    assert!(outcome.is_missed(), "disabling checkpoints must produce MISSED, got {outcome}");

    let shrunk = shrink_missed(&sc, ScaleProfile::Test);
    assert!(shrunk.outcome.is_missed());
    let spec = shrunk.repro_spec();
    assert_eq!(spec.lines().count(), 1, "repro spec must be one line: {spec:?}");

    // The spec replays exactly: parse → identical scenario → same verdict.
    let replayed = Scenario::from_spec(&spec).expect("spec parses");
    assert_eq!(replayed, shrunk.minimal, "spec round-trip changed the scenario");
    let verdict = run_scenario(&replayed, ScaleProfile::Test).expect("replays");
    assert_eq!(
        verdict.label(),
        shrunk.outcome.label(),
        "replayed verdict differs: {verdict} vs {}",
        shrunk.outcome
    );
}
