//! End-to-end tracing + audit-transcript integration: transcript
//! determinism and tamper evidence, and the flight-recorder chain from
//! a serve-side request root to the quarantining checkpoint verdict.
//!
//! Everything lives in one test function: the trace recorder and its
//! flight-dump slots are process-global, so the phases run serially in
//! a known order instead of racing a parallel test harness.

use mvtee::config::{DegradationPolicy, MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::transcript::{verify_transcript, AuditError};
use mvtee::Deployment;
use mvtee_faults::{BitFlipFault, BitFlipStrategy};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_serve::{ReplicaPool, ServeConfig, ServeFrontend};
use mvtee_telemetry::trace::{self, TraceCtx};
use mvtee_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 11;
const PARTITIONS: usize = 2;
const PANEL: usize = 3;
const BATCHES: u64 = 3;

fn mvx() -> MvxConfig {
    let mut mvx = MvxConfig::fast_path(PARTITIONS);
    for claim in &mut mvx.claims {
        *claim = PartitionMvx::replicated(PANEL);
    }
    mvx.response = ResponsePolicy::ContinueWithMajority;
    mvx.degradation = DegradationPolicy::Degrade;
    mvx.recovery = RecoveryPolicy::enabled();
    mvx
}

fn model() -> zoo::Model {
    zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("zoo model builds")
}

fn input(m: &zoo::Model, index: u64) -> Tensor {
    let n = m.input_shape.num_elements();
    let mut rng = StdRng::seed_from_u64(SEED ^ index);
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(data, m.input_shape.dims()).expect("static input shape")
}

/// One fault-free build of the fixed seed: runs `BATCHES` inferences and
/// returns the rendered transcript.
fn fault_free_transcript() -> String {
    let m = model();
    let inputs: Vec<Tensor> = (0..BATCHES).map(|i| input(&m, i)).collect();
    let mut dep = Deployment::builder(m)
        .config(mvx())
        .partition_seed(SEED)
        .variant_seed(SEED)
        .build()
        .expect("deployment builds");
    for i in &inputs {
        dep.infer(i).expect("fault-free inference");
    }
    let transcript = dep.transcript().render(SEED, "trace-audit-test");
    dep.shutdown();
    transcript
}

#[test]
fn transcripts_chain_and_flight_dump_links_ticket_to_verdict() {
    // Phase 1: determinism — two independent builds of the same seed
    // render byte-identical transcripts, and the chain replays.
    let a = fault_free_transcript();
    let b = fault_free_transcript();
    assert_eq!(a, b, "transcript must be byte-identical for a fixed seed");
    let summary = verify_transcript(&a).expect("clean transcript verifies");
    assert_eq!(summary.seed, SEED);
    assert_eq!(summary.entries as u64, BATCHES * PARTITIONS as u64);
    assert_eq!(summary.divergences, 0);

    // Phase 2: tamper evidence — a single flipped byte in an entry body
    // breaks the replay, and a removed line is reported as a gap.
    let mut tampered = a.clone().into_bytes();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    let tampered = String::from_utf8_lossy(&tampered).into_owned();
    assert!(verify_transcript(&tampered).is_err(), "flipped byte must fail the audit");
    let gapped: Vec<&str> = a.lines().enumerate().filter(|(i, _)| *i != 2).map(|(_, l)| l).collect();
    match verify_transcript(&(gapped.join("\n") + "\n")) {
        Err(AuditError::Gap { .. } | AuditError::Tamper { .. }) => {}
        other => panic!("dropped line must fail as gap/tamper, got {other:?}"),
    }

    // Phase 3: the flight-recorder chain. A 2-replica pool whose replica
    // 0 carries weight bit flips on partition 1; the first request lands
    // on replica 0 (lowest-index tie-break), diverges at the partition-1
    // checkpoint, and the divergence event snapshots the flight
    // recorder. The dump must hold the serve-side request root and the
    // verdict instant under one trace id, and the traced run must show
    // runtime/crypto leaf spans under that same id.
    let flip = BitFlipFault { strategy: BitFlipStrategy::ExponentMsb, count: 3, seed: SEED };
    let deployments = Deployment::builder(model())
        .config(mvx())
        .partition_seed(SEED)
        .variant_seed(SEED)
        .build_many_with(2, move |r, builder| {
            if r == 0 {
                builder.weight_fault(1, 0, flip)
            } else {
                builder
            }
        })
        .expect("probe pool builds");
    let pool = ReplicaPool::new("probe", deployments).expect("pool wraps deployments");
    let frontend = ServeFrontend::start(vec![pool], ServeConfig::default());
    let faulted = frontend.replica_events("probe", 0).expect("replica 0 exists");

    let tracer = trace::recorder();
    tracer.clear();
    tracer.set_enabled(true);
    let m = model();
    let probe_input = input(&m, 0);
    let mut first_id = None;
    for _ in 0..8 {
        let ticket = frontend
            .handle()
            .submit("auditor", "probe", probe_input.clone())
            .expect("probe submit admitted");
        first_id.get_or_insert(ticket.id);
        ticket.wait().expect("probe request resolves");
        if !faulted.quarantines().is_empty() {
            break;
        }
    }
    tracer.set_enabled(false);
    assert!(!faulted.quarantines().is_empty(), "weight fault must quarantine a variant");

    let events = tracer.snapshot();
    let dumps = tracer.dumps();
    frontend.shutdown();

    let request_trace = TraceCtx::for_request(first_id.expect("submitted at least once")).trace.0;
    assert!(
        events.iter().any(|e| e.name == "runtime.op" && e.trace == request_trace),
        "per-op spans must carry the request's trace id"
    );
    assert!(
        events.iter().any(|e| e.name == "crypto.send" && e.trace == request_trace),
        "channel spans must carry the request's trace id"
    );

    let dump = dumps
        .iter()
        .find(|d| d.events.iter().any(|e| e.name == "core.event.divergence"))
        .expect("a flight dump captured the divergence verdict");
    let verdict = dump
        .events
        .iter()
        .find(|e| e.name == "core.event.divergence")
        .expect("dump holds the verdict instant");
    assert!(
        dump.events
            .iter()
            .any(|e| e.name == "serve.submit" && e.trace == verdict.trace),
        "dump must chain the serve request root to the quarantining verdict \
         (reason: {:?}, {} events)",
        dump.reason,
        dump.events.len()
    );
}
