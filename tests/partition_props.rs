//! Property-based tests for the partitioner: on randomly generated DAGs
//! and random targets, every produced partition set must cover the graph
//! exactly, keep the quotient acyclic, and execute identically to the
//! unpartitioned model.

use mvtee_graph::op::ActivationKind;
use mvtee_graph::{Graph, GraphBuilder, ValueId};
use mvtee_partition::{slice_by_boundaries, PartitionSet, Partitioner};
use mvtee_runtime::{Engine, EngineConfig, EngineKind};
use mvtee_tensor::{metrics, Tensor};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a random branchy CNN-ish DAG from a compact genome: a sequence
/// of layer choices plus skip connections.
fn random_model(genome: &[u8]) -> Graph {
    let mut b = GraphBuilder::new("prop", 7);
    let x = b.input(&[1, 4, 8, 8]);
    let mut frontier: Vec<ValueId> = vec![x];
    for (i, &gene) in genome.iter().enumerate() {
        let src = frontier[gene as usize % frontier.len()];
        let out = match gene % 5 {
            0 => b.conv(src, 4, (3, 3), (1, 1), (1, 1), 1).expect("conv"),
            1 => b.activation(src, ActivationKind::Relu).expect("act"),
            2 => b.batch_norm(src).expect("bn"),
            3 => {
                let other = frontier[(gene as usize / 2) % frontier.len()];
                // Element-wise ops need matching channel counts; conv both
                // to 4 channels first if needed (the builder keeps channels
                // at 4 throughout this generator).
                b.add(src, other).expect("add")
            }
            _ => b.activation(src, ActivationKind::Sigmoid).expect("act"),
        };
        frontier.push(out);
        if i % 3 == 0 && frontier.len() > 4 {
            frontier.remove(0);
        }
    }
    // Join all frontier leaves that are dangling into a final output chain
    // so the graph has exactly one output.
    let mut out = *frontier.last().expect("nonempty");
    // Consume every unconsumed value to keep the DAG connected.
    let consumers = {
        let g_outputs: Vec<ValueId> = frontier.clone();
        g_outputs
    };
    for v in consumers {
        if v != out {
            out = b.add(out, v).expect("join");
        }
    }
    let g = b.global_avg_pool(out).expect("gap");
    b.finish(vec![g]).expect("valid graph")
}

fn run_graph(graph: &Graph, input: &Tensor) -> Tensor {
    Engine::new(EngineConfig::of_kind(EngineKind::Reference))
        .prepare(graph)
        .expect("prepares")
        .run(std::slice::from_ref(input))
        .expect("runs")
        .remove(0)
}

/// Executes the partitioned model stage by stage and compares with the
/// whole-graph execution.
fn chained_execution_matches(graph: &Graph, set: &PartitionSet, input: &Tensor) {
    let subgraphs = set.extract_subgraphs(graph).expect("extracts");
    let engine = Engine::new(EngineConfig::of_kind(EngineKind::Reference));
    let mut env: HashMap<ValueId, Tensor> = HashMap::new();
    env.insert(graph.inputs()[0], input.clone());
    for (plan, sub) in set.stages.iter().zip(subgraphs.iter()) {
        let inputs: Vec<Tensor> = plan.inputs.iter().map(|v| env[v].clone()).collect();
        let outputs = engine
            .prepare(sub)
            .expect("stage prepares")
            .run(&inputs)
            .expect("stage runs");
        for (v, t) in plan.outputs.iter().zip(outputs) {
            env.insert(*v, t);
        }
    }
    let chained = &env[&graph.outputs()[0]];
    let whole = run_graph(graph, input);
    prop_assert_is_close(&whole, chained);
}

fn prop_assert_is_close(a: &Tensor, b: &Tensor) {
    assert!(
        metrics::allclose(a, b, 1e-4, 1e-5),
        "chained execution diverged: {}",
        metrics::max_abs_diff(a, b)
    );
}

/// Explicit replay of the checked-in proptest regression
/// (`partition_props.proptest-regressions`): this genome/target/seed once
/// produced a failing partition. Keeping it as a plain test means the case
/// runs even if the regression file is lost, and failures print eagerly.
#[test]
fn regression_genome_shrunk_by_proptest() {
    let genome: [u8; 16] = [0, 44, 0, 4, 4, 24, 10, 15, 10, 35, 104, 210, 146, 4, 161, 175];
    let target = 2usize;
    let seed = 4789535714483036397u64;

    let graph = random_model(&genome);
    assert!(graph.node_count() >= target);
    let set = Partitioner::new(target).partition(&graph, seed).expect("partitions");
    assert_eq!(set.len(), target);
    set.verify(&graph).expect("verifies");
    let total: usize = set.stages.iter().map(|s| s.nodes.len()).sum();
    assert_eq!(total, graph.node_count(), "stage plans must cover every node exactly once");

    // And the partitioned execution must equal the whole-graph execution.
    let input = Tensor::from_vec(
        (0..256).map(|i| ((i % 13) as f32 - 6.0) / 6.0).collect(),
        &[1, 4, 8, 8],
    )
    .expect("static shape");
    chained_execution_matches(&graph, &set, &input);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_contraction_is_always_valid(
        genome in proptest::collection::vec(any::<u8>(), 6..24),
        target in 2usize..6,
        seed in any::<u64>(),
    ) {
        let graph = random_model(&genome);
        prop_assume!(graph.node_count() >= target);
        let set = Partitioner::new(target).partition(&graph, seed).expect("partitions");
        prop_assert_eq!(set.len(), target);
        set.verify(&graph).expect("verifies");
        // Stage plans must reference only real nodes, exactly once.
        let total: usize = set.stages.iter().map(|s| s.nodes.len()).sum();
        prop_assert_eq!(total, graph.node_count());
    }

    #[test]
    fn partitioned_execution_equals_whole_execution(
        genome in proptest::collection::vec(any::<u8>(), 6..20),
        target in 2usize..5,
        seed in any::<u64>(),
    ) {
        let graph = random_model(&genome);
        prop_assume!(graph.node_count() >= target);
        let set = Partitioner::new(target).partition(&graph, seed).expect("partitions");
        let input = Tensor::from_vec(
            (0..256).map(|i| ((i % 13) as f32 - 6.0) / 6.0).collect(),
            &[1, 4, 8, 8],
        ).expect("static shape");
        chained_execution_matches(&graph, &set, &input);
    }

    #[test]
    fn manual_slicing_equals_whole_execution(
        genome in proptest::collection::vec(any::<u8>(), 8..20),
        cut_fraction in 0.2f64..0.8,
    ) {
        let graph = random_model(&genome);
        let n = graph.node_count();
        let cut = ((n as f64 * cut_fraction) as usize).clamp(1, n - 1);
        let set = slice_by_boundaries(&graph, &[cut]).expect("slices");
        let input = Tensor::from_vec(
            (0..256).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect(),
            &[1, 4, 8, 8],
        ).expect("static shape");
        chained_execution_matches(&graph, &set, &input);
    }

    #[test]
    fn boundary_shapes_are_known_after_inference(
        genome in proptest::collection::vec(any::<u8>(), 6..16),
        seed in any::<u64>(),
    ) {
        let graph = random_model(&genome);
        prop_assume!(graph.node_count() >= 3);
        let set = Partitioner::new(3).partition(&graph, seed).expect("partitions");
        for stage in &set.stages {
            for v in stage.outputs.iter().chain(stage.inputs.iter()) {
                let info = graph.value(*v).expect("value exists");
                prop_assert!(info.shape.is_some(), "boundary {v} lacks a shape");
            }
        }
    }
}
