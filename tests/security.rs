//! Security integration tests: the Table 1 CVE matrix, fault injection,
//! and the attack surfaces analysed in §6.5 — all against the real
//! threaded system.

use mvtee::prelude::*;
use mvtee::SpecPatch;
use mvtee_faults::{Attack, CveClass, FrameFlip, InputTrigger};
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_runtime::{BlasKind, EngineConfig, EngineKind};
use mvtee_tensor::Tensor;

fn model() -> Model {
    zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 51).expect("builds")
}

fn model_input(m: &Model) -> Tensor {
    let n = m.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| ((i % 71) as f32 - 35.0) / 35.0).collect(),
        m.input_shape.dims(),
    )
    .expect("static shape")
}

/// Deploys a 2-variant MVX partition: variant 0 susceptible, variant 1
/// patched with `defender`; returns (inference result ok?, detections).
fn cve_trial(class: CveClass, defender: SpecPatch) -> (bool, usize) {
    let m = model();
    let input = model_input(&m);
    let mut d = Deployment::builder(m)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .spec_patch(1, 1, defender)
        .response(ResponsePolicy::Halt)
        .attack(Attack::new(class))
        .build()
        .expect("deploys");
    let ok = d.infer(&input).is_ok();
    let detections = d.events().detection_count();
    d.shutdown();
    (ok, detections)
}

#[test]
fn different_rt_detects_every_cve_class() {
    for class in CveClass::ALL {
        let (ok, detections) = cve_trial(
            class,
            SpecPatch::engine(EngineConfig::of_kind(EngineKind::TvmLike)),
        );
        assert!(detections > 0, "{class}: exploit not detected");
        assert!(!ok, "{class}: halted batch must fail");
    }
}

#[test]
fn class_specific_hardening_detects_matching_classes() {
    let cases: [(CveClass, &str); 5] = [
        (CveClass::Oob, "bounds-check"),
        (CveClass::Unp, "sanitizer-address"),
        (CveClass::Io, "sanitizer-address"),
        (CveClass::Uaf, "sanitizer-address"),
        (CveClass::Acf, "error-handling"),
    ];
    for (class, hardening) in cases {
        let patch = SpecPatch {
            hardening: Some(vec![hardening.to_string()]),
            ..Default::default()
        };
        let (_, detections) = cve_trial(class, patch);
        assert!(detections > 0, "{class} with {hardening}: not detected");
    }
}

#[test]
fn aslr_defends_the_oob_exploit_chain() {
    let patch = SpecPatch { aslr_seed: Some(0x1517), ..Default::default() };
    let (_, detections) = cve_trial(CveClass::Oob, patch);
    assert!(detections > 0, "ASLR-diversified variant must survive and dissent");
}

#[test]
fn without_mvx_the_exploit_wins_silently_or_kills_service() {
    let m = model();
    let input = model_input(&m);
    for class in [CveClass::Oob, CveClass::Acf] {
        let mut d = Deployment::builder(m.clone())
            .partitions(2)
            .attack(Attack::new(class))
            .build()
            .expect("deploys");
        let result = d.infer(&input);
        match class.effect() {
            mvtee_faults::FaultEffect::Crash => {
                assert!(result.is_err(), "{class}: crash class should kill the batch")
            }
            _ => {
                // Silent corruption: inference "succeeds" — the exact false
                // sense of security the paper's introduction warns about.
                assert!(result.is_ok(), "{class}: corruption should be silent");
            }
        }
        d.shutdown();
    }
}

#[test]
fn marker_triggered_exploit_fires_only_on_crafted_input() {
    // The marker must reach the vulnerable component's own input parser,
    // so the MVX panel sits on the first partition (which sees the raw
    // model input).
    let m = model();
    let benign = model_input(&m);
    let mut crafted = model_input(&m);
    crafted.data_mut()[0] = 1337.0;
    let mut d = Deployment::builder(m)
        .partitions(2)
        .mvx_on_partition(0, 2)
        .engine_override(0, 1, EngineConfig::of_kind(EngineKind::TvmLike))
        .response(ResponsePolicy::Halt)
        .attack(Attack::with_marker(CveClass::Io, 1337.0))
        .build()
        .expect("deploys");
    assert!(d.infer(&benign).is_ok(), "benign traffic must pass");
    assert_eq!(d.events().detection_count(), 0);
    let result = d.infer(&crafted);
    assert!(d.events().detection_count() > 0, "crafted input must be detected");
    assert!(result.is_err());
    d.shutdown();
}

#[test]
fn frameflip_detected_by_blas_diverse_panel() {
    let m = model();
    let input = model_input(&m);
    let mut d = Deployment::builder(m)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .engine_override(
            1,
            1,
            EngineConfig::of_kind(EngineKind::OrtLike).with_blas(BlasKind::Strided),
        )
        .response(ResponsePolicy::Halt)
        .frameflip(FrameFlip::against(BlasKind::Blocked))
        .build()
        .expect("deploys");
    assert!(d.infer(&input).is_err());
    assert!(d.events().detection_count() > 0);
    d.shutdown();
}

#[test]
fn frameflip_invisible_without_blas_diversity() {
    // Both variants on the attacked backend: their corrupted outputs agree
    // — replication without diversity is not a defense.
    let m = model();
    let input = model_input(&m);
    let mut d = Deployment::builder(m)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .response(ResponsePolicy::Halt)
        .frameflip(FrameFlip::against(BlasKind::Blocked))
        .build()
        .expect("deploys");
    let result = d.infer(&input);
    assert!(result.is_ok(), "identical corrupted replicas agree");
    assert_eq!(d.events().detection_count(), 0);
    d.shutdown();
}

#[test]
fn continue_with_majority_survives_a_minority_exploit() {
    let m = model();
    let input = model_input(&m);
    let expected = {
        use mvtee_runtime::{Engine, PreparedModel};
        let e = Engine::new(EngineConfig::of_kind(EngineKind::TvmLike));
        let p: Box<dyn PreparedModel> = e.prepare(&m.graph).expect("prepares");
        p.run(std::slice::from_ref(&input)).expect("runs").remove(0)
    };
    // The healthy engines agree within the heterogeneous tolerance.
    let mut d = Deployment::builder(m)
        .partitions(2)
        .mvx_on_partition(1, 3)
        // Keep the single-variant first partition off the vulnerable
        // runtime so only one panel member is exploitable.
        .engine_override(0, 0, EngineConfig::of_kind(EngineKind::TvmLike))
        // Two healthy diverse-RT variants out-vote the exploited one.
        .engine_override(1, 1, EngineConfig::of_kind(EngineKind::TvmLike))
        .engine_override(1, 2, EngineConfig::of_kind(EngineKind::Reference))
        // The overrides turned the replicated claim into a heterogeneous
        // panel; its checkpoint must tolerate benign cross-engine drift.
        .checkpoint_metric(1, mvtee_tensor::metrics::Metric::relaxed())
        .voting(VotingPolicy::Majority)
        .response(ResponsePolicy::ContinueWithMajority)
        .attack(Attack::new(CveClass::Uaf))
        .build()
        .expect("deploys");
    let out = d.infer(&input).expect("degraded service continues");
    assert!(d.events().detection_count() > 0, "the exploit is still reported");
    assert!(
        mvtee_tensor::metrics::allclose(&out, &expected, 1e-3, 1e-4),
        "the adopted majority output must be the healthy one"
    );
    d.shutdown();
}

#[test]
fn sealed_bundle_tampering_blocks_bootstrap() {
    // The untrusted orchestrator flips a byte in a sealed variant bundle:
    // decryption fails inside the init-variant and the deployment cannot
    // come online — integrity property (ii)/(vii) of §6.5.
    let m = model();
    let offline = mvtee::OfflinePhase::run(
        &m.graph,
        &MvxConfig::fast_path(2),
        7,
        &Default::default(),
    )
    .expect("offline phase");
    // Tamper with one artifact and attempt a manual decrypt as the variant
    // would: the protected-FS open must fail closed.
    let artifact = &offline.artifacts[0][0];
    let mut fs = mvtee_tee::ProtectedFs::new();
    let (salt, mut blob) = artifact.sealed.clone();
    let mid = blob.len() / 2;
    blob[mid] ^= 0xff;
    fs.import(&artifact.bundle_path, salt, blob);
    assert!(
        fs.read(&artifact.variant_key, &artifact.bundle_path).is_err(),
        "tampered sealed bundle must not decrypt"
    );
}

#[test]
fn exploits_on_nonfinal_partitions_are_caught_before_output() {
    // Attack the FIRST partition; the halt must prevent any final output.
    let m = model();
    let input = model_input(&m);
    let mut d = Deployment::builder(m)
        .partitions(2)
        .mvx_on_partition(0, 2)
        .engine_override(0, 1, EngineConfig::of_kind(EngineKind::TvmLike))
        .response(ResponsePolicy::Halt)
        .attack(Attack { class: CveClass::Io, trigger: InputTrigger::Always })
        .build()
        .expect("deploys");
    assert!(d.infer(&input).is_err());
    assert!(d.events().detection_count() > 0);
    d.shutdown();
}
