//! Property tests for the convolution kernels: the three lowering
//! strategies (direct NCHW, im2col+GEMM, direct NHWC) must agree on
//! random shapes, strides, paddings and group counts — this is the
//! numeric-equivalence bedrock under variant diversification.

use mvtee_runtime::kernels::{
    conv2d_direct, conv2d_im2col, conv2d_nhwc_direct, gemm_fc, pool2d, softmax, ConvAttrs,
};
use mvtee_runtime::{Accumulation, BlasKind};
use mvtee_graph::op::PoolKind;
use mvtee_tensor::{metrics, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
struct ConvCase {
    n: usize,
    c_per_group: usize,
    groups: usize,
    oc_per_group: usize,
    h: usize,
    w: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    seed: u64,
}

fn conv_case() -> impl Strategy<Value = ConvCase> {
    (
        1usize..3,     // n
        1usize..5,     // c_per_group
        1usize..4,     // groups
        1usize..5,     // oc_per_group
        3usize..12,    // h
        3usize..12,    // w
        (1usize..4, 1usize..4),
        (1usize..3, 1usize..3),
        (0usize..3, 0usize..3),
        any::<u64>(),
    )
        .prop_map(
            |(n, c_per_group, groups, oc_per_group, h, w, kernel, stride, padding, seed)| {
                ConvCase { n, c_per_group, groups, oc_per_group, h, w, kernel, stride, padding, seed }
            },
        )
        .prop_filter("window must fit", |c| {
            c.h + 2 * c.padding.0 >= c.kernel.0 && c.w + 2 * c.padding.1 >= c.kernel.1
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_lowerings_agree(case in conv_case()) {
        let mut rng = StdRng::seed_from_u64(case.seed);
        let c = case.c_per_group * case.groups;
        let oc = case.oc_per_group * case.groups;
        let x = Tensor::random_uniform(&mut rng, &[case.n, c, case.h, case.w], 1.0);
        let w = Tensor::random_uniform(
            &mut rng,
            &[oc, case.c_per_group, case.kernel.0, case.kernel.1],
            0.5,
        );
        let b = Tensor::random_uniform(&mut rng, &[oc], 0.5);
        let attrs = ConvAttrs {
            kernel: case.kernel,
            stride: case.stride,
            padding: case.padding,
            groups: case.groups,
        };
        let direct = conv2d_direct(&x, &w, Some(&b), &attrs).expect("direct runs");
        for blas in BlasKind::ALL {
            let im2col = conv2d_im2col(&x, &w, Some(&b), &attrs, blas.instantiate().as_ref())
                .expect("im2col runs");
            prop_assert!(
                metrics::allclose(&direct, &im2col, 1e-4, 1e-5),
                "im2col({blas}) diverged by {} on {case:?}",
                metrics::max_abs_diff(&direct, &im2col)
            );
        }
        let nhwc = conv2d_nhwc_direct(&x.to_nhwc().expect("rank 4"), &w, Some(&b), &attrs)
            .expect("nhwc runs")
            .from_nhwc()
            .expect("rank 4");
        prop_assert!(
            metrics::allclose(&direct, &nhwc, 1e-4, 1e-5),
            "nhwc diverged by {} on {case:?}",
            metrics::max_abs_diff(&direct, &nhwc)
        );
    }

    #[test]
    fn gemm_backends_agree(
        m in 1usize..8,
        n in 1usize..8,
        k in 1usize..32,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&mut rng, &[m, k], 1.0);
        let w = Tensor::random_uniform(&mut rng, &[n, k], 1.0);
        let b = Tensor::random_uniform(&mut rng, &[n], 1.0);
        let mut outputs = Vec::new();
        for blas in BlasKind::ALL {
            outputs.push(
                gemm_fc(&x, &w, Some(&b), blas.instantiate().as_ref()).expect("gemm runs"),
            );
        }
        for pair in outputs.windows(2) {
            prop_assert!(metrics::allclose(&pair[0], &pair[1], 1e-4, 1e-5));
        }
    }

    #[test]
    fn pooling_accumulation_orders_agree(
        h in 2usize..10,
        w in 2usize..10,
        k in 1usize..4,
        seed in any::<u64>(),
    ) {
        prop_assume!(h >= k && w >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&mut rng, &[1, 3, h, w], 10.0);
        for kind in [PoolKind::Max, PoolKind::Average] {
            let a = pool2d(&x, kind, (k, k), (1, 1), (0, 0), Accumulation::Sequential)
                .expect("pools");
            let b = pool2d(&x, kind, (k, k), (1, 1), (0, 0), Accumulation::Tree)
                .expect("pools");
            prop_assert!(metrics::allclose(&a, &b, 1e-5, 1e-6));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..5,
        cols in 1usize..40,
        scale in 0.1f32..100.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&mut rng, &[rows, cols], scale);
        for acc in [Accumulation::Sequential, Accumulation::Tree] {
            let y = softmax(&x, 1, acc).expect("softmax runs");
            for row in y.data().chunks(cols) {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
                prop_assert!(row.iter().all(|v| (0.0..=1.0).contains(v) && v.is_finite()));
            }
        }
    }
}
