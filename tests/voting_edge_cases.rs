//! Negative-path coverage for checkpoint voting (§4.3): the degenerate
//! inputs a monitor can see when variants die or straggle — empty panels,
//! all-crashed panels, the async 2-of-3 quorum followed by a late
//! dissenter, and the panel-rejoin cases a recovered variant introduces
//! (its vote counts again on the next covered checkpoint; its stale
//! pre-quarantine frames never do).

use mvtee::config::{MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::deployment::Deployment;
use mvtee::voting::{evaluate, has_quorum, VariantOutput, Verdict};
use mvtee::{MonitorEvent, VotingPolicy};
use mvtee_faults::{LivenessFault, StallFault, StallMode};
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;

fn ok(v: &[f32]) -> VariantOutput {
    VariantOutput::Ok(vec![Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()])
}

fn crashed(reason: &str) -> VariantOutput {
    VariantOutput::Crashed(reason.to_string())
}

#[test]
fn empty_panel_is_divergence_not_agreement() {
    // A checkpoint with zero outputs must never report consensus: there is
    // nothing to replicate downstream.
    for policy in [VotingPolicy::Unanimous, VotingPolicy::Majority] {
        let v = evaluate(&[], Metric::strict(), policy);
        match v {
            Verdict::Diverged { majority, dissenting, .. } => {
                assert!(majority.is_none(), "no output can be selected from an empty panel");
                assert!(dissenting.is_empty());
            }
            other => panic!("empty panel must diverge, got {other:?}"),
        }
    }
}

#[test]
fn all_crashed_panel_reports_every_variant_as_dissenting() {
    let outs = [crashed("sigsegv"), crashed("sigbus"), crashed("oom")];
    for policy in [VotingPolicy::Unanimous, VotingPolicy::Majority] {
        let v = evaluate(&outs, Metric::strict(), policy);
        match v {
            Verdict::Diverged { majority, dissenting, detail } => {
                assert!(majority.is_none());
                assert_eq!(dissenting, vec![0, 1, 2]);
                assert!(detail.contains("crashed"), "detail: {detail}");
            }
            other => panic!("all-crashed panel must diverge, got {other:?}"),
        }
    }
}

#[test]
fn all_crashed_panel_has_no_quorum() {
    let outs = [crashed("a"), crashed("b")];
    assert!(has_quorum(&outs, 3, Metric::strict()).is_none());
}

#[test]
fn empty_arrival_has_no_quorum() {
    assert!(has_quorum(&[], 3, Metric::strict()).is_none());
}

#[test]
fn two_of_three_quorum_then_late_dissent() {
    // Async cross-validation: the first two arrivals agree and form a
    // 2-of-3 quorum — the pipeline releases their output downstream.
    let early = [ok(&[1.0, 2.0]), ok(&[1.0, 2.0])];
    let quorum = has_quorum(&early, 3, Metric::strict());
    assert!(quorum.is_some(), "2 agreeing of 3 is a strict majority");
    assert_eq!(quorum.unwrap()[0].data(), &[1.0, 2.0]);

    // The straggler then arrives with a different answer. The full-panel
    // evaluation must flag exactly the late variant — this is the
    // LateDissent signal (detected after release, but still detected).
    let full = [ok(&[1.0, 2.0]), ok(&[1.0, 2.0]), ok(&[9.0, 9.0])];
    match evaluate(&full, Metric::strict(), VotingPolicy::Majority) {
        Verdict::Diverged { majority: Some(sel), dissenting, .. } => {
            assert_eq!(sel[0].data(), &[1.0, 2.0]);
            assert_eq!(dissenting, vec![2]);
        }
        other => panic!("late dissent must be flagged, got {other:?}"),
    }
}

#[test]
fn two_of_three_quorum_then_late_crash() {
    // Same release point, but the straggler dies instead of dissenting.
    let early = [ok(&[4.0]), ok(&[4.0])];
    assert!(has_quorum(&early, 3, Metric::strict()).is_some());

    let full = [ok(&[4.0]), ok(&[4.0]), crashed("late sigsegv")];
    match evaluate(&full, Metric::strict(), VotingPolicy::Majority) {
        Verdict::Diverged { majority: Some(_), dissenting, .. } => {
            assert_eq!(dissenting, vec![2]);
        }
        other => panic!("late crash must be flagged, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Panel rejoin: the voting edges only a live recovered deployment has.
// ---------------------------------------------------------------------

const PANEL: usize = 3;
const MVX_PARTITION: usize = 1;
const BATCH_CAP: u64 = 40;

fn rejoin_config() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(2);
    cfg.claims[MVX_PARTITION] = PartitionMvx::replicated(PANEL);
    cfg.response = ResponsePolicy::ContinueWithMajority;
    cfg.recovery = RecoveryPolicy::enabled();
    cfg.checkpoint_deadline_ms = 300;
    cfg
}

fn rejoin_input(model: &Model, salt: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| (((i as u64 + 29 * salt) % 97) as f32 - 48.0) / 48.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

#[test]
fn recovered_variant_votes_again_on_the_next_covered_checkpoint() {
    // A replica hangs, is quarantined by the watchdog, and is replaced.
    // The proof that the replacement genuinely *votes* — rather than the
    // panel limping on with survivors — is a later CheckpointPassed whose
    // `agreeing` count is back to the full panel size.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 3).expect("builds");
    let inputs: Vec<Tensor> = (0..3).map(|s| rejoin_input(&model, s)).collect();
    let mut d = Deployment::builder(model)
        .config(rejoin_config())
        .liveness_fault(
            MVX_PARTITION,
            2,
            LivenessFault::Stall(StallFault { from_batch: 1, mode: StallMode::Hang }),
        )
        .build()
        .expect("deploys");

    let mut full_strength_pass = None;
    for b in 0..BATCH_CAP {
        let idx = (b % inputs.len() as u64) as usize;
        d.infer(&inputs[idx]).expect("majority must keep serving");
        let events = d.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            full_strength_pass = events
                .checkpoint_passes()
                .iter()
                .find(|&&(pp, pb, agreeing)| pp == qp && pb > qb && agreeing == PANEL)
                .copied();
            if full_strength_pass.is_some() {
                assert_eq!((qp, qv), (MVX_PARTITION, 2));
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let (_, pass_batch, agreeing) = full_strength_pass
        .unwrap_or_else(|| panic!("no full-strength pass:\n{}", d.events().render()));
    assert_eq!(agreeing, PANEL, "recovered variant's vote missing from the tally");
    // Between the quarantine and the rejoin, passes tallied only the
    // survivors — never more than the panel, never fewer than a majority.
    for &(p, b, a) in &d.events().checkpoint_passes() {
        if p == MVX_PARTITION && b < pass_batch {
            assert!(a * 2 > PANEL && a <= PANEL, "impossible tally {a} at batch {b}");
        }
    }
    d.shutdown();
}

#[test]
fn stale_pre_quarantine_frame_is_ignored_not_revoted() {
    // A delayed replica answers *after* the watchdog quarantined it: its
    // response frame carries the pre-quarantine channel epoch and must be
    // dropped, not counted as a fresh vote. Inputs cycle, so if the stale
    // frame were accepted for a later batch it would dissent and surface
    // as a DivergenceDetected — the absence of any divergence after the
    // quarantine, plus oracle-identical outputs, is the proof.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 5).expect("builds");
    let inputs: Vec<Tensor> = (0..3).map(|s| rejoin_input(&model, s)).collect();

    let mut clean = Deployment::builder(
        zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 5).expect("builds"),
    )
    .config(rejoin_config())
    .build()
    .expect("oracle deploys");
    let expected: Vec<Tensor> =
        inputs.iter().map(|i| clean.infer(i).expect("oracle runs")).collect();
    clean.shutdown();

    let mut d = Deployment::builder(
        zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 5).expect("builds"),
    )
    .config(rejoin_config())
    .liveness_fault(
        MVX_PARTITION,
        0,
        // Three times the checkpoint deadline: the answer always lands
        // well after the quarantine bumped the epoch.
        LivenessFault::Stall(StallFault {
            from_batch: 1,
            mode: StallMode::Delay { delay_ms: 900 },
        }),
    )
    .build()
    .expect("deploys");

    let mut healed = false;
    for b in 0..BATCH_CAP {
        let idx = (b % inputs.len() as u64) as usize;
        let out = d.infer(&inputs[idx]).expect("majority must keep serving");
        assert!(
            bits_equal(&out, &expected[idx]),
            "batch {b}: stale frame corrupted the forwarded output"
        );
        let events = d.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            healed = events.recoveries().contains(&(qp, qv))
                && events
                    .checkpoint_passes()
                    .iter()
                    .any(|&(pp, pb, agreeing)| pp == qp && pb > qb && agreeing == PANEL);
            if healed {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(healed, "panel never healed:\n{}", d.events().render());

    // The only detection is the watchdog's own late-dissent/quarantine:
    // the stale frame itself must never have been evaluated as a vote.
    let quarantine_batch = d.events().quarantines()[0].2;
    let spurious: Vec<_> = d
        .events()
        .events()
        .iter()
        .filter(|e| {
            matches!(e, MonitorEvent::DivergenceDetected { partition, batch, .. }
                if *partition == MVX_PARTITION && *batch > quarantine_batch)
        })
        .cloned()
        .collect();
    assert!(spurious.is_empty(), "stale frame was counted as a vote: {spurious:?}");
    d.shutdown();
}

#[test]
fn minority_arrivals_never_release_early() {
    // 1 arrival of a 4-panel (or a 2-2 split) is not a strict majority:
    // the async path must keep waiting rather than release.
    assert!(has_quorum(&[ok(&[1.0])], 4, Metric::strict()).is_none());
    let split = [ok(&[1.0]), ok(&[2.0])];
    assert!(has_quorum(&split, 4, Metric::strict()).is_none());
    // Even unanimous arrivals are not a quorum of the *full* panel when
    // too few have arrived.
    let two = [ok(&[1.0]), ok(&[1.0])];
    assert!(has_quorum(&two, 5, Metric::strict()).is_none());
}
