//! Negative-path coverage for checkpoint voting (§4.3): the degenerate
//! inputs a monitor can see when variants die or straggle — empty panels,
//! all-crashed panels, and the async 2-of-3 quorum followed by a late
//! dissenter.

use mvtee::voting::{evaluate, has_quorum, VariantOutput, Verdict};
use mvtee::VotingPolicy;
use mvtee_tensor::metrics::Metric;
use mvtee_tensor::Tensor;

fn ok(v: &[f32]) -> VariantOutput {
    VariantOutput::Ok(vec![Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()])
}

fn crashed(reason: &str) -> VariantOutput {
    VariantOutput::Crashed(reason.to_string())
}

#[test]
fn empty_panel_is_divergence_not_agreement() {
    // A checkpoint with zero outputs must never report consensus: there is
    // nothing to replicate downstream.
    for policy in [VotingPolicy::Unanimous, VotingPolicy::Majority] {
        let v = evaluate(&[], Metric::strict(), policy);
        match v {
            Verdict::Diverged { majority, dissenting, .. } => {
                assert!(majority.is_none(), "no output can be selected from an empty panel");
                assert!(dissenting.is_empty());
            }
            other => panic!("empty panel must diverge, got {other:?}"),
        }
    }
}

#[test]
fn all_crashed_panel_reports_every_variant_as_dissenting() {
    let outs = [crashed("sigsegv"), crashed("sigbus"), crashed("oom")];
    for policy in [VotingPolicy::Unanimous, VotingPolicy::Majority] {
        let v = evaluate(&outs, Metric::strict(), policy);
        match v {
            Verdict::Diverged { majority, dissenting, detail } => {
                assert!(majority.is_none());
                assert_eq!(dissenting, vec![0, 1, 2]);
                assert!(detail.contains("crashed"), "detail: {detail}");
            }
            other => panic!("all-crashed panel must diverge, got {other:?}"),
        }
    }
}

#[test]
fn all_crashed_panel_has_no_quorum() {
    let outs = [crashed("a"), crashed("b")];
    assert!(has_quorum(&outs, 3, Metric::strict()).is_none());
}

#[test]
fn empty_arrival_has_no_quorum() {
    assert!(has_quorum(&[], 3, Metric::strict()).is_none());
}

#[test]
fn two_of_three_quorum_then_late_dissent() {
    // Async cross-validation: the first two arrivals agree and form a
    // 2-of-3 quorum — the pipeline releases their output downstream.
    let early = [ok(&[1.0, 2.0]), ok(&[1.0, 2.0])];
    let quorum = has_quorum(&early, 3, Metric::strict());
    assert!(quorum.is_some(), "2 agreeing of 3 is a strict majority");
    assert_eq!(quorum.unwrap()[0].data(), &[1.0, 2.0]);

    // The straggler then arrives with a different answer. The full-panel
    // evaluation must flag exactly the late variant — this is the
    // LateDissent signal (detected after release, but still detected).
    let full = [ok(&[1.0, 2.0]), ok(&[1.0, 2.0]), ok(&[9.0, 9.0])];
    match evaluate(&full, Metric::strict(), VotingPolicy::Majority) {
        Verdict::Diverged { majority: Some(sel), dissenting, .. } => {
            assert_eq!(sel[0].data(), &[1.0, 2.0]);
            assert_eq!(dissenting, vec![2]);
        }
        other => panic!("late dissent must be flagged, got {other:?}"),
    }
}

#[test]
fn two_of_three_quorum_then_late_crash() {
    // Same release point, but the straggler dies instead of dissenting.
    let early = [ok(&[4.0]), ok(&[4.0])];
    assert!(has_quorum(&early, 3, Metric::strict()).is_some());

    let full = [ok(&[4.0]), ok(&[4.0]), crashed("late sigsegv")];
    match evaluate(&full, Metric::strict(), VotingPolicy::Majority) {
        Verdict::Diverged { majority: Some(_), dissenting, .. } => {
            assert_eq!(dissenting, vec![2]);
        }
        other => panic!("late crash must be flagged, got {other:?}"),
    }
}

#[test]
fn minority_arrivals_never_release_early() {
    // 1 arrival of a 4-panel (or a 2-2 split) is not a strict majority:
    // the async path must keep waiting rather than release.
    assert!(has_quorum(&[ok(&[1.0])], 4, Metric::strict()).is_none());
    let split = [ok(&[1.0]), ok(&[2.0])];
    assert!(has_quorum(&split, 4, Metric::strict()).is_none());
    // Even unanimous arrivals are not a quorum of the *full* panel when
    // too few have arrived.
    let two = [ok(&[1.0]), ok(&[1.0])];
    assert!(has_quorum(&two, 5, Metric::strict()).is_none());
}
