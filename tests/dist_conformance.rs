//! Distributed-MVX conformance: variant hosts as separate OS processes
//! must be **behaviourally invisible**.
//!
//! These tests spawn real `mvtee-variantd` worker processes (built as
//! part of the workspace) over attested loopback TCP and pin down the
//! two properties the distributed deployment stands on:
//!
//! 1. **Byte identity** — a 3-variant panel with out-of-process members
//!    produces bit-identical outputs *and* a byte-identical rendered
//!    audit transcript versus the all-in-process reference with the
//!    same seeds. Placement must not leak into results or audit state.
//! 2. **Crash healing** — killing a worker process mid-stream is just
//!    another variant fault: the monitor quarantines it on connection
//!    loss, the recovery manager respawns and re-attests a replacement
//!    worker, the panel returns to full strength, and no batch is lost
//!    or wrong along the way.

use mvtee::config::{MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::deployment::Deployment;
use mvtee::verify_transcript;
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;
use std::time::{Duration, Instant};

const SEED: u64 = 7;
const MVX_PARTITION: usize = 1;
const PANEL: usize = 3;
const BATCHES: u64 = 6;
const FINGERPRINT: &str = "dist-conformance";

fn model_input(model: &Model, salt: u64) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| (((i as u64 + 31 * salt) % 97) as f32 - 48.0) / 48.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

fn panel_config() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(2);
    cfg.claims[MVX_PARTITION] = PartitionMvx::diversified(PANEL);
    cfg
}

/// Builds the panel with the given variants placed out-of-process,
/// streams [`BATCHES`] inputs, and returns `(outputs, transcript,
/// worker count)`.
fn run_panel(out_of_process: &[(usize, usize)]) -> (Vec<Tensor>, String, usize) {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model");
    let inputs: Vec<Tensor> = (0..BATCHES).map(|s| model_input(&model, s)).collect();
    let mut builder = Deployment::builder(model)
        .config(panel_config())
        .partition_seed(SEED)
        .variant_seed(SEED)
        // Cargo builds package bins before integration tests run and
        // pins their paths, so the worker is always the one built with
        // this test's profile.
        .worker_binary(env!("CARGO_BIN_EXE_mvtee-variantd"));
    for &(p, v) in out_of_process {
        builder = builder.out_of_process(p, v);
    }
    let mut d = builder.build().expect("panel deploys");
    let workers = d.worker_pids().len();
    let outputs: Vec<Tensor> =
        inputs.iter().map(|i| d.infer(i).expect("panel serves")).collect();
    let transcript = d.transcript().render(SEED, FINGERPRINT);
    d.shutdown();
    (outputs, transcript, workers)
}

/// Acceptance criterion #1: same seeds, different placement, identical
/// bytes — outputs bit-for-bit, audit transcript byte-for-byte.
#[test]
fn out_of_process_panel_is_byte_identical_to_in_process_reference() {
    let (ref_outputs, ref_transcript, ref_workers) = run_panel(&[]);
    assert_eq!(ref_workers, 0, "reference must be all-in-process");
    let ref_summary = verify_transcript(&ref_transcript).expect("reference transcript verifies");
    assert!(ref_summary.entries > 0, "voted checkpoints must be recorded");
    assert_eq!(ref_summary.divergences, 0, "clean panel must not diverge");

    let placements = [(MVX_PARTITION, 1), (MVX_PARTITION, 2)];
    let (dist_outputs, dist_transcript, dist_workers) = run_panel(&placements);
    assert_eq!(
        dist_workers,
        placements.len(),
        "each out-of-process variant must run as its own worker process"
    );

    assert_eq!(ref_outputs.len(), dist_outputs.len());
    for (b, (r, d)) in ref_outputs.iter().zip(&dist_outputs).enumerate() {
        assert!(
            bits_equal(r, d),
            "batch {b}: out-of-process output differs from the in-process reference"
        );
    }
    assert_eq!(
        ref_transcript, dist_transcript,
        "audit transcripts must be byte-identical across placements"
    );
    verify_transcript(&dist_transcript).expect("distributed transcript verifies");
}

fn recovery_config() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(2);
    cfg.claims[MVX_PARTITION] = PartitionMvx::replicated(PANEL);
    cfg.response = ResponsePolicy::ContinueWithMajority;
    cfg.recovery = RecoveryPolicy::enabled();
    cfg.checkpoint_deadline_ms = 300;
    cfg
}

/// The worst-case time the detect→react loop may take, derived from the
/// deployment's own configuration instead of a hardcoded constant:
/// detection costs up to one checkpoint deadline, each retry adds its
/// configured backoff, and re-attestation/probation get one deadline of
/// slack per allowed attempt.
fn heal_deadline(cfg: &MvxConfig) -> Duration {
    let attempts = cfg.recovery.max_retries + 1;
    let backoff_total: Duration =
        (0..cfg.recovery.max_retries).map(|k| cfg.recovery.backoff(k)).sum();
    cfg.checkpoint_deadline() * (attempts + 1) + backoff_total + cfg.result_timeout()
}

/// Acceptance criterion #2: kill a worker process mid-run; the panel
/// heals to full strength (a later checkpoint passes with all
/// [`PANEL`] members agreeing) and zero batches are lost or wrong.
#[test]
fn killed_worker_heals_to_full_panel_strength_with_zero_lost_batches() {
    let cfg = recovery_config();
    let workers_spawned0 = mvtee_telemetry::counter("core.worker.spawned").get();
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model");
    let inputs: Vec<Tensor> = (0..3).map(|s| model_input(&model, s)).collect();

    // In-process oracle fixes the expected outputs.
    let mut oracle = Deployment::builder(
        zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model"),
    )
    .config(cfg.clone())
    .partition_seed(SEED)
    .variant_seed(SEED)
    .build()
    .expect("oracle deploys");
    let expected: Vec<Tensor> =
        inputs.iter().map(|i| oracle.infer(i).expect("oracle serves")).collect();
    oracle.shutdown();

    let mut d = Deployment::builder(
        zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model"),
    )
    .config(cfg.clone())
    .partition_seed(SEED)
    .variant_seed(SEED)
    .worker_binary(env!("CARGO_BIN_EXE_mvtee-variantd"))
    .out_of_process(MVX_PARTITION, 0)
    .build()
    .expect("panel deploys");
    assert_eq!(d.worker_pids().len(), 1, "one variant must be out-of-process");

    // A couple of verified checkpoints before the crash, so recovery has
    // a genuine resync point for probation.
    let mut served = 0u64;
    for b in 0..2u64 {
        let idx = (b % inputs.len() as u64) as usize;
        let out = d.infer(&inputs[idx]).expect("pre-crash batches serve");
        assert!(bits_equal(&out, &expected[idx]), "pre-crash batch {b} diverged");
        served += 1;
    }

    assert!(d.kill_worker(MVX_PARTITION, 0), "the worker process must be killable");

    // Keep streaming. Every batch must keep serving correct majority
    // output (zero lost batches) until the panel heals: the killed
    // variant quarantined, a replacement worker re-attested, and a later
    // checkpoint passed at full strength. All waits derive from the
    // config's own deadlines.
    let deadline = Instant::now() + heal_deadline(&cfg);
    let poll = cfg.drain_poll();
    let mut healed = None;
    while Instant::now() < deadline {
        let idx = (served % inputs.len() as u64) as usize;
        let out = d.infer(&inputs[idx]).expect("majority must keep serving after the kill");
        assert!(
            bits_equal(&out, &expected[idx]),
            "batch {served}: output diverged after the worker kill"
        );
        served += 1;
        let events = d.events();
        if let Some(&(qp, qv, qb)) = events.quarantines().first() {
            assert_eq!(qp, MVX_PARTITION, "quarantine at the wrong partition");
            assert_eq!(qv, 0, "the killed worker's variant must be the one quarantined");
            let full_strength = events
                .checkpoint_passes()
                .iter()
                .any(|&(pp, pb, agreeing)| pp == qp && pb > qb && agreeing == PANEL);
            if events.recoveries().contains(&(qp, qv)) && full_strength {
                healed = Some(qb);
                break;
            }
        }
        std::thread::sleep(poll);
    }
    assert!(
        healed.is_some(),
        "panel never healed within the config-derived deadline:\n{}",
        d.events().render()
    );

    // The replacement runs out-of-process again (placement is sticky
    // across recovery) and re-attested from scratch: a fresh binding in
    // the recovery id space.
    assert!(
        mvtee_telemetry::counter("core.worker.spawned").get() >= workers_spawned0 + 2,
        "healing must have spawned a fresh out-of-process worker"
    );
    assert!(
        d.bindings()
            .iter()
            .any(|r| r.partition == MVX_PARTITION
                && r.variant == 0
                && r.variant_id >= 900_000_000),
        "replacement binding missing its recovery-scoped id"
    );
    d.shutdown();
}
