//! Mixed-thread-count MVX panels: per-variant `intra_op_threads` is a
//! diversification axis, and because the runtime pool is bit-deterministic
//! a replicated panel where one variant runs 1 thread and another runs 4
//! must pass every checkpoint with **zero** divergences under the strict
//! (replica-grade) metric.

use mvtee::prelude::*;
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_runtime::{EngineConfig, EngineKind};
use mvtee_tensor::{metrics, Tensor};

fn model_input(model: &Model) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| ((i % 79) as f32 - 39.0) / 39.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

#[test]
fn mixed_thread_replicated_panel_has_zero_divergences() {
    // Replicated 3-panel on the middle partition, strict metric, with the
    // three variants running 1 / 4 / 8 intra-op threads respectively.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 37).expect("builds");
    let input = model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(3)
        .mvx_on_partition(1, 3)
        .variant_threads(1, 1, 4)
        .variant_threads(1, 2, 8)
        .build()
        .expect("deploys");
    for _ in 0..3 {
        let out = d.infer(&input).expect("inference succeeds");
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
    assert_eq!(
        d.events().detection_count(),
        0,
        "mixed thread counts must not trip the strict replicated checkpoint"
    );
    d.shutdown();
}

#[test]
fn partition_wide_thread_default_preserves_outputs() {
    // Same model once with everything single-threaded and once with a
    // partition-wide threads=4 default: the pipeline output must be
    // byte-identical (same engines, deterministic pool).
    let model = zoo::build(ModelKind::MobileNetV3, ScaleProfile::Test, 41).expect("builds");
    let input = model_input(&model);

    let mut base = Deployment::builder(model.clone())
        .partitions(2)
        .mvx_on_partition(0, 2)
        .build()
        .expect("deploys");
    let expected = base.infer(&input).expect("runs");
    base.shutdown();

    let mut threaded = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(0, 2)
        .partition_threads(0, 4)
        .partition_threads(1, 4)
        .build()
        .expect("deploys");
    let out = threaded.infer(&input).expect("runs");
    assert_eq!(
        threaded.events().detection_count(),
        0,
        "threads=4 panel tripped a checkpoint"
    );
    threaded.shutdown();

    assert_eq!(expected, out, "partition-wide threading changed pipeline bytes");
}

#[test]
fn mixed_thread_diversified_panel_stays_within_metric() {
    // Diversified panels already differ in rounding; adding per-variant
    // thread-count diversity must not widen the spread past the relaxed
    // metric (zero detections under majority-free unanimous voting).
    let model = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 43).expect("builds");
    let input = model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .diversified_mvx(1, 3)
        .variant_threads(1, 0, 2)
        .variant_threads(1, 2, 8)
        .build()
        .expect("deploys");
    let out = d.infer(&input).expect("inference succeeds");
    assert!(out.data().iter().all(|v| v.is_finite()));
    assert_eq!(d.events().detection_count(), 0, "thread diversity widened the panel spread");
    d.shutdown();
}

#[test]
fn spec_patch_thread_override_composes_with_engine_swap() {
    // An explicit engine override plus a later thread override on the same
    // variant: the patch must apply threads after the engine swap.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 47).expect("builds");
    let input = model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(0, 2)
        .engine_override(0, 1, EngineConfig::of_kind(EngineKind::OrtLike))
        .variant_threads(0, 1, 4)
        .build()
        .expect("deploys");
    let out = d.infer(&input).expect("runs");
    assert!(metrics::allclose(&out, &out, 1e-6, 1e-9));
    assert_eq!(d.events().detection_count(), 0);
    d.shutdown();
}
