//! End-to-end integration: every zoo model deployed through the full MVX
//! stack (offline partitioning → sealed variants → attested bootstrap →
//! encrypted pipeline) must reproduce the reference engine's outputs.

use mvtee::prelude::*;
use mvtee_graph::zoo::{self, Model, ModelKind, ScaleProfile};
use mvtee_runtime::{Engine, EngineConfig, EngineKind};
use mvtee_tensor::{metrics, Tensor};

fn model_input(model: &Model) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| ((i % 83) as f32 - 41.0) / 41.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

fn reference_output(model: &Model, input: &Tensor) -> Tensor {
    Engine::new(EngineConfig::of_kind(EngineKind::OrtLike))
        .prepare(&model.graph)
        .expect("prepares")
        .run(std::slice::from_ref(input))
        .expect("runs")
        .remove(0)
}

#[test]
fn every_zoo_model_survives_the_full_mvx_stack() {
    for kind in ModelKind::ALL {
        let model = zoo::build(kind, ScaleProfile::Test, 19).expect("builds");
        let input = model_input(&model);
        let expected = reference_output(&model, &input);
        let mut d = Deployment::builder(model)
            .partitions(3)
            .mvx_on_partition(1, 2)
            .build()
            .unwrap_or_else(|e| panic!("{kind}: deployment failed: {e}"));
        let out = d.infer(&input).unwrap_or_else(|e| panic!("{kind}: inference failed: {e}"));
        assert!(
            metrics::allclose(&out, &expected, 1e-3, 1e-4),
            "{kind}: output diverged from reference by {}",
            metrics::max_abs_diff(&out, &expected)
        );
        assert_eq!(d.events().detection_count(), 0, "{kind}: spurious detection");
        d.shutdown();
    }
}

#[test]
fn partition_counts_preserve_semantics() {
    let model = zoo::build(ModelKind::GoogleNet, ScaleProfile::Test, 23).expect("builds");
    let input = model_input(&model);
    let expected = reference_output(&model, &input);
    for partitions in [1usize, 2, 4, 6] {
        let mut d = Deployment::builder(model.clone()).partitions(partitions).build().unwrap();
        let out = d.infer(&input).unwrap();
        assert!(
            metrics::allclose(&out, &expected, 1e-3, 1e-4),
            "{partitions} partitions diverged"
        );
        assert_eq!(d.partition_set().len(), partitions);
        d.shutdown();
    }
}

#[test]
fn diversified_panels_agree_across_models() {
    for kind in [ModelKind::ResNet50, ModelKind::MobileNetV3] {
        let model = zoo::build(kind, ScaleProfile::Test, 31).expect("builds");
        let input = model_input(&model);
        let mut d = Deployment::builder(model)
            .partitions(3)
            .diversified_mvx(0, 3)
            .diversified_mvx(1, 3)
            .diversified_mvx(2, 3)
            .build()
            .unwrap();
        let out = d.infer(&input).unwrap();
        assert!(out.data().iter().all(|v| v.is_finite()), "{kind}");
        assert_eq!(
            d.events().detection_count(),
            0,
            "{kind}: diversified variants disagreed: {:?}",
            d.events().events()
        );
        d.shutdown();
    }
}

#[test]
fn kernel_strategy_diversified_panel_passes_relaxed_checkpoints() {
    // The kernel-strategy axis as a diversification dimension: one panel
    // member keeps the autotuned default while the others pin different
    // microkernels. Same weights, different inner-loop accumulation order
    // — so the panel opts into the heterogeneous tolerance through
    // `checkpoint_metric` and must sail through without detections.
    use mvtee::SpecPatch;
    use mvtee_runtime::KernelStrategy;
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 43).expect("builds");
    let input = model_input(&model);
    let expected = reference_output(&model, &input);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(1, 3)
        .spec_patch(1, 1, SpecPatch::kernel(KernelStrategy::SimdMicrokernel))
        .spec_patch(1, 2, SpecPatch::kernel(KernelStrategy::Scalar))
        .checkpoint_metric(1, metrics::Metric::relaxed())
        .build()
        .unwrap();
    let out = d.infer(&input).unwrap();
    assert!(
        metrics::allclose(&out, &expected, 1e-3, 1e-4),
        "strategy-diverse output diverged from reference by {}",
        metrics::max_abs_diff(&out, &expected)
    );
    assert_eq!(
        d.events().detection_count(),
        0,
        "strategy-diverse panel disagreed: {:?}",
        d.events().events()
    );
    d.shutdown();
}

#[test]
fn same_strategy_replicas_stay_bit_identical_under_exact_metric() {
    // Pinning every panel member to the same strategy keeps the claim
    // homogeneous: the default exact metric must hold (byte-identical
    // replicas), with no tolerance opt-in needed.
    use mvtee::SpecPatch;
    use mvtee_runtime::KernelStrategy;
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 43).expect("builds");
    let input = model_input(&model);
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(1, 2)
        .spec_patch(1, 0, SpecPatch::kernel(KernelStrategy::SimdMicrokernel))
        .spec_patch(1, 1, SpecPatch::kernel(KernelStrategy::SimdMicrokernel))
        .build()
        .unwrap();
    let out = d.infer(&input).unwrap();
    assert!(out.data().iter().all(|v| v.is_finite()));
    assert_eq!(
        d.events().detection_count(),
        0,
        "same-strategy replicas must agree exactly: {:?}",
        d.events().events()
    );
    d.shutdown();
}

#[test]
fn pipelined_stream_matches_sequential_stream() {
    let model = zoo::build(ModelKind::InceptionV3, ScaleProfile::Test, 37).expect("builds");
    let inputs: Vec<Tensor> = (0..5)
        .map(|i| {
            let mut t = model_input(&model);
            t.data_mut()[i] += 0.5;
            t
        })
        .collect();
    let mut d = Deployment::builder(model).partitions(4).build().unwrap();
    let seq = d.infer_sequential(&inputs).unwrap();
    let pipe = d.infer_stream(&inputs).unwrap();
    assert_eq!(seq.failures() + pipe.failures(), 0);
    for (i, (a, b)) in seq.outputs.iter().zip(pipe.outputs.iter()).enumerate() {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert!(metrics::allclose(a, b, 1e-4, 1e-5), "batch {i} diverged");
    }
    d.shutdown();
}

#[test]
fn distinct_inputs_produce_distinct_outputs_in_order() {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 41).expect("builds");
    // Direct single-engine outputs for three distinguishable inputs.
    let mk = |scale: f32| {
        let mut t = model_input(&model);
        t.map_inplace(|v| v * scale);
        t
    };
    let inputs = vec![mk(0.2), mk(0.7), mk(1.0)];
    let expected: Vec<Tensor> = inputs.iter().map(|i| reference_output(&model, i)).collect();
    let mut d = Deployment::builder(model).partitions(3).build().unwrap();
    let stats = d.infer_stream(&inputs).unwrap();
    for (i, (got, want)) in stats.outputs.iter().zip(expected.iter()).enumerate() {
        let got = got.as_ref().unwrap();
        assert!(
            metrics::allclose(got, want, 1e-3, 1e-4),
            "stream order violated at {i}"
        );
    }
    d.shutdown();
}

#[test]
fn unencrypted_and_encrypted_paths_agree() {
    let model = zoo::build(ModelKind::EfficientNetB7, ScaleProfile::Test, 43).expect("builds");
    let input = model_input(&model);
    let mut enc = Deployment::builder(model.clone()).partitions(2).encrypt(true).build().unwrap();
    let mut plain = Deployment::builder(model).partitions(2).encrypt(false).build().unwrap();
    let a = enc.infer(&input).unwrap();
    let b = plain.infer(&input).unwrap();
    assert!(metrics::allclose(&a, &b, 1e-4, 1e-5));
    enc.shutdown();
    plain.shutdown();
}

#[test]
fn monitor_attestation_binds_nonce() {
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 47).expect("builds");
    let d = Deployment::builder(model).partitions(2).build().unwrap();
    let report = d.attest_monitor(b"fresh-nonce");
    d.verify_monitor_report(&report, b"fresh-nonce").unwrap();
    assert!(d.verify_monitor_report(&report, b"replayed-nonce").is_err());
}

#[test]
fn foundation_mixer_extension_runs_under_mvx() {
    // §7.4 future-work extension: a transformer-style foundation model
    // through the same partition + diversified-MVX machinery.
    let model = zoo::build(ModelKind::FoundationMixer, ScaleProfile::Test, 53).expect("builds");
    let input = model_input(&model);
    let expected = reference_output(&model, &input);
    let mut d = Deployment::builder(model)
        .partitions(3)
        .diversified_mvx(1, 3)
        .build()
        .unwrap();
    let out = d.infer(&input).unwrap();
    assert!(
        metrics::allclose(&out, &expected, 1e-3, 1e-4),
        "mixer output diverged by {}",
        metrics::max_abs_diff(&out, &expected)
    );
    assert_eq!(d.events().detection_count(), 0);
    // Output is a distribution over classes.
    let sum: f32 = out.data().iter().sum();
    assert!((sum - 1.0).abs() < 1e-3);
    d.shutdown();
}
