//! Shedding × recovery interaction: a replica quarantined mid-burst
//! must not lose or double-serve queued requests, and overload shed at
//! the door must be visible — distinctly — to both the submitting
//! client and the `serve.*` counters.
//!
//! The setup forces both behaviours at once: a tiny admission queue
//! (depth 4, quota 2) under a 6-client burst guarantees sheds, while
//! replica 0 carries a scheduled stall fault so the core watchdog
//! quarantines one of its panel variants and the recovery manager
//! rejoins it while the pool is still serving the burst.

use mvtee::config::{MvxConfig, PartitionMvx, RecoveryPolicy, ResponsePolicy};
use mvtee::Deployment;
use mvtee_faults::{LivenessFault, StallFault, StallMode};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_serve::{ReplicaPool, RequestOutcome, ServeConfig, ServeFrontend, ShedReason};
use mvtee_tensor::Tensor;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

const SEED: u64 = 23;
const PANEL: usize = 3;
const MODEL_KEY: &str = "zoo";
const CLIENTS: usize = 6;
const PER_CLIENT: usize = 16;

fn bits_equal(a: &Tensor, b: &Tensor) -> bool {
    a.dims() == b.dims()
        && a.data().iter().zip(b.data().iter()).all(|(p, q)| p.to_bits() == q.to_bits())
}

fn burst_input(model: &zoo::Model) -> Tensor {
    let n = model.input_shape.num_elements();
    Tensor::from_vec(
        (0..n).map(|i| ((i % 89) as f32 - 44.0) / 44.0).collect(),
        model.input_shape.dims(),
    )
    .expect("static shape")
}

/// Replicated 2-of-3 panels with recovery enabled: a quarantined member
/// leaves a strict majority serving while it is re-provisioned.
fn recovery_mvx() -> MvxConfig {
    let mut cfg = MvxConfig::fast_path(2);
    for claim in &mut cfg.claims {
        *claim = PartitionMvx::replicated(PANEL);
    }
    cfg.response = ResponsePolicy::ContinueWithMajority;
    cfg.recovery = RecoveryPolicy::enabled();
    cfg.checkpoint_deadline_ms = 300;
    cfg
}

/// The worst-case detect→react time, derived from the MVX configuration
/// rather than a hardcoded probe count: one checkpoint deadline to
/// detect, per-retry backoff, a deadline of slack per allowed attempt,
/// and the result timeout for the in-flight batch.
fn heal_deadline(cfg: &MvxConfig) -> Duration {
    let attempts = cfg.recovery.max_retries + 1;
    let backoff_total: Duration =
        (0..cfg.recovery.max_retries).map(|k| cfg.recovery.backoff(k)).sum();
    cfg.checkpoint_deadline() * (attempts + 1) + backoff_total + cfg.result_timeout()
}

#[test]
fn quarantine_mid_burst_loses_nothing_and_sheds_are_distinct() {
    let shed_total0 = mvtee_telemetry::counter("serve.shed_total").get();
    let quarantined0 = mvtee_telemetry::counter("core.recovery.quarantined").get();
    let recovered0 = mvtee_telemetry::counter("core.recovery.recovered").get();

    // Serial reference for the burst input.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model");
    let input = burst_input(&model);
    let mut reference_dep = Deployment::builder(model)
        .config(recovery_mvx())
        .partition_seed(SEED)
        .variant_seed(SEED)
        .build()
        .expect("reference builds");
    let reference = reference_dep.infer(&input).expect("reference inference");
    reference_dep.shutdown();

    // 2-replica pool; replica 0 stalls one panel variant from batch 2.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, SEED).expect("model");
    let stall = LivenessFault::Stall(StallFault { from_batch: 2, mode: StallMode::Hang });
    let deployments = Deployment::builder(model)
        .config(recovery_mvx())
        .partition_seed(SEED)
        .variant_seed(SEED)
        .build_many_with(2, move |r, b| {
            if r == 0 {
                b.liveness_fault(1, 0, stall)
            } else {
                b
            }
        })
        .expect("pool builds");
    let pool = ReplicaPool::new(MODEL_KEY, deployments).expect("pool wraps");
    let cfg = ServeConfig {
        max_queue_depth: 4,
        per_tenant_quota: 2,
        max_batch: 4,
        max_wait_ms: 1,
        default_deadline_ms: 30_000,
    };
    let frontend = ServeFrontend::start(vec![pool], cfg);
    let events = frontend.replica_events(MODEL_KEY, 0).expect("replica 0 exists");

    // The burst: every client fires its submissions back to back and
    // only then waits for its admitted tickets, so the tiny queue is
    // guaranteed to overflow while the stalled replica slows the pool.
    let mut admitted_ids: Vec<u64> = Vec::new();
    let mut response_ids: Vec<u64> = Vec::new();
    let mut shed_count = 0u64;
    let mut outputs_checked = 0u64;
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..CLIENTS {
            let handle = frontend.handle();
            let input = input.clone();
            joins.push(scope.spawn(move || {
                let tenant = format!("tenant-{c}");
                let mut tickets = Vec::new();
                let mut sheds = Vec::new();
                for _ in 0..PER_CLIENT {
                    match handle.submit(&tenant, MODEL_KEY, input.clone()) {
                        Ok(ticket) => tickets.push(ticket),
                        Err(reason) => {
                            // Shed submissions are rejected synchronously
                            // with a structured reason — distinct from any
                            // served response.
                            assert!(matches!(
                                reason,
                                ShedReason::QueueFull | ShedReason::Quota
                            ));
                            sheds.push(reason);
                        }
                    }
                }
                let admitted: Vec<u64> = tickets.iter().map(|t| t.id).collect();
                let responses: Vec<_> = tickets
                    .into_iter()
                    .map(|t| t.wait().expect("admitted requests always resolve"))
                    .collect();
                (admitted, responses, sheds.len() as u64)
            }));
        }
        for j in joins {
            let (admitted, responses, sheds) = j.join().expect("burst client");
            admitted_ids.extend(admitted);
            shed_count += sheds;
            for resp in responses {
                response_ids.push(resp.id);
                match resp.outcome {
                    RequestOutcome::Ok(tensor) => {
                        assert!(
                            bits_equal(&tensor, &reference),
                            "served output differs from the serial reference"
                        );
                        outputs_checked += 1;
                    }
                    RequestOutcome::Failed(detail) => {
                        panic!("admitted request failed during recovery: {detail}")
                    }
                    RequestOutcome::Expired => {
                        panic!("admitted request expired despite a 30 s deadline")
                    }
                }
            }
        }
    });

    // Exactly-once: every admitted id resolved exactly once, nothing
    // lost, nothing double-served.
    assert_eq!(admitted_ids.len(), response_ids.len(), "lost or extra responses");
    let unique_admitted: BTreeSet<u64> = admitted_ids.iter().copied().collect();
    let unique_responses: BTreeSet<u64> = response_ids.iter().copied().collect();
    assert_eq!(unique_admitted.len(), admitted_ids.len(), "duplicate admitted ids");
    assert_eq!(unique_responses.len(), response_ids.len(), "double-served ids");
    assert_eq!(unique_admitted, unique_responses, "admitted/response id sets differ");
    assert!(outputs_checked > 0, "burst must serve at least one request");

    // Overload must actually have shed, and the counter delta must
    // match what the clients saw at the door.
    assert!(shed_count > 0, "a 4-deep queue under a {CLIENTS}x{PER_CLIENT} burst must shed");
    assert_eq!(
        mvtee_telemetry::counter("serve.shed_total").get() - shed_total0,
        shed_count,
        "serve.shed_total must count exactly the rejected submissions"
    );

    // The stall must have tripped quarantine during the burst; keep a
    // trickle flowing until the recovery manager rejoins the variant
    // (probation needs fresh checkpoints to vote against). The wait is
    // bounded by the MVX config's own detect→react deadline.
    let mvx = recovery_mvx();
    let deadline = Instant::now() + heal_deadline(&mvx);
    let poll = mvx.drain_poll();
    let handle = frontend.handle();
    while Instant::now() < deadline {
        if !events.recoveries().is_empty() {
            break;
        }
        if let Ok(ticket) = handle.submit("probe", MODEL_KEY, input.clone()) {
            let resp = ticket.wait().expect("probe resolves");
            if let RequestOutcome::Ok(tensor) = resp.outcome {
                assert!(bits_equal(&tensor, &reference));
            }
        }
        std::thread::sleep(poll);
    }
    assert!(!events.quarantines().is_empty(), "the stall must trip a quarantine");
    assert!(!events.recoveries().is_empty(), "the quarantined variant must rejoin");
    assert!(
        mvtee_telemetry::counter("core.recovery.quarantined").get() > quarantined0,
        "core.recovery.quarantined must advance"
    );
    assert!(
        mvtee_telemetry::counter("core.recovery.recovered").get() > recovered0,
        "core.recovery.recovered must advance"
    );

    frontend.shutdown();
}
