//! §7.4 extension: MVTEE protecting a transformer-style "foundation model"
//! (token-mixing + LayerNorm + gated-MLP blocks) instead of a CNN.
//!
//! The same machinery applies unchanged: random-balanced partitioning over
//! the block structure, diversified variants per sensitive partition, and
//! checkpoint voting — demonstrating the paper's claim that "running large
//! Foundation Models within CPU TEEs is also practical".
//!
//! ```text
//! cargo run --release --example foundation_model
//! ```

use mvtee::prelude::*;
use mvtee_faults::{Attack, CveClass};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_runtime::{EngineConfig, EngineKind};
use mvtee_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::build(ModelKind::FoundationMixer, ScaleProfile::Bench, 17)?;
    println!("model: {}", model.graph);
    println!("op histogram: {:?}", model.graph.op_histogram());

    // A [seq, d] embedding input (the tokenizer/embedding lives outside the
    // protected inference path, as the paper's DNN input does).
    let (seq, d) = (model.input_shape.dims()[0], model.input_shape.dims()[1]);
    let input = Tensor::from_vec(
        (0..seq * d).map(|i| (((i * 37) % 113) as f32 - 56.0) / 56.0).collect(),
        &[seq, d],
    )?;

    // Harden the middle of the stack with 3 diversified variants.
    let mut deployment = Deployment::builder(model)
        .partitions(4)
        .diversified_mvx(1, 3)
        .diversified_mvx(2, 3)
        .build()?;
    let out = deployment.infer(&input)?;
    println!(
        "clean inference: {} classes, argmax {}, detections {}",
        out.len(),
        out.argmax().expect("non-empty"),
        deployment.events().detection_count()
    );
    deployment.shutdown();

    // Same model under an integer-overflow CVE exploit: caught.
    let model = zoo::build(ModelKind::FoundationMixer, ScaleProfile::Bench, 17)?;
    let mut attacked = Deployment::builder(model)
        .partitions(4)
        .mvx_on_partition(1, 2)
        .engine_override(1, 1, EngineConfig::of_kind(EngineKind::TvmLike))
        .response(ResponsePolicy::Halt)
        .attack(Attack::new(CveClass::Io))
        .build()?;
    let result = attacked.infer(&input);
    println!(
        "under IO-class exploit: result = {:?}, detections = {}",
        result.err().map(|e| e.to_string()),
        attacked.events().detection_count()
    );
    assert!(attacked.events().detection_count() > 0);
    attacked.shutdown();
    Ok(())
}
