//! Pipelined streaming inference with selective MVX — the deployment mode
//! the paper recommends for real-time / continuous analysis services
//! (§6.4).
//!
//! Streams a batch of requests through a 4-stage pipeline where only the
//! most sensitive partition is hardened with 3 diversified variants, in
//! asynchronous cross-validation mode, and reports throughput/latency for
//! sequential vs pipelined submission.
//!
//! ```text
//! cargo run --release --example secure_pipeline
//! ```

use mvtee::config::ExecMode;
use mvtee::prelude::*;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::build(ModelKind::MobileNetV3, ScaleProfile::Test, 11)?;
    println!("model: {}", model.graph);

    let mut deployment = Deployment::builder(model)
        .partitions(4)
        .diversified_mvx(2, 3) // harden the 3rd partition with 3 diversified variants
        .exec_mode(ExecMode::AsyncCrossValidation)
        .voting(VotingPolicy::Majority)
        .build()?;

    // A stream of 12 requests (batch size 1 each, as in the paper).
    let inputs: Vec<Tensor> = (0..12)
        .map(|i| {
            let n = 3 * 32 * 32;
            Tensor::from_vec(
                (0..n).map(|j| (((i * 131 + j) % 97) as f32 - 48.0) / 48.0).collect(),
                &[1, 3, 32, 32],
            )
            .expect("static shape")
        })
        .collect();

    let seq = deployment.infer_sequential(&inputs)?;
    println!(
        "sequential: {:>6.1} req/s, mean latency {:.2} ms, {} failures",
        seq.throughput(),
        seq.mean_latency() * 1e3,
        seq.failures()
    );

    let pipe = deployment.infer_stream(&inputs)?;
    println!(
        "pipelined : {:>6.1} req/s, mean completion interval {:.2} ms, {} failures",
        pipe.throughput(),
        pipe.total.as_secs_f64() / pipe.outputs.len() as f64 * 1e3,
        pipe.failures()
    );
    println!(
        "note: on a single-core host the pipelined wall-clock gain is bounded by\n\
         the available parallelism; see the experiments harness for the calibrated\n\
         multi-core composition used to reproduce the paper's figures."
    );

    // Outputs are identical across submission modes.
    for (a, b) in seq.outputs.iter().zip(pipe.outputs.iter()) {
        let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
        assert!(mvtee_tensor::metrics::allclose(a, b, 1e-4, 1e-5));
    }
    println!("sequential and pipelined outputs agree");
    println!("checkpoint detections: {}", deployment.events().detection_count());

    deployment.shutdown();
    Ok(())
}
