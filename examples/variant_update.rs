//! Attestable runtime variant initialization and updates (Fig 6).
//!
//! Shows the two-stage bootstrap evidence trail, then performs a *partial*
//! update (scaling one partition's variants) and a *full* update
//! (reshuffling the partition set) — with append-only binding history.
//!
//! ```text
//! cargo run --release --example variant_update
//! ```

use mvtee::config::PartitionMvx;
use mvtee::prelude::*;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::build(ModelKind::GoogleNet, ScaleProfile::Test, 3)?;
    let mut deployment = Deployment::builder(model).partitions(3).build()?;

    let input = Tensor::ones(&[1, 3, 32, 32]);
    let baseline = deployment.infer(&input)?;
    println!("initial deployment:");
    for b in deployment.bindings() {
        println!(
            "  gen {} partition {} variant {} -> id {} (measurement {:02x}{:02x}…)",
            b.generation, b.partition, b.variant, b.variant_id, b.measurement[0], b.measurement[1]
        );
    }

    // Partial update: scale partition 1 up to 3 replicated variants
    // ("vertical/horizontal scaling ... adapt to dynamic online
    // environments"). Old TEEs are never reused; fresh keys and bindings.
    println!("\npartial update: partition 1 -> 3 variants");
    deployment.partial_update(1, PartitionMvx::replicated(3))?;
    let after_partial = deployment.infer(&input)?;
    assert!(mvtee_tensor::metrics::allclose(&baseline, &after_partial, 1e-3, 1e-4));
    println!(
        "  inference preserved; bindings now {} (append-only), update log: {:?}",
        deployment.bindings().len(),
        deployment.update_log()
    );

    // Full update: reshuffle the partition set itself.
    println!("\nfull update: reshuffling the partition set");
    let old_checkpoints = deployment.partition_set().checkpoint_count();
    deployment.full_update(fresh_seed_u64())?;
    let after_full = deployment.infer(&input)?;
    assert!(mvtee_tensor::metrics::allclose(&baseline, &after_full, 1e-3, 1e-4));
    println!(
        "  checkpoints before/after: {} / {}",
        old_checkpoints,
        deployment.partition_set().checkpoint_count()
    );
    println!("  update log: {:?}", deployment.update_log());

    // Proactive key rotation (§6.5): every variant key is re-derived and
    // the payloads re-sealed; service is uninterrupted after re-attestation.
    println!("\nkey rotation");
    deployment.rotate_keys()?;
    let after_rotation = deployment.infer(&input)?;
    assert!(mvtee_tensor::metrics::allclose(&baseline, &after_rotation, 1e-3, 1e-4));
    println!("  all variant keys rotated; inference preserved");

    // The audit trail records every binding generation.
    let bound_events = deployment
        .events()
        .events()
        .iter()
        .filter(|e| matches!(e, mvtee::MonitorEvent::VariantBound { .. }))
        .count();
    println!("\naudit log: {bound_events} variant-bound events across all generations");

    deployment.shutdown();
    Ok(())
}

fn fresh_seed_u64() -> u64 {
    0x1234_5678
}
