//! Attack detection demo: a FrameFlip-style code fault in one BLAS
//! backend, and a CVE-class exploit in the inference runtime — both caught
//! by MVX checkpoints that a plain TEE deployment would miss.
//!
//! ```text
//! cargo run --release --example fault_detection
//! ```

use mvtee::prelude::*;
use mvtee_faults::{Attack, CveClass, FrameFlip};
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_runtime::{BlasKind, EngineConfig, EngineKind};
use mvtee_tensor::Tensor;

fn input() -> Tensor {
    let n = 3 * 32 * 32;
    Tensor::from_vec(
        (0..n).map(|i| ((i % 89) as f32 - 44.0) / 44.0).collect(),
        &[1, 3, 32, 32],
    )
    .expect("static shape")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Scenario 1: FrameFlip — a bit flip in the "OpenBLAS" stand-in's
    // code pages corrupts every GEMM routed through it. -------------------
    println!("== FrameFlip (code-level fault in one BLAS backend) ==");
    let frameflip = FrameFlip::against(BlasKind::Blocked);

    // Without MVX: the single variant silently returns corrupted results.
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 5)?;
    let mut undefended = Deployment::builder(model.clone())
        .partitions(2)
        .frameflip(frameflip.clone())
        .build()?;
    let corrupted = undefended.infer(&input())?;
    println!(
        "  without MVX: inference 'succeeds' — corrupted output served silently \
         (detections: {})",
        undefended.events().detection_count()
    );
    undefended.shutdown();

    // With MVX: pair the attacked backend with a different BLAS; the
    // checkpoint diverges and the monitor halts.
    let mut defended = Deployment::builder(model.clone())
        .partitions(2)
        .mvx_on_partition(1, 2)
        .engine_override(
            1,
            1,
            EngineConfig::of_kind(EngineKind::OrtLike).with_blas(BlasKind::Strided),
        )
        .response(ResponsePolicy::Halt)
        .frameflip(frameflip)
        .build()?;
    let result = defended.infer(&input());
    println!("  with MVX   : inference result = {:?}", result.err().map(|e| e.to_string()));
    for (t, e) in defended.events().snapshot() {
        println!("    [{t:.3}s] {e}");
    }
    assert!(defended.events().detection_count() > 0, "attack must be detected");
    defended.shutdown();

    // Show the corruption was real.
    let clean = {
        use mvtee_runtime::{Engine, PreparedModel};
        let e = Engine::new(EngineConfig::of_kind(EngineKind::OrtLike));
        let p: Box<dyn PreparedModel> = e.prepare(&model.graph)?;
        p.run(std::slice::from_ref(&input()))?.remove(0)
    };
    println!(
        "  (silent corruption magnitude: max |Δ| = {:.3})",
        mvtee_tensor::metrics::max_abs_diff(&clean, &corrupted)
    );

    // --- Scenario 2: a UAF-class CVE exploit in the vulnerable runtime. ---
    println!("\n== CVE exploit (use-after-free class, Table 1) ==");
    let attack = Attack::new(CveClass::Uaf);
    let model = zoo::build(ModelKind::MnasNet, ScaleProfile::Test, 5)?;
    let mut d = Deployment::builder(model)
        .partitions(2)
        .mvx_on_partition(1, 2)
        // The defender runs a different runtime family ("Different RT").
        .engine_override(1, 1, EngineConfig::of_kind(EngineKind::TvmLike))
        .response(ResponsePolicy::Halt)
        .attack(attack)
        .build()?;
    let result = d.infer(&input());
    println!("  with MVX   : inference result = {:?}", result.err().map(|e| e.to_string()));
    for (t, e) in d.events().snapshot() {
        println!("    [{t:.3}s] {e}");
    }
    assert!(d.events().detection_count() > 0, "exploit must be detected");
    d.shutdown();

    println!("\nboth attacks detected at MVX checkpoints before any output left the system");
    Ok(())
}
