//! Quickstart: partition a model, deploy MVX variants in simulated TEEs,
//! and run one secure inference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mvtee::prelude::*;
use mvtee_graph::zoo::{self, ModelKind, ScaleProfile};
use mvtee_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a model (the zoo mirrors the paper's seven evaluation
    //    models; Test scale keeps this instant).
    let model = zoo::build(ModelKind::ResNet50, ScaleProfile::Test, 7)?;
    println!("model: {}", model.graph);

    // 2. Offline + online phase: partition into 3 stages, run 3 replicated
    //    variants on the middle partition (selective MVX), attest and
    //    bootstrap every variant TEE.
    let mut deployment = Deployment::builder(model)
        .partitions(3)
        .mvx_on_partition(1, 3)
        .build()?;
    println!(
        "deployed {} partitions, {} variant TEEs",
        deployment.config().partitions,
        deployment.bindings().len()
    );
    for stage in &deployment.partition_set().stages {
        println!(
            "  partition {}: {} nodes, {} boundary outputs",
            stage.index,
            stage.nodes.len(),
            stage.outputs.len()
        );
    }

    // 3. The model owner attests the monitor before trusting it.
    let report = deployment.attest_monitor(b"owner-nonce-1");
    deployment.verify_monitor_report(&report, b"owner-nonce-1")?;
    println!("monitor attestation verified");

    // 4. Run a secure inference: the input flows through the partition
    //    pipeline; the MVX partition's three variants must agree at the
    //    checkpoint.
    let input = Tensor::ones(&[1, 3, 32, 32]);
    let output = deployment.infer(&input)?;
    let top = output.argmax().expect("non-empty output");
    println!("inference ok: {} classes, argmax {}", output.len(), top);
    println!("checkpoint detections: {}", deployment.events().detection_count());

    deployment.shutdown();
    Ok(())
}
