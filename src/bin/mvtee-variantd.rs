//! `mvtee-variantd`: one variant TEE host as a separate OS process.
//!
//! The untrusted orchestrator (the monitor process's deployment layer)
//! spawns this binary with `--connect HOST:PORT`. The worker dials the
//! monitor, receives its placement over the bootstrap lane of the
//! multiplexed connection, and then runs the exact same variant-host
//! main loop an in-process variant thread runs: two-stage attested
//! bootstrap, sealed-bundle decryption, engine preparation, and the
//! encrypted checkpoint serve loop, until shutdown or connection loss.
//!
//! The process carries no secrets at launch — everything sensitive
//! arrives sealed (the variant bundle) or inside the attested key
//! release, mirroring the paper's init-variant trust model.

use std::process::ExitCode;

fn usage(program: &str) -> ExitCode {
    eprintln!("usage: {program} --connect HOST:PORT [--resume]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let program = args.first().map(String::as_str).unwrap_or("mvtee-variantd");
    let mut addr: Option<&str> = None;
    let mut resume = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => {
                let Some(value) = args.get(i + 1) else {
                    return usage(program);
                };
                addr = Some(value);
                i += 2;
            }
            "--resume" => {
                resume = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!("mvtee-variantd: MVTEE variant TEE worker process");
                println!();
                println!("usage: {program} --connect HOST:PORT [--resume]");
                println!();
                println!("Dials the monitor at HOST:PORT, receives its variant placement");
                println!("over the bootstrap lane, attests, and serves checkpoints until");
                println!("shutdown or connection loss.");
                println!();
                println!("With --resume the worker survives connection loss: it redials");
                println!("the same port (the monitor retains the accept socket) and");
                println!("serves a fresh placement, exiting only once redials go");
                println!("unanswered.");
                return ExitCode::SUCCESS;
            }
            _ => return usage(program),
        }
    }
    let Some(addr) = addr else {
        return usage(program);
    };
    match mvtee::run_worker(addr, resume) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mvtee-variantd: {e}");
            ExitCode::FAILURE
        }
    }
}
