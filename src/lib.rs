//! Facade crate for the MVTEE reproduction workspace.
//!
//! Re-exports the public crates so integration tests and examples can use a
//! single dependency root. See `README.md` for the architecture overview and
//! `DESIGN.md` for the system inventory.

pub use mvtee;
pub use mvtee_crypto as crypto;
pub use mvtee_diversify as diversify;
pub use mvtee_faults as faults;
pub use mvtee_graph as graph;
pub use mvtee_partition as partition;
pub use mvtee_runtime as runtime;
pub use mvtee_tee as tee;
pub use mvtee_tensor as tensor;
